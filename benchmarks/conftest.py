"""Shared configuration for the paper-reproduction benchmarks.

Scale knobs (environment variables):

  REPRO_BENCH_SCALE       corpus scale vs the paper's counts (default 0.02)
  REPRO_BENCH_TIMEOUT_MS  virtual fuzzing budget per contract (default 20000)
  REPRO_FIG3_CONTRACTS    number of RQ1 contracts (default 12; paper: 100)
  REPRO_RQ4_SCALE         wild-corpus scale (default 0.05; paper: 991 contracts)

Each benchmark prints the same rows the paper reports, alongside the
pytest-benchmark timing of the underlying pipeline.
"""

import os

import pytest


def env_float(name: str, default: float) -> float:
    return float(os.environ.get(name, default))


def env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return env_float("REPRO_BENCH_SCALE", 0.02)


@pytest.fixture(scope="session")
def bench_timeout_ms() -> float:
    return env_float("REPRO_BENCH_TIMEOUT_MS", 20_000.0)

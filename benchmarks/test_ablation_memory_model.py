"""Ablation (§3.2, C2): the memory model.

WASAI's memory model keys bytes by the *concrete* addresses captured
in traces (O(1) per access).  EOSAFE's mapping structure keeps
(symbolic address, content) pairs and must scan and merge all items on
every access, which "is time-consuming ... when analyzing deeper code".
This bench reproduces that asymmetry on the same access workload.
"""

import pytest

from repro.smt import BitVec, BitVecVal, Eq, Ite, Term
from repro.symbolic import SymbolicMemory

ACCESSES = 800


class EosafeStyleMemory:
    """The §3.2 description of EOSAFE's model: an append-only mapping
    of (address expression, value); loads scan every stored item and
    build an ite-merge over possible matches."""

    def __init__(self) -> None:
        self._items: list[tuple[Term, Term]] = []

    def store(self, address: Term, value: Term) -> None:
        self._items.append((address, value))

    def load(self, address: Term, default: Term) -> Term:
        result = default
        # Newer stores take precedence: fold oldest-first.
        for stored_address, value in self._items:
            result = Ite(Eq(stored_address, address), value, result)
        return result


def workload_addresses():
    # A deserialiser-like pattern: interleaved, partially overlapping.
    return [(i * 8) % 256 + (i % 5) for i in range(ACCESSES)]


def run_wasai_model() -> int:
    memory = SymbolicMemory()
    for i, address in enumerate(workload_addresses()):
        memory.store(address, 8, BitVec(f"v{i}", 64))
        memory.load(address, 8)
    return len(memory.dump())


def run_eosafe_model() -> int:
    memory = EosafeStyleMemory()
    default = BitVecVal(0, 64)
    total_depth = 0
    for i, address in enumerate(workload_addresses()):
        symbolic_address = BitVecVal(address, 32)
        memory.store(symbolic_address, BitVec(f"v{i}", 64))
        merged = memory.load(symbolic_address, default)
        total_depth += 1
    return total_depth


@pytest.fixture(scope="module")
def timings():
    import time
    out = {}
    for name, fn in (("wasai", run_wasai_model),
                     ("eosafe", run_eosafe_model)):
        start = time.perf_counter()
        fn()
        out[name] = time.perf_counter() - start
    return out


def test_memory_model_wasai(benchmark):
    benchmark(run_wasai_model)


def test_memory_model_eosafe_style(benchmark):
    benchmark(run_eosafe_model)


def test_memory_model_speedup(benchmark, timings):
    benchmark.pedantic(run_wasai_model, rounds=1, iterations=1)
    speedup = timings["eosafe"] / max(timings["wasai"], 1e-9)
    print(f"\nC2 ablation over {ACCESSES} accesses: concrete-address "
          f"model is {speedup:.1f}x faster than the scan-all model")
    assert speedup > 2.0, (
        f"expected a clear asymmetry, got {speedup:.1f}x")

"""Ablation (§5): the solver/throughput resource trade-off.

The paper caps solver resources for throughput and notes the FNs come
from unsolved branches: "we can get better results by extending the
fuzzing time, while it is a trade-off between scalability and
efficiency."  Two sweeps reproduce that trade:

* **fuzzing time** — recall on deep-maze Rollback contracts rises with
  the virtual budget;
* **flips per round** — rationing solver queries per feedback round
  slows branch resolution at a fixed time budget.
"""

import random

import pytest

from repro import ContractConfig, generate_contract
from repro.engine import WasaiFuzzer, deploy_target, setup_chain
from repro.scanner import scan_report

TIME_BUDGETS = (1_500.0, 6_000.0, 40_000.0)
FLIP_BUDGETS = (1, 4)
CONTRACTS = 6


def deep_contract(seed: int):
    return generate_contract(ContractConfig(
        seed=seed * 131 + 7, reward_scheme="inline", maze_depth=5))


def detection_rate(timeout_ms: float, flips_per_round: int) -> float:
    detected = 0
    for seed in range(CONTRACTS):
        generated = deep_contract(seed)
        chain = setup_chain()
        target = deploy_target(chain, "victim", generated.module,
                               generated.abi)
        fuzzer = WasaiFuzzer(chain, target, rng=random.Random(seed),
                             timeout_ms=timeout_ms,
                             max_flips_per_round=flips_per_round)
        report = fuzzer.run()
        if scan_report(report, target).detected("rollback"):
            detected += 1
    return detected / CONTRACTS


@pytest.fixture(scope="module")
def time_sweep():
    return {budget: detection_rate(budget, 4) for budget in TIME_BUDGETS}


@pytest.fixture(scope="module")
def flip_sweep():
    return {flips: detection_rate(TIME_BUDGETS[1], flips)
            for flips in FLIP_BUDGETS}


def test_ablation_budgets(benchmark, time_sweep, flip_sweep):
    benchmark.pedantic(lambda: detection_rate(TIME_BUDGETS[0], 4),
                       rounds=1, iterations=1)
    print("\nAblation: fuzzing budget vs detection rate on deep-maze "
          "Rollback contracts")
    for budget, rate in time_sweep.items():
        print(f"  timeout={budget / 1000:5.1f}s  detection {rate:.0%}")
    print("Ablation: solver queries per feedback round "
          f"(at {TIME_BUDGETS[1] / 1000:.0f}s)")
    for flips, rate in flip_sweep.items():
        print(f"  flips/round={flips}  detection {rate:.0%}")
    rates = [time_sweep[b] for b in TIME_BUDGETS]
    assert rates == sorted(rates), (
        f"more fuzzing time must not hurt recall: {time_sweep}")
    assert time_sweep[TIME_BUDGETS[-1]] >= 0.8


def test_ablation_time_monotone(time_sweep):
    rates = [time_sweep[b] for b in TIME_BUDGETS]
    assert rates == sorted(rates), (
        f"more fuzzing time must not hurt recall: {time_sweep}")


def test_ablation_generous_budget_resolves(time_sweep):
    assert time_sweep[TIME_BUDGETS[-1]] >= 0.8


def test_ablation_starved_budget_misses(time_sweep):
    assert time_sweep[TIME_BUDGETS[0]] < time_sweep[TIME_BUDGETS[-1]], (
        "the trade-off should be visible at the starved end")

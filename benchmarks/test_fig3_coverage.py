"""Figure 3 (RQ1): branch coverage of WASAI vs EOSFuzzer over time.

Reproduces the coverage-vs-time series on real-world-like contracts.
Expected shape (§4.1): EOSFuzzer leads during the first seconds while
WASAI pays for SMT solving; WASAI crosses over shortly after (paper:
~10 s) and finishes with roughly 2x the distinct branches.
"""

import numpy as np
import pytest

from repro import build_rq1_contracts, run_eosfuzzer, run_wasai
from .conftest import env_int

TIMEOUT_MS = 300_000.0  # the paper's five-minute campaigns
GRID = np.concatenate([np.arange(0.0, 30_001.0, 2_000.0),
                       np.arange(40_000.0, TIMEOUT_MS + 1, 20_000.0)])


def coverage_series(contracts, runner):
    """Cumulative distinct branches over all contracts at each grid
    point (the Figure 3 y-axis)."""
    total = np.zeros(len(GRID))
    for index, generated in enumerate(contracts):
        run = runner(generated.module, generated.abi,
                     timeout_ms=TIMEOUT_MS, rng_seed=100 + index)
        values = np.zeros(len(GRID))
        for time_ms, count in run.report.coverage_timeline:
            values[GRID >= time_ms] = count
        total += values
    return total


@pytest.fixture(scope="module")
def contracts():
    return build_rq1_contracts(count=env_int("REPRO_FIG3_CONTRACTS", 12),
                               seed=41)


@pytest.fixture(scope="module")
def series(contracts):
    wasai = coverage_series(contracts, run_wasai)
    eosfuzzer = coverage_series(contracts, run_eosfuzzer)
    return wasai, eosfuzzer


def test_fig3_series(benchmark, contracts, series):
    wasai, eosfuzzer = series
    # Benchmark one WASAI campaign (the unit of Figure 3's cost).
    generated = contracts[0]
    benchmark.pedantic(
        lambda: run_wasai(generated.module, generated.abi,
                          timeout_ms=TIMEOUT_MS, rng_seed=100),
        rounds=1, iterations=1)
    print("\nFigure 3: cumulative distinct branches "
          f"({len(contracts)} contracts, 300 virtual seconds)")
    print(f"{'t (s)':>8} {'WASAI':>10} {'EOSFuzzer':>10}")
    for i in range(0, len(GRID), 2):
        print(f"{GRID[i] / 1000:8.0f} {wasai[i]:10.0f} "
              f"{eosfuzzer[i]:10.0f}")
    ratio = wasai[-1] / max(eosfuzzer[-1], 1)
    print(f"final coverage ratio: {ratio:.2f}x (paper: ~2x)")
    assert ratio >= 1.5, f"coverage advantage collapsed: {ratio:.2f}x"
    crossover = next((GRID[i] for i in range(len(GRID))
                      if wasai[i] > eosfuzzer[i]), None)
    assert crossover is not None and crossover <= 30_000


def test_fig3_eosfuzzer_leads_early(series):
    wasai, eosfuzzer = series
    early = GRID <= 2_000
    assert eosfuzzer[early][-1] >= wasai[early][-1], (
        "EOSFuzzer should lead while WASAI pays solver time up front")


def test_fig3_wasai_overtakes(series):
    wasai, eosfuzzer = series
    crossover = None
    for i in range(len(GRID)):
        if wasai[i] > eosfuzzer[i]:
            crossover = GRID[i]
            break
    assert crossover is not None, "WASAI never overtook EOSFuzzer"
    assert crossover <= 30_000, f"crossover too late: {crossover} ms"


def test_fig3_final_ratio_near_2x(series):
    wasai, eosfuzzer = series
    ratio = wasai[-1] / max(eosfuzzer[-1], 1)
    assert ratio >= 1.5, f"coverage advantage collapsed: {ratio:.2f}x"

"""Throughput benchmark: the parallel campaign executor + caches.

Runs the Table 4 corpus through ``evaluate_corpus`` serially and with a
4-worker pool, checks the tables are byte-identical, and records the
perf trajectory (campaigns/sec, cache hit rates, per-stage wall-clock,
speedup) in ``BENCH_throughput.json`` at the repo root so successive
PRs can track it.

Scale knobs: REPRO_BENCH_SCALE / REPRO_BENCH_TIMEOUT_MS (see
conftest.py) and REPRO_THROUGHPUT_OUT for the report path.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro import build_table4_corpus, evaluate_corpus, ThroughputStats
from repro.engine import configure_instrumentation_cache
from repro.sharedcache import configure_shared_cache, shared_cache_dir
from repro.smt import configure_solver_cache
from repro.wasm import translation_enabled

PARALLEL_JOBS = 4


@pytest.fixture(scope="module")
def corpus(bench_scale):
    return build_table4_corpus(scale=bench_scale)


@pytest.fixture(scope="module")
def runs(corpus, bench_timeout_ms, tmp_path_factory):
    """Serial and 4-worker evaluations of the same corpus.

    Each run gets its own fresh shared-cache directory: within the
    parallel run the forked workers share one disk tier (the thing
    being measured), while serial and parallel stay independent of
    each other and of anything a previous invocation left behind.
    """
    previous_dir = shared_cache_dir()
    outcome = {}
    try:
        for label, jobs in (("serial", 1), ("parallel", PARALLEL_JOBS)):
            configure_shared_cache(tmp_path_factory.mktemp(f"cache_{label}"))
            configure_instrumentation_cache(enabled=True)
            configure_solver_cache(enabled=True)
            perf = ThroughputStats()
            started = time.perf_counter()
            tables = evaluate_corpus(corpus, timeout_ms=bench_timeout_ms,
                                     jobs=jobs, perf=perf)
            wall = time.perf_counter() - started
            outcome[label] = (tables, perf, wall)
    finally:
        configure_shared_cache(previous_dir)
        configure_instrumentation_cache(enabled=True)
        configure_solver_cache(enabled=True)
    return outcome


def test_parallel_tables_match_serial(runs):
    serial, parallel = runs["serial"][0], runs["parallel"][0]
    assert {t: m.format() for t, m in serial.items()} \
        == {t: m.format() for t, m in parallel.items()}


def test_instrumentation_cache_eliminates_repeat_work(runs, corpus):
    """Each distinct module is instrumented once (cache misses), and
    every redeployment beyond that — the second dynamic tool plus any
    duplicate binaries in the corpus — hits the cache."""
    from repro.engine import module_fingerprint
    distinct = len({module_fingerprint(s.module) for s in corpus})
    _, perf, _ = runs["serial"]
    assert perf.instr_cache_misses == distinct
    # wasai + eosfuzzer each deploy every sample exactly once.
    assert perf.instr_cache_hits == 2 * len(corpus) - distinct


def test_campaign_throughput_positive(runs):
    for label in ("serial", "parallel"):
        _, perf, _ = runs[label]
        assert perf.campaigns > 0
        assert perf.campaigns_per_sec > 0
        assert perf.failures == 0


def test_parallel_speedup(runs):
    """>= 2x with 4 workers — only meaningful with >= 4 cores."""
    serial_wall = runs["serial"][2]
    parallel_wall = runs["parallel"][2]
    speedup = serial_wall / max(parallel_wall, 1e-9)
    print(f"\nthroughput: serial {serial_wall:.2f}s, "
          f"parallel({PARALLEL_JOBS}) {parallel_wall:.2f}s, "
          f"speedup {speedup:.2f}x on {os.cpu_count()} CPUs")
    if (os.cpu_count() or 1) < PARALLEL_JOBS:
        pytest.skip(f"needs >= {PARALLEL_JOBS} CPUs for the 2x bar "
                    f"(host has {os.cpu_count()})")
    assert speedup >= 2.0


def test_parallel_never_slower(runs):
    """Perf-smoke floor: warm workers + shared caches must keep the
    4-worker run at least as fast as serial whenever there is any
    parallelism to exploit.  CI fails the build on a regression here."""
    if (os.cpu_count() or 1) < 2:
        pytest.skip(f"needs >= 2 CPUs (host has {os.cpu_count()})")
    serial_wall = runs["serial"][2]
    parallel_wall = runs["parallel"][2]
    speedup = serial_wall / max(parallel_wall, 1e-9)
    assert speedup >= 1.0, \
        f"parallel run slower than serial ({speedup:.2f}x)"


def test_write_throughput_report(runs, bench_scale, bench_timeout_ms):
    serial_tables, serial_perf, serial_wall = runs["serial"]
    _, parallel_perf, parallel_wall = runs["parallel"]
    out = Path(os.environ.get(
        "REPRO_THROUGHPUT_OUT",
        Path(__file__).resolve().parents[1] / "BENCH_throughput.json"))
    doc = {
        "benchmark": "table4_corpus_throughput",
        "scale": bench_scale,
        "timeout_ms": bench_timeout_ms,
        "cpu_count": os.cpu_count(),
        "parallel_jobs": PARALLEL_JOBS,
        "serial": serial_perf.as_dict(),
        "parallel": parallel_perf.as_dict(),
        "speedup": serial_wall / max(parallel_wall, 1e-9),
        "translation_enabled": translation_enabled(),
        "shared_cache": True,
        "wasai_total_f1": serial_tables["wasai"].total().f1,
    }
    out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    for label, perf in (("serial", serial_perf),
                        ("parallel", parallel_perf)):
        print(f"\n[{label}]")
        print(perf.format())
    assert out.exists()

"""RQ4 (§4.4): vulnerabilities in the wild.

Applies WASAI to the profitable wild-contract corpus (991 contracts at
scale 1).  Expected shape: over 70% flagged vulnerable; MissAuth the
most common class and BlockinfoDep the rarest; ~58% of flagged
contracts still operating, only a sliver patched.
"""

import os

import pytest

from repro import build_wild_corpus, run_wasai
from repro.scanner import VULN_TITLES


@pytest.fixture(scope="module")
def study(bench_timeout_ms):
    scale = float(os.environ.get("REPRO_RQ4_SCALE", 0.05))
    wild = build_wild_corpus(scale=scale)
    results = []
    for index, entry in enumerate(wild):
        run = run_wasai(entry.contract.module, entry.contract.abi,
                        timeout_ms=bench_timeout_ms,
                        rng_seed=3000 + index)
        results.append((entry, run.scan))
    return wild, results


def test_rq4(benchmark, study, bench_timeout_ms):
    wild, results = study
    entry = wild[0]
    benchmark.pedantic(
        lambda: run_wasai(entry.contract.module, entry.contract.abi,
                          timeout_ms=bench_timeout_ms),
        rounds=1, iterations=1)
    flagged = [(e, s) for e, s in results if s.is_vulnerable()]
    print(f"\nRQ4: {len(wild)} profitable contracts "
          f"(paper: 991); flagged {len(flagged)} "
          f"({len(flagged) / len(wild):.1%}; paper: 71.3%)")
    for vuln_type in VULN_TITLES:
        count = sum(1 for _, s in results if s.detected(vuln_type))
        print(f"  {vuln_type:<13} {count:4d} flagged")
    operating = [e for e, _ in flagged if e.still_operating]
    patched = [e for e in operating if e.patched_later]
    exposed = len(operating) - len(patched)
    print(f"  still operating: {len(operating)} "
          f"({len(operating) / max(len(flagged), 1):.1%}; paper: 58.4%)")
    print(f"  patched later:   {len(patched)}")
    print(f"  still exposed:   {exposed} (paper: 341)")
    assert len(flagged) / len(wild) >= 0.60


def test_rq4_majority_vulnerable(study):
    wild, results = study
    flagged = sum(1 for _, s in results if s.is_vulnerable())
    assert flagged / len(wild) >= 0.60, (
        f"paper: 71.3% vulnerable, got {flagged / len(wild):.1%}")


def test_rq4_missauth_most_common(study):
    _, results = study
    counts = {t: sum(1 for _, s in results if s.detected(t))
              for t in VULN_TITLES}
    assert counts["missauth"] == max(counts.values())
    assert counts["blockinfodep"] == min(counts.values())


def test_rq4_detection_matches_ground_truth(study):
    """Accuracy holds in the wild too: flag decisions should track the
    per-contract ground truth closely."""
    _, results = study
    agree = 0
    total = 0
    for entry, scan in results:
        for vuln_type, truth in entry.ground_truth.items():
            agree += int(scan.detected(vuln_type) == truth)
            total += 1
    assert agree / total >= 0.93

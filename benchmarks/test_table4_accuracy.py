"""Table 4 (RQ2): detection accuracy on the ground-truth benchmark.

Expected shape: WASAI P=100% with recall in the high nineties;
EOSFuzzer detects nothing for MissAuth/Rollback (no oracles) and
little for BlockinfoDep; EOSAFE shows low recall on Fake EOS/MissAuth
(dispatcher heuristic), timeout-positive Fake Notif (low precision)
and ~50% precision on Rollback.
"""

import pytest

from repro import build_table4_corpus, evaluate_corpus

PAPER_ROWS = """\
Paper Table 4 (for comparison):
  WASAI      total  P=100.0% R= 98.4% F1= 99.2%
  EOSFuzzer  total  P= 94.2% R= 63.9% F1= 76.1%
  EOSAFE     total  P= 67.7% R= 75.6% F1= 71.4%"""


@pytest.fixture(scope="module")
def tables(bench_scale, bench_timeout_ms):
    samples = build_table4_corpus(scale=bench_scale)
    return evaluate_corpus(samples, timeout_ms=bench_timeout_ms), samples


def test_table4(benchmark, tables, bench_scale, bench_timeout_ms):
    result, samples = tables
    # Benchmark the per-sample pipeline cost on one sample.
    from repro import run_wasai
    sample = samples[0]
    benchmark.pedantic(
        lambda: run_wasai(sample.module, sample.contract.abi,
                          timeout_ms=bench_timeout_ms),
        rounds=1, iterations=1)
    print(f"\nTable 4 at scale {bench_scale} ({len(samples)} samples)")
    for table in result.values():
        print(table.format())
    print(PAPER_ROWS)
    total = result["wasai"].total()
    assert total.precision >= 0.97
    assert total.recall >= 0.90
    assert total.f1 > result["eosfuzzer"].total().f1
    assert total.f1 > result["eosafe"].total().f1


def test_table4_wasai_precision_perfect(tables):
    result, _ = tables
    total = result["wasai"].total()
    assert total.precision >= 0.97, "paper: 0 FPs over 3,340 samples"


def test_table4_wasai_recall_high(tables):
    result, _ = tables
    assert result["wasai"].total().recall >= 0.90


def test_table4_wasai_beats_baselines(tables):
    result, _ = tables
    wasai = result["wasai"].total().f1
    assert wasai > result["eosfuzzer"].total().f1
    assert wasai > result["eosafe"].total().f1


def test_table4_eosfuzzer_missing_oracles(tables):
    result, _ = tables
    assert result["eosfuzzer"].per_type["missauth"].tp == 0
    assert result["eosfuzzer"].per_type["rollback"].tp == 0


def test_table4_eosafe_rollback_precision_half(tables):
    result, _ = tables
    confusion = result["eosafe"].per_type["rollback"]
    assert confusion.recall >= 0.9, "EOSAFE flags every inline action"
    assert confusion.precision <= 0.65, (
        "unreachable inline actions should produce FPs (paper: 50.5%)")


def test_table4_eosafe_low_fake_eos_recall(tables):
    result, _ = tables
    confusion = result["eosafe"].per_type["fake_eos"]
    assert confusion.recall <= 0.75, (
        "non-canonical dispatchers should produce FNs (paper: 44.9%)")

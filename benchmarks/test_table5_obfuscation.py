"""Table 5 (RQ3): the impact of code obfuscation.

The Table 4 corpus is re-run after popcount data-flow encoding and
impossible-recursion control-flow bloat.  Expected shape: WASAI barely
degrades (it observes runtime values); EOSFuzzer is unaffected; EOSAFE
collapses on Fake EOS and MissAuth (0 TP — the literal name constants
its dispatcher matcher needs are gone).
"""

import pytest

from repro import build_table4_corpus, evaluate_corpus, obfuscated_variant

PAPER_ROWS = """\
Paper Table 5 (for comparison):
  WASAI      total  P= 96.6% R= 97.9% F1= 97.3%
  EOSFuzzer  total  P= 94.0% R= 64.5% F1= 76.5%
  EOSAFE     total  P= 62.6% R= 59.9% F1= 61.2%  (Fake EOS, MissAuth: 0 TP)"""


@pytest.fixture(scope="module")
def tables(bench_scale, bench_timeout_ms):
    samples = [obfuscated_variant(s)
               for s in build_table4_corpus(scale=bench_scale)]
    return evaluate_corpus(samples, timeout_ms=bench_timeout_ms), samples


def test_table5(benchmark, tables, bench_scale, bench_timeout_ms):
    result, samples = tables
    from repro import run_wasai
    sample = samples[0]
    benchmark.pedantic(
        lambda: run_wasai(sample.module, sample.contract.abi,
                          timeout_ms=bench_timeout_ms),
        rounds=1, iterations=1)
    print(f"\nTable 5 (obfuscated) at scale {bench_scale} "
          f"({len(samples)} samples)")
    for table in result.values():
        print(table.format())
    print(PAPER_ROWS)
    assert result["wasai"].total().f1 >= 0.90
    assert result["eosafe"].per_type["fake_eos"].tp == 0
    assert result["eosafe"].per_type["missauth"].tp == 0


def test_table5_wasai_robust(tables):
    result, _ = tables
    assert result["wasai"].total().f1 >= 0.90, (
        "WASAI should retain high accuracy under obfuscation")


def test_table5_eosafe_zero_tp_fake_eos_and_missauth(tables):
    result, _ = tables
    assert result["eosafe"].per_type["fake_eos"].tp == 0
    assert result["eosafe"].per_type["missauth"].tp == 0


def test_table5_eosafe_degrades_vs_table4(tables, bench_scale,
                                          bench_timeout_ms):
    result, _ = tables
    plain = evaluate_corpus(build_table4_corpus(scale=bench_scale),
                            tools=("eosafe",),
                            timeout_ms=bench_timeout_ms)
    assert result["eosafe"].total().f1 < plain["eosafe"].total().f1


def test_table5_eosfuzzer_unaffected(tables):
    result, _ = tables
    # Random fuzzing never looked at the bytecode patterns.
    confusion = result["eosfuzzer"].per_type["fake_eos"]
    assert confusion.recall >= 0.5

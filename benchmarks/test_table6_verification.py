"""Table 6 (RQ3): the impact of complicated verification.

``if (quantity != <elaborate value>) unreachable`` guards are injected
at the action-function entry.  Expected shape: WASAI's feedback solves
the equalities and retains ~96% F1; EOSFuzzer collapses (random seeds
die at the guard; its flawed oracle then flags every Fake EOS sample —
precision 50%, recall ~10% overall); EOSAFE holds (the injected paths
are short enough for exhaustive search).
"""

import pytest

from repro import (build_table4_corpus, evaluate_corpus,
                   verification_variant)

PAPER_ROWS = """\
Paper Table 6 (for comparison):
  WASAI      total  P= 99.9% R= 92.5% F1= 96.0%
  EOSFuzzer  total  P= 50.0% R= 10.7% F1= 17.7%  (Fake EOS: P=50%, R=100%)
  EOSAFE     total  P= 67.4% R= 77.6% F1= 72.1%"""


@pytest.fixture(scope="module")
def tables(bench_scale, bench_timeout_ms):
    samples = [verification_variant(s)
               for s in build_table4_corpus(scale=bench_scale)]
    return evaluate_corpus(samples, timeout_ms=bench_timeout_ms), samples


def test_table6(benchmark, tables, bench_scale, bench_timeout_ms):
    result, samples = tables
    from repro import run_wasai
    sample = samples[0]
    benchmark.pedantic(
        lambda: run_wasai(sample.module, sample.contract.abi,
                          timeout_ms=bench_timeout_ms),
        rounds=1, iterations=1)
    print(f"\nTable 6 (complicated verification) at scale {bench_scale} "
          f"({len(samples)} samples)")
    for table in result.values():
        print(table.format())
    print(PAPER_ROWS)
    assert result["wasai"].total().f1 >= 0.85
    assert result["eosfuzzer"].total().f1 <= 0.45
    assert result["eosafe"].total().f1 >= 0.5


def test_table6_wasai_retains_accuracy(tables):
    result, _ = tables
    total = result["wasai"].total()
    assert total.precision >= 0.95
    assert total.f1 >= 0.85


def test_table6_eosfuzzer_collapses(tables):
    result, _ = tables
    total = result["eosfuzzer"].total()
    assert total.f1 <= 0.45, (
        f"EOSFuzzer should collapse (paper: 17.7%), got {total.f1:.1%}")


def test_table6_eosfuzzer_fake_eos_oracle_flaw(tables):
    result, _ = tables
    confusion = result["eosfuzzer"].per_type["fake_eos"]
    # The flawed oracle flags everything when no transaction succeeds.
    assert confusion.recall >= 0.9
    assert confusion.precision <= 0.6


def test_table6_eosafe_holds(tables):
    result, _ = tables
    assert result["eosafe"].total().f1 >= 0.5, (
        "EOSAFE covers the short injected paths exhaustively")


def test_table6_wasai_beats_both(tables):
    result, _ = tables
    wasai = result["wasai"].total().f1
    assert wasai > result["eosfuzzer"].total().f1
    assert wasai > result["eosafe"].total().f1

#!/usr/bin/env python3
"""Coverage race: WASAI vs EOSFuzzer (a miniature Figure 3).

Fuzzes a handful of branch-heavy contracts with both tools under the
same deterministic virtual clock and prints the cumulative
distinct-branch series: EOSFuzzer leads for a moment while WASAI pays
for constraint solving, then WASAI pulls away to roughly double
coverage.

Run:  python examples/coverage_race.py
"""

import numpy as np

from repro import build_rq1_contracts, run_eosfuzzer, run_wasai

CONTRACTS = 6
TIMEOUT_MS = 120_000.0
GRID = np.array([0, 1_000, 2_000, 4_000, 8_000, 15_000, 30_000,
                 60_000, 120_000], dtype=float)


def series(runner, contracts):
    total = np.zeros(len(GRID))
    for index, generated in enumerate(contracts):
        run = runner(generated.module, generated.abi,
                     timeout_ms=TIMEOUT_MS, rng_seed=500 + index)
        values = np.zeros(len(GRID))
        for time_ms, count in run.report.coverage_timeline:
            values[GRID >= time_ms] = count
        total += values
    return total


def main() -> None:
    contracts = build_rq1_contracts(count=CONTRACTS, seed=99)
    print(f"racing on {CONTRACTS} branch-heavy contracts "
          f"({TIMEOUT_MS / 1000:.0f} virtual seconds each)...\n")
    wasai = series(run_wasai, contracts)
    eosfuzzer = series(run_eosfuzzer, contracts)

    width = 46
    peak = max(wasai.max(), eosfuzzer.max(), 1.0)
    print(f"{'t':>7}  {'WASAI':>6} {'EOSFzr':>6}   cumulative distinct branches")
    for i, t in enumerate(GRID):
        bar_w = "#" * round(width * wasai[i] / peak)
        bar_e = "-" * round(width * eosfuzzer[i] / peak)
        print(f"{t / 1000:6.0f}s  {wasai[i]:6.0f} {eosfuzzer[i]:6.0f}   "
              f"W|{bar_w}")
        print(f"{'':7}  {'':6} {'':6}   E|{bar_e}")
    ratio = wasai[-1] / max(eosfuzzer[-1], 1)
    print(f"\nfinal coverage ratio: {ratio:.2f}x (the paper reports ~2x)")


if __name__ == "__main__":
    main()

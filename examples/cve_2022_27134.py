#!/usr/bin/env python3
"""Case study: the batdappboomx zero-day (CVE-2022-27134).

§4.4 of the paper: "anyone can activate the eosponser of batdappboomx
directly with a fake EOS.  Thus attackers can receive the reward from
batdappboomx as long as they set the parameter memo as 'action:buy'."

This script rebuilds that bug shape — a Fake-EOS-vulnerable contract
whose reward path additionally requires a magic memo — and shows the
two halves of WASAI's result:

1. the concolic engine *synthesises* the magic memo byte-by-byte from
   flipped branch constraints (no dictionary), and
2. the resulting payload is a working exploit: the attacker extracts
   real EOS from the contract while paying only counterfeit tokens.

Run:  python examples/cve_2022_27134.py
"""

import random

from repro import ContractConfig, generate_contract
from repro.engine import WasaiFuzzer, deploy_target, setup_chain
from repro.eosio import Asset, Encoder, N, issue_to, token_balance
from repro.scanner import scan_report

MAGIC_MEMO = b"action:buy"


def main() -> None:
    config = ContractConfig(
        account="batdappboomx",
        seed=2022,
        fake_eos_guard=False,        # the CVE: no token-issuer check
        reward_scheme="inline",
        memo_guard=MAGIC_MEMO,       # reward only for 'action:buy'
    )
    contract = generate_contract(config)
    chain = setup_chain()
    target = deploy_target(chain, "batdappboomx", contract.module,
                           contract.abi)
    issue_to(chain, "eosio.token", "batdappboomx", "1000.0000 EOS")

    print("fuzzing batdappboomx (60 virtual seconds)...")
    fuzzer = WasaiFuzzer(chain, target, rng=random.Random(2022),
                         timeout_ms=60_000)
    report = fuzzer.run()
    scan = scan_report(report, target)
    print(f"verdict: {scan.detected_types()}")

    # Find the synthesised exploit payload among the observations.
    exploit = None
    for obs in report.observations:
        if obs.payload_kind != "fake_token" or not obs.success:
            continue
        memo = obs.executed_params[3]
        memo_bytes = memo if isinstance(memo, bytes) else memo.encode()
        rewarded = any(c.api == "send_inline"
                       for c in obs.record.host_calls)
        if memo_bytes.startswith(MAGIC_MEMO) and rewarded:
            exploit = obs
            break
    assert exploit is not None, "WASAI did not synthesise the payload"
    print("\nsynthesised exploit payload (via constraint flipping):")
    print(f"  transfer@fake.token from={exploit.executed_params[0]} "
          f"to={exploit.executed_params[1]}")
    print(f"  quantity={exploit.executed_params[2]}  "
          f"memo={exploit.executed_params[3]!r}")

    # Replay the exploit on a fresh chain and show the theft.
    print("\nreplaying the exploit end-to-end:")
    chain2 = setup_chain()
    deploy_target(chain2, "batdappboomx", contract.module, contract.abi)
    issue_to(chain2, "eosio.token", "batdappboomx", "1000.0000 EOS")
    from repro.eosio.token import deploy_token
    deploy_token(chain2, "fake.token")
    issue_to(chain2, "fake.token", "attacker", "100000.0000 EOS")

    def eos(owner):
        return token_balance(chain2, "eosio.token", owner)

    before = eos("attacker")
    quantity = exploit.executed_params[2]
    memo = exploit.executed_params[3]
    data = (Encoder().name("attacker").name("batdappboomx")
            .asset(quantity).string(memo).bytes())
    result = chain2.push_action("fake.token", "transfer",
                                ["attacker"], data)
    after = eos("attacker")
    print(f"  attacker real-EOS balance: {before} -> {after}")
    print(f"  victim paid out:           "
          f"{Asset(after.amount - before.amount)}")
    assert result.success and after > before, "exploit did not pay"
    print("\nthe attacker received real EOS for counterfeit tokens "
          "(CVE-2022-27134 shape).")


if __name__ == "__main__":
    main()

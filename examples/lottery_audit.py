#!/usr/bin/env python3
"""Audit of a Listing-4-style lottery contract, before and after patching.

The vulnerable lottery answers payments with an *inline* reward gated
on tapos-based randomness — both the Rollback (§2.3.5) and the
BlockinfoDep (§2.3.4) bugs from the paper's Listing 4.  The patched
version uses a deferred reward and drops the tapos PRNG.

The script also demonstrates the Rollback exploit concretely: an
attacker contract plays the lottery with an inline action and asserts
false whenever it did not win, reverting its stake.

Run:  python examples/lottery_audit.py
"""

import random

from repro import ContractConfig, format_report, generate_contract
from repro.engine import WasaiFuzzer, deploy_target, setup_chain
from repro.eosio import (Action, Asset, Encoder, N, NativeContract,
                         issue_to, token_balance)
from repro.eosio.errors import AssertionFailure
from repro.scanner import scan_report


def audit(config: ContractConfig) -> None:
    contract = generate_contract(config)
    chain = setup_chain()
    target = deploy_target(chain, config.account, contract.module,
                           contract.abi)
    fuzzer = WasaiFuzzer(chain, target, rng=random.Random(1),
                         timeout_ms=25_000)
    report = fuzzer.run()
    print(format_report(scan_report(report, target)))
    print()


class EvilPlayer(NativeContract):
    """The §2.3.5 attacker: participate inline, revert when losing."""

    def __init__(self, lottery: int):
        self.lottery = lottery
        self.stake = Asset.from_string("5.0000 EOS")

    def apply(self, chain, ctx) -> None:
        if ctx.receiver != ctx.code or ctx.action_name != N("play"):
            return
        data = (Encoder().name(ctx.receiver).name(self.lottery)
                .asset(self.stake).string("bet").bytes())
        ctx.add_inline_action(Action("eosio.token", "transfer",
                                     [ctx.receiver], data))
        # The inline transfer (and the lottery's inline response) run
        # inside this same transaction; our balance check runs after.
        ctx.add_inline_action(Action(ctx.receiver, "check",
                                     [ctx.receiver], b""))

    # check is dispatched back to us as a second inline action.


class EvilChecker(EvilPlayer):
    def apply(self, chain, ctx) -> None:
        if ctx.action_name == N("play"):
            super().apply(chain, ctx)
        elif ctx.action_name == N("check") and ctx.receiver == ctx.code:
            balance = token_balance(chain, "eosio.token", ctx.receiver)
            if balance < self.start_balance:
                # We lost: revert the whole transaction (stake back!).
                raise AssertionFailure("lost -> roll back the bet")


def demonstrate_rollback_exploit() -> None:
    print("--- Rollback exploit demonstration ---")
    config = ContractConfig(account="lottery", seed=3,
                            reward_scheme="inline", use_blockinfo=True)
    contract = generate_contract(config)
    chain = setup_chain()
    deploy_target(chain, "lottery", contract.module, contract.abi)
    issue_to(chain, "eosio.token", "lottery", "1000.0000 EOS")
    evil = EvilChecker(N("lottery"))
    chain.set_contract("evil", evil)
    issue_to(chain, "eosio.token", "evil", "100.0000 EOS")

    wins = reverted = 0
    for round_number in range(12):
        if round_number % 3 == 2:
            # A block where the tapos dice land badly (b == 0 in the
            # Listing 4 PRNG): the lottery keeps the stake.
            chain.tapos_block_prefix = (1 << 32) - chain.tapos_block_num
        else:
            chain.tapos_block_prefix = 0x1000 + round_number * 7919
        evil.start_balance = token_balance(chain, "eosio.token", "evil")
        result = chain.push_action("evil", "play", [N("evil")], b"")
        after = token_balance(chain, "eosio.token", "evil")
        if result.success:
            wins += 1
        else:
            # Losing round: our evil contract asserted, reverting the
            # inline stake transfer together with the whole tx.
            reverted += 1
            assert after == evil.start_balance, "rollback failed!"
    final = token_balance(chain, "eosio.token", "evil")
    print(f"rounds: 12, paid-out rounds: {wins}, losing rounds "
          f"reverted by the attacker: {reverted}")
    print(f"attacker balance: started 100.0000 EOS, ended {final}")
    print("every losing bet was reverted: the attacker cannot lose.\n")


def main() -> None:
    print("=== auditing the vulnerable lottery ===")
    audit(ContractConfig(account="lottery", seed=3,
                         reward_scheme="inline", use_blockinfo=True,
                         maze_depth=1))
    print("=== auditing the patched lottery (defer + no tapos PRNG) ===")
    audit(ContractConfig(account="lottery", seed=3,
                         reward_scheme="defer", use_blockinfo=False,
                         maze_depth=1))
    demonstrate_rollback_exploit()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: audit one Wasm smart contract with WASAI.

Generates an EOSIO-style contract with two planted vulnerabilities
(the Fake EOS guard and a permission check are missing), runs a
concolic fuzzing campaign against it on the local chain, and prints
the vulnerability report.

Run:  python examples/quickstart.py
"""

from repro import ContractConfig, format_report, generate_contract, run_wasai


def main() -> None:
    # A contract whose developer forgot the `code == eosio.token`
    # guard (Listing 1) and the `require_auth` call (Listing 3).
    config = ContractConfig(
        account="eosbet",
        seed=7,
        fake_eos_guard=False,   # accepts counterfeit EOS
        auth_check=False,       # payout without permission check
        reward_scheme="defer",
        maze_depth=2,           # some input validation to chew through
    )
    contract = generate_contract(config)
    print(f"generated contract '{config.account}' "
          f"({len(contract.module.functions)} functions); "
          f"planted: {[k for k, v in contract.ground_truth.items() if v]}")

    print("fuzzing (30 virtual seconds)...")
    run = run_wasai(contract.module, contract.abi, account=config.account,
                    timeout_ms=30_000)

    report = run.report
    print(f"executed {report.iterations} fuzzing iterations, covered "
          f"{len(report.covered)} distinct branches, generated "
          f"{report.adaptive_seeds} adaptive seeds\n")
    print(format_report(run.scan))

    # The detectors come with exploit evidence.
    finding = run.scan.findings["fake_eos"]
    if finding.detected:
        print(f"\nexploit evidence: {finding.evidence}")


if __name__ == "__main__":
    main()

"""Semantic re-verdict drill: new oracle families, zero re-fuzzing.

The scenario the semantic-oracle subsystem exists for:

1. A scan service (trace capture on, paper-five oracles) fuzzes a
   contract whose deposit arithmetic wraps — a bug the paper's five
   API-shape oracles cannot see.  The stored verdict says *clean*.
2. The oracle set evolves: a re-verdict sweep replays the **stored
   trace packs** with the semantic families enabled and an upgraded
   oracle version.  The wrapped-arithmetic verdict flips to
   vulnerable — without a single re-fuzzed campaign — and every
   rewritten verdict carries replay provenance.
3. One pack predates the semantic surface (simulated by stripping the
   surface section).  The sweep counts it ``insufficient`` and
   re-queues a fresh scan; it is never reported as drift.

Run: ``PYTHONPATH=src python examples/semoracle_drill.py``
"""

import dataclasses
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.benchgen import SemanticConfig, generate_semantic_contract
from repro.scanner import ORACLE_VERSION
from repro.service import ScanService, ScanServiceConfig
from repro.traceir import decode_pack, encode_pack
from repro.wasm import encode_module

TIMEOUT_MS = 8_000.0


def wait_done(service, job_id, timeout_s=120.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        job = service.job(job_id)
        if job is not None and job.terminal:
            assert job.state == "done", f"job ended {job.state}"
            return job
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} never finished")


def submit(service, contract):
    data = encode_module(contract.module)
    submission = service.submit_bytes(data, contract.abi.to_json())
    return wait_done(service, submission.job.job_id), data


def detected(record, family):
    (scan,) = record["result"]["scans"].values()
    return scan["findings"][family]["detected"]


def main() -> int:
    buggy = generate_semantic_contract(
        SemanticConfig(family="token_arith", vulnerable=True, seed=1))
    clean = generate_semantic_contract(
        SemanticConfig(family="token_arith", vulnerable=False, seed=2))

    with tempfile.TemporaryDirectory() as tmp:
        service = ScanService(
            store=str(Path(tmp) / "drill.db"),
            config=ScanServiceConfig(workers=1, poll_s=0.02,
                                     default_timeout_ms=TIMEOUT_MS,
                                     capture_traces=True))
        service.start()
        try:
            buggy_job, buggy_bytes = submit(service, buggy)
            clean_job, _ = submit(service, clean)
            store = service.store

            before = store.verdict_record(buggy_job.scan_key)
            findings = before["result"]["scans"]["wasai"]["findings"]
            assert "token_arith" not in findings, \
                "paper-five default must stay byte-compatible"
            assert not any(f["detected"] for f in findings.values()), \
                "the paper's five oracles should miss the arithmetic bug"
            print("phase 1  fuzzed 2 contracts under the paper's five "
                  "oracles; wrapped arithmetic stored as CLEAN")

            # Simulate a pack captured before the semantic surface
            # existed: strip the surface off the clean contract's pack.
            row = store.get_trace(clean_job.scan_key)
            bare = dataclasses.replace(decode_pack(row["blob"]),
                                       semantic=None)
            store.put_trace(clean_job.scan_key, row["module_hash"],
                            row["tool"], encode_pack(bare),
                            row["traceir_version"])

            bumped = ORACLE_VERSION + 1
            report = service.reverdict(oracle_version=bumped,
                                       oracles="all")
            assert report.replayed == 1 and report.rewritten == 1
            assert report.insufficient == 1, report.to_doc()
            assert report.corrupt == 0
            assert all(i["kind"] != "verdict_drift" or
                       i["scan_key"] != clean_job.scan_key
                       for i in report.incidents), \
                "insufficient pack must never masquerade as drift"
            print(f"phase 2  re-verdict sweep: {report.replayed} pack "
                  f"replayed, {report.insufficient} insufficient "
                  "(re-queued), zero campaigns re-fuzzed")

            after = store.verdict_record(buggy_job.scan_key)
            provenance = after["result"]["provenance"]
            assert detected(after, "token_arith"), \
                "replay with the semantic families must flip the verdict"
            assert provenance["source"] == "replay"
            assert provenance["oracle_version"] == bumped
            assert "token_arith" in provenance["oracles"]
            print(f"phase 3  stored verdict flipped to VULNERABLE "
                  f"(token_arith) under oracle v{bumped}, "
                  "provenance source=replay")

            # The insufficient pack's module is re-scannable: same
            # bytes miss the dedup cache and fuzz fresh.
            assert store.verdict_record(clean_job.scan_key) is None
            resub = service.submit_bytes(
                encode_module(clean.module), clean.abi.to_json())
            assert resub.outcome == "queued", resub.outcome
            wait_done(service, resub.job.job_id)
            assert service.stats()["traceir"][
                "insufficient_surface"] == 1
            print("phase 4  insufficient pack's contract re-queued and "
                  "re-scanned fresh; /stats counted it")
        finally:
            service.drain()

    print("ok: semantic re-verdict drill passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Service smoke test: drive a real ``wasai serve`` daemon end to end.

Run by the CI ``service-smoke`` job (and runnable by hand):

1. start the daemon as a subprocess on an ephemeral port;
2. submit a benchgen contract, poll the job to completion;
3. submit a hostile module — it must be rejected at admission with a
   typed ``malformed_module`` diagnostic, never reaching a worker;
4. resubmit the first contract — ``/stats`` must show the dedup cache
   hit and a queue drained back to zero with non-zero p50 latency;
5. SIGTERM the daemon and require a graceful, zero-exit drain.

Exits non-zero on the first violated expectation.
"""

import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.benchgen import ContractConfig, generate_contract
from repro.service import ServiceClient, ServiceError
from repro.wasm import encode_module


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def wait_healthy(client: ServiceClient, timeout_s: float = 30.0) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            if client.health()["status"] == "ok":
                return
        except Exception:
            time.sleep(0.2)
    raise SystemExit("daemon never became healthy")


def main() -> int:
    generated = generate_contract(ContractConfig(fake_eos_guard=False))
    wasm = encode_module(generated.module)
    abi = generated.abi.to_json()

    port = free_port()
    with tempfile.TemporaryDirectory() as tmp:
        store = Path(tmp) / "store.db"
        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--port", str(port), "--store", str(store),
             "--workers", "2", "--timeout-ms", "5000"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
        client = ServiceClient(f"http://127.0.0.1:{port}")
        try:
            wait_healthy(client)
            print("daemon healthy")

            job = client.submit(wasm, abi, client="smoke")
            print(f"submitted: job {job['id']} ({job['outcome']})")
            done = client.wait(job["id"], timeout_s=120)
            assert done["state"] == "done", done
            assert done["verdict"]["vulnerable"] is True, done
            print("verdict: vulnerable (as planted)")

            try:
                client.submit(b"\x00asm\x07\x00\x00\x00hostile", abi)
                raise SystemExit("hostile module was accepted!")
            except ServiceError as exc:
                assert exc.status == 400, exc
                assert exc.error == "malformed_module", exc
                print(f"hostile module rejected at admission: {exc}")

            duplicate = client.submit(wasm, abi, client="smoke2")
            assert duplicate["outcome"] == "cached", duplicate
            assert duplicate["verdict"] == done["verdict"], duplicate
            stats = client.stats()
            assert stats["dedup"]["cache_hits"] == 1, stats["dedup"]
            assert stats["admission_rejected"] == 1, stats
            assert stats["queue_depth"] == 0, stats
            assert stats["latency"]["job"]["p50_s"] > 0, stats
            print(f"stats ok: dedup={stats['dedup']} "
                  f"p50={stats['latency']['job']['p50_s']:.3f}s")

            daemon.send_signal(signal.SIGTERM)
            code = daemon.wait(timeout=60)
            assert code == 0, f"daemon exited {code}"
            print("graceful drain ok")
        finally:
            if daemon.poll() is None:
                daemon.kill()
            output = daemon.stdout.read().decode(errors="replace")
            print("--- daemon log ---")
            print(output)
    print("service smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""A tour of the underlying toolchain, layer by layer.

Shows the public APIs of the substrates that WASAI is built from:

1. assemble a Wasm module from scratch (repro.wasm.builder),
2. encode/parse/validate it (the binary toolchain),
3. instrument it with Wasabi-style hooks and watch the trace,
4. replay the trace symbolically and solve a flipped branch
   (repro.symbolic + repro.smt).

Run:  python examples/toolchain_tour.py
"""

from repro.instrument import (HOOK_MODULE, decode_raw_trace,
                              instrument_module)
from repro.smt import SAT, Solver
from repro.wasm import (HostFunc, Instance, ModuleBuilder, encode_module,
                        parse_module, validate_module)


def main() -> None:
    # 1. Assemble: f(x) = if (x * 3 > 100) then x else 0
    print("=== 1. assembling a module ===")
    builder = ModuleBuilder()
    f = builder.function("f", params=["i32"], results=["i32"])
    f.local_get(0).i32_const(3).emit("i32.mul")
    f.i32_const(100).emit("i32.gt_u")
    f.emit("if", "i32")
    f.local_get(0)
    f.emit("else")
    f.i32_const(0)
    f.emit("end")
    builder.export_function("f", f)
    module = builder.build()
    print(f"one function, body: {module.functions[0].body}")

    # 2. Binary round-trip + validation.
    print("\n=== 2. binary toolchain ===")
    binary = encode_module(module)
    print(f"encoded: {len(binary)} bytes, magic {binary[:4]!r}")
    reparsed = parse_module(binary)
    validate_module(reparsed)
    print("parsed back and validated OK")

    # 3. Instrument and execute, capturing the trace.
    print("\n=== 3. instrumentation (C1) ===")
    instrumented, sites = instrument_module(module)
    print(f"{len(sites)} instrumentation sites, "
          f"{sum(1 for i in instrumented.imports if i.module == HOOK_MODULE)}"
          " hook imports")
    raw: list[tuple] = []
    imports = {}
    for imp in instrumented.imports:
        if imp.module == HOOK_MODULE:
            func_type = instrumented.types[imp.desc]
            imports[(imp.module, imp.name)] = HostFunc(
                func_type,
                lambda inst, args, name=imp.name:
                    raw.append((name, tuple(args))) or [])
    instance = Instance(instrumented, imports)
    result = instance.invoke("f", [50])
    print(f"f(50) = {result[0]}")
    events = decode_raw_trace(raw)
    for event in events:
        if event.kind == "instr":
            site = sites[event.site_id]
            print(f"  τ({site.instr.op}, {event.operands})")

    # 4. Symbolic: rebuild the branch condition and flip it.
    print("\n=== 4. constraint flipping (Symback + repro.smt) ===")
    from repro.smt import BitVec, BitVecVal, Not, UGT
    x = BitVec("x", 32)
    condition = UGT(x * BitVecVal(3, 32), BitVecVal(100, 32))
    print(f"f(50) took the branch: {condition}")
    solver = Solver()
    solver.add(Not(condition))
    assert solver.check() == SAT
    witness = solver.model()[x]
    print(f"flipped model: x = {witness}  "
          f"(so f({witness}) takes the other arm)")
    assert instance.invoke("f", [witness]) == [0]
    print("confirmed on the interpreter: other branch reached")


if __name__ == "__main__":
    main()

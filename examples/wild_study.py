#!/usr/bin/env python3
"""A miniature RQ4: scanning 'deployed' contracts in the wild (§4.4).

Builds a scaled-down version of the 991-contract profitable corpus,
scans every contract with WASAI, and reports the population
statistics the paper presents: what fraction is vulnerable, which
classes dominate, and how many flagged contracts are still operating
unpatched.

Run:  python examples/wild_study.py
"""

from repro.study import format_wild_study, run_wild_study


def main() -> None:
    print("scanning the wild corpus (this fuzzes every contract)...")
    result = run_wild_study(scale=0.04, timeout_ms=15_000)
    print()
    print(format_wild_study(result))
    print()
    worst = max(result.flagged,
                key=lambda pair: len(pair[1].detected_types()))
    entry, scan = worst
    print("most-vulnerable contract in the sample "
          f"({len(scan.detected_types())} classes): "
          f"{scan.detected_types()}")
    status = ("still operating, unpatched"
              if entry.still_operating and not entry.patched_later
              else "abandoned or patched")
    print(f"maintenance status: {status}")


if __name__ == "__main__":
    main()

"""WASAI reproduction: a concolic fuzzer for Wasm smart contracts.

This package reproduces "WASAI: Uncovering Vulnerabilities in Wasm
Smart Contracts" (ISSTA'22; poster at ICDCS'23) as a self-contained
Python library:

* :mod:`repro.wasm` - a WebAssembly toolchain (codec, validator,
  interpreter, assembler),
* :mod:`repro.eosio` - a deterministic local EOSIO chain with the
  library APIs, the token contract and the notification semantics the
  five vulnerability classes rely on,
* :mod:`repro.smt` - a pure-Python bitvector SMT solver (the offline
  stand-in for Z3),
* :mod:`repro.instrument` - Wasabi-style contract-level tracing hooks,
* :mod:`repro.symbolic` - Symback: the trace-replaying EOSVM simulator,
* :mod:`repro.engine` / :mod:`repro.scanner` - the fuzzing loop and
  the five vulnerability oracles,
* :mod:`repro.baselines` - EOSFuzzer and EOSAFE as the paper models
  them,
* :mod:`repro.benchgen` - the benchmark corpus generator (Tables 4-6,
  Figure 3, RQ4).

Quickstart::

    from repro import ContractConfig, generate_contract, run_wasai, format_report

    contract = generate_contract(ContractConfig(fake_eos_guard=False))
    run = run_wasai(contract.module, contract.abi)
    print(format_report(run.scan))
"""

from .benchgen import (ContractConfig, GeneratedContract, VULN_TYPES,
                       build_rq1_contracts, build_table4_corpus,
                       build_wild_corpus, generate_contract,
                       obfuscated_variant, verification_variant)
from .engine import (FuzzReport, FuzzTarget, VirtualClock, WasaiFuzzer,
                     deploy_target, setup_chain)
from .harness import (DEFAULT_TIMEOUT_MS, WasaiRun, evaluate_corpus,
                      run_eosafe, run_eosfuzzer, run_wasai)
from .metrics import Confusion, MetricsTable, ThroughputStats
from .parallel import TaskResult, default_jobs, run_tasks
from .resilience import (CampaignError, CampaignJournal, Fault,
                         Quarantine, ResiliencePolicy, TaskTimeout,
                         WorkerCrash, clear_fault_plan, fault_scope,
                         install_fault_plan, run_with_retry)
from .scanner import ScanResult, format_report, scan_report
from .study import WildStudyResult, format_wild_study, run_wild_study

__version__ = "1.0.0"

__all__ = [
    "ContractConfig", "GeneratedContract", "VULN_TYPES",
    "build_rq1_contracts", "build_table4_corpus", "build_wild_corpus",
    "generate_contract", "obfuscated_variant", "verification_variant",
    "FuzzReport", "FuzzTarget", "VirtualClock", "WasaiFuzzer",
    "deploy_target", "setup_chain", "DEFAULT_TIMEOUT_MS", "WasaiRun",
    "evaluate_corpus", "run_eosafe", "run_eosfuzzer", "run_wasai",
    "Confusion", "MetricsTable", "ThroughputStats", "ScanResult",
    "format_report", "scan_report", "__version__",
    "WildStudyResult", "format_wild_study", "run_wild_study",
    "TaskResult", "default_jobs", "run_tasks",
    "CampaignError", "CampaignJournal", "Fault", "Quarantine",
    "ResiliencePolicy", "TaskTimeout", "WorkerCrash",
    "clear_fault_plan", "fault_scope", "install_fault_plan",
    "run_with_retry",
]

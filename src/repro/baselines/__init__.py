"""repro.baselines — the comparison tools of §4 (EOSFuzzer, EOSAFE)."""

from .eosafe import EosafeAnalyzer, EosafeResult
from .eosfuzzer import EosfuzzerCampaign, eosfuzzer_scan

__all__ = ["EosafeAnalyzer", "EosafeResult", "EosfuzzerCampaign",
           "eosfuzzer_scan"]

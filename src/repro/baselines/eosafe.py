"""The EOSAFE baseline (He et al., USENIX Security'21) as the paper
characterises it (§4.2, §4.3).

EOSAFE is a *static* symbolic-execution analyzer.  The behaviours the
paper attributes to it — and which this model reproduces — are:

* it locates action functions by **matching dispatcher patterns**
  (e.g. ``code == N(eosio.token) && action == N(transfer)``); since
  the SDK does not mandate that idiom, non-canonical dispatchers make
  it "fail to locate the paths to action functions and report FNs due
  to the timeout";
* data-flow obfuscation (popcount-encoded constants) removes the
  literal name constants the matcher needs, so "EOSAFE cannot find any
  feasible paths to detect Fake EOS … and MissAuth, leading to 0 TP"
  (Table 5);
* when detecting **Fake Notif** it "regards timeout as a positive
  sample", trading precision for recall;
* for **Rollback** it "analyzes all branches in the conditional
  states, even if the constraints are impossible to be satisfied",
  flagging inline actions on unreachable paths — precision ≈ 50%;
* it has **no BlockinfoDep detector**;
* a path-explosion budget: too many conditional branches means
  timeout (the §4.3 complicated-verification samples stay below it
  because the injected paths are short).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..eosio.name import N
from ..scanner.detectors import ScanResult, VulnerabilityFinding
from ..wasm.module import Module
from ..wasm.opcodes import Instr

__all__ = ["EosafeAnalyzer", "EosafeResult"]

_AUTH_IMPORTS = ("require_auth", "require_auth2", "has_auth")
_EFFECT_IMPORTS = ("send_inline", "send_deferred", "db_store_i64",
                   "db_update_i64", "db_remove_i64")


@dataclass
class EosafeResult:
    findings: dict[str, bool] = field(default_factory=dict)
    timeout: bool = False
    located_dispatch: bool = False

    def to_scan_result(self, account: int = 0) -> ScanResult:
        result = ScanResult(target_account=account)
        for vuln_type, detected in self.findings.items():
            result.findings[vuln_type] = VulnerabilityFinding(
                vuln_type, detected)
        return result


class EosafeAnalyzer:
    """Static analysis of one contract module."""

    def __init__(self, path_budget: int = 4096,
                 per_function_branch_cap: int = 48):
        self.path_budget = path_budget
        self.per_function_branch_cap = per_function_branch_cap

    # -- public entry ------------------------------------------------------
    def analyze(self, module: Module) -> EosafeResult:
        result = EosafeResult()
        imports = self._import_indices(module)
        result.timeout = self._path_explosion(module)
        dispatch = self._match_dispatcher(module)
        result.located_dispatch = dispatch is not None and not result.timeout
        # --- Fake EOS: guard on the located transfer dispatch ----------
        if result.located_dispatch:
            result.findings["fake_eos"] = not self._has_code_guard(module)
        else:
            # Cannot identify a reachable path: reports nothing (FN).
            result.findings["fake_eos"] = False
        # --- Fake Notif: timeout counts as positive ---------------------
        if result.located_dispatch:
            eosponser = module.functions[dispatch]
            result.findings["fake_notif"] = not self._has_self_guard(
                eosponser)
        else:
            result.findings["fake_notif"] = True  # timeout => positive
        # --- MissAuth: per located action function ----------------------
        if result.located_dispatch:
            result.findings["missauth"] = self._missing_auth(module, imports)
        else:
            result.findings["missauth"] = False
        # --- BlockinfoDep: no detector ----------------------------------
        result.findings["blockinfodep"] = False
        # --- Rollback: any send_inline use, reachable or not ------------
        result.findings["rollback"] = self._uses_import(
            module, imports, "send_inline")
        return result

    # -- helpers -----------------------------------------------------------
    @staticmethod
    def _import_indices(module: Module) -> dict[str, int]:
        return {imp.name: i
                for i, imp in enumerate(module.imported_functions())}

    def _path_explosion(self, module: Module) -> bool:
        """Static path counting: 2^branches against the budget."""
        total = 0
        for func in module.functions:
            branches = sum(1 for instr in func.body
                           if instr.op in ("br_if", "if", "br_table"))
            if branches > self.per_function_branch_cap:
                return True
            total += branches
        return (1 << min(total, 63)) > self.path_budget

    def _match_dispatcher(self, module: Module) -> int | None:
        """The heuristic pattern: a literal ``i64.const N(transfer)``
        compared with ``i64.eq``, followed by an indirect call.  Returns
        the local index of the dispatched function, or None."""
        apply_index = module.export_index("apply", "func")
        if apply_index is None:
            return None
        apply_func = module.local_function(apply_index)
        body = apply_func.body
        transfer_const = N("transfer")
        saw_pattern_at = None
        for i in range(len(body) - 1):
            if (body[i].op == "i64.const"
                    and body[i].args[0] % (1 << 64) == transfer_const
                    and body[i + 1].op == "i64.eq"):
                saw_pattern_at = i
                break
        if saw_pattern_at is None:
            return None
        # Find the indirect dispatch that follows and resolve the slot
        # through the element segments.
        slot = None
        for j in range(saw_pattern_at, len(body)):
            if body[j].op == "call_indirect":
                for k in range(j - 1, saw_pattern_at, -1):
                    if body[k].op == "i32.const":
                        slot = body[k].args[0]
                        break
                break
        if slot is None:
            return None
        for elem in module.elements:
            base = elem.offset[0].args[0]
            if base <= slot < base + len(elem.func_indices):
                func_index = elem.func_indices[slot - base]
                return func_index - module.num_imported_functions
        return None

    def _has_code_guard(self, module: Module) -> bool:
        """Is ``code`` compared against the literal N(eosio.token)?"""
        apply_index = module.export_index("apply", "func")
        apply_func = module.local_function(apply_index)
        token_const = N("eosio.token")
        body = apply_func.body
        for i in range(len(body) - 1):
            if (body[i].op == "i64.const"
                    and body[i].args[0] % (1 << 64) == token_const
                    and body[i + 1].op in ("i64.eq", "i64.ne")):
                return True
        return False

    @staticmethod
    def _has_self_guard(eosponser) -> bool:
        """The Listing 2 pattern: params ``to`` (local 2) and ``self``
        (local 0) compared at the top of the eosponser."""
        body = eosponser.body
        for i in range(len(body) - 2):
            a, b, c = body[i], body[i + 1], body[i + 2]
            if (a.op == "local.get" and b.op == "local.get"
                    and {a.args[0], b.args[0]} == {0, 2}
                    and c.op in ("i64.eq", "i64.ne")):
                return True
        return False

    def _missing_auth(self, module: Module,
                      imports: dict[str, int]) -> bool:
        """An action function with a side effect but no auth call."""
        auth_indices = {imports[n] for n in _AUTH_IMPORTS if n in imports}
        effect_indices = {imports[n] for n in _EFFECT_IMPORTS
                          if n in imports}
        dispatched = self._dispatched_functions(module)
        # The eosponser (table slot 0) handles notifications, where
        # auth checks are meaningless; EOSAFE analyses the regular
        # action functions.
        eosponser = self._slot_function(module, 0)
        dispatched = [i for i in dispatched if i != eosponser]
        for local_index in dispatched:
            func = module.functions[local_index]
            saw_auth = False
            for instr in func.body:
                if instr.op != "call":
                    continue
                if instr.args[0] in auth_indices:
                    saw_auth = True
                elif instr.args[0] in effect_indices and not saw_auth:
                    return True
        return False

    @staticmethod
    def _slot_function(module: Module, slot: int) -> int | None:
        for elem in module.elements:
            base = elem.offset[0].args[0]
            if base <= slot < base + len(elem.func_indices):
                return (elem.func_indices[slot - base]
                        - module.num_imported_functions)
        return None

    @staticmethod
    def _dispatched_functions(module: Module) -> list[int]:
        out = []
        offset = module.num_imported_functions
        for elem in module.elements:
            for func_index in elem.func_indices:
                out.append(func_index - offset)
        return out

    @staticmethod
    def _uses_import(module: Module, imports: dict[str, int],
                     name: str) -> bool:
        index = imports.get(name)
        if index is None:
            return False
        return any(instr.op == "call" and instr.args[0] == index
                   for func in module.functions for instr in func.body)

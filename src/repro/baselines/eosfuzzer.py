"""The EOSFuzzer baseline (Huang et al., Internetware'20) as the paper
characterises it (§1, §4.2, §4.3).

Differences from WASAI, reproduced deliberately:

* **no feedback** — seeds are purely random; there is no symbolic
  replay, no constraint flipping, no DBG-driven transaction sequencing;
* **runtime-level tracing** — EOSFuzzer instruments the VM rather than
  the contract, so it "has to sacrifice the efficiency to execute smart
  contracts one by one"; the cost model charges extra per transaction;
* **flawed oracles** —
  - Fake EOS "reports positive no matter which action is invoked after
    receiving fake EOS", and "outputs a positive report … if none of
    the transactions is executed successfully" (the RQ3 collapse);
  - Fake Notif requires observing a side effect under the forged
    notification, so unexplored guard/verification code yields FNs;
  - there are **no oracles** for MissAuth or Rollback at all.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..engine.clock import CostModel, VirtualClock
from ..engine.deploy import FuzzTarget
from ..engine.fuzzer import FuzzReport, WasaiFuzzer
from ..eosio.chain import Chain
from ..scanner.detectors import EFFECT_APIS, ScanResult, VulnerabilityFinding

__all__ = ["EosfuzzerCampaign", "eosfuzzer_scan"]

# EOSFuzzer's VM-level tracing executes contracts one by one (§3.2 C1);
# we charge a serialisation penalty relative to WASAI's cost model.
EOSFUZZER_COSTS = CostModel(transaction_ms=55.0, replay_ms=0.0,
                            smt_query_ms=0.0, iteration_overhead_ms=3.0)


class EosfuzzerCampaign(WasaiFuzzer):
    """Random black-box fuzzing: WASAI's Engine with feedback off."""

    def __init__(self, chain: Chain, target: FuzzTarget,
                 rng: random.Random | None = None,
                 clock: VirtualClock | None = None,
                 timeout_ms: float = 300_000.0):
        super().__init__(chain, target, rng=rng,
                         clock=clock or VirtualClock(EOSFUZZER_COSTS),
                         timeout_ms=timeout_ms, feedback=False)


def eosfuzzer_scan(report: FuzzReport, target: FuzzTarget) -> ScanResult:
    """EOSFuzzer's oracles over a finished random campaign."""
    result = ScanResult(target_account=report.target_account)
    result.findings["fake_eos"] = _fake_eos(report)
    result.findings["fake_notif"] = _fake_notif(report)
    result.findings["blockinfodep"] = _blockinfodep(report)
    # No oracles for these two (Table 4 "-"):
    result.findings["missauth"] = VulnerabilityFinding(
        "missauth", False, "EOSFuzzer has no MissAuth oracle")
    result.findings["rollback"] = VulnerabilityFinding(
        "rollback", False, "EOSFuzzer has no Rollback oracle")
    return result


def _fake_eos(report: FuzzReport) -> VulnerabilityFinding:
    fake_payloads = (report.observations_of("direct")
                     + report.observations_of("fake_token"))
    # Flaw 1: positive no matter WHICH action ran after fake EOS was
    # sent — any successful victim execution under the fake payload
    # counts, even a benign dispatch that never reached the eosponser.
    for obs in fake_payloads:
        if obs.success:
            return VulnerabilityFinding(
                "fake_eos", True,
                "an action executed after receiving fake EOS")
    # Flaw 2: if none of the transactions executed successfully, the
    # oracle still reports positive (it cannot tell a guarded contract
    # from a dead one).
    if report.observations and not any(o.success
                                       for o in report.observations):
        return VulnerabilityFinding(
            "fake_eos", True,
            "no transaction executed successfully (oracle flaw)")
    return VulnerabilityFinding("fake_eos", False)


def _fake_notif(report: FuzzReport) -> VulnerabilityFinding:
    # Side effect observed while handling a forged notification.
    for obs in report.observations_of("fake_notif"):
        if not obs.success:
            continue
        if any(call.api in EFFECT_APIS for call in obs.record.host_calls):
            return VulnerabilityFinding(
                "fake_notif", True,
                "side effect under a forged eosio.token notification")
    return VulnerabilityFinding("fake_notif", False)


def _blockinfodep(report: FuzzReport) -> VulnerabilityFinding:
    from ..scanner.detectors import BLOCKINFO_APIS
    for obs in report.observations:
        if any(call.api in BLOCKINFO_APIS
               for call in obs.record.host_calls):
            return VulnerabilityFinding(
                "blockinfodep", True, "tapos API observed at runtime")
    return VulnerabilityFinding("blockinfodep", False)

"""repro.benchgen — benchmark corpus construction (§4.2, §4.3, §4.4)."""

from .contracts import (ContractConfig, GeneratedContract, VULN_TYPES,
                        generate_contract)
from .corpus import (BenchmarkSample, PAPER_COUNTS, WildContract,
                     build_rq1_contracts, build_table4_corpus, build_wild_corpus,
                     obfuscated_variant, verification_variant)
from .export import MANIFEST_NAME, export_corpus, load_corpus
from .hostile import (HostileSample, base_module_bytes,
                      build_hostile_corpus,
                      build_resource_hostile_modules)
from .obfuscate import obfuscate_module, popcount_encode_constant
from .semantic import (SEMANTIC_FAMILY_TYPES, SemanticConfig,
                       build_semantic_corpus, generate_semantic_contract)
from .verification import VerificationSpec, inject_verification

__all__ = ["ContractConfig", "GeneratedContract", "VULN_TYPES",
           "generate_contract", "BenchmarkSample", "PAPER_COUNTS",
           "WildContract", "build_rq1_contracts", "build_table4_corpus", "build_wild_corpus",
           "obfuscated_variant", "verification_variant",
           "obfuscate_module", "popcount_encode_constant",
           "VerificationSpec", "inject_verification",
           "MANIFEST_NAME", "export_corpus", "load_corpus",
           "HostileSample", "base_module_bytes", "build_hostile_corpus",
           "build_resource_hostile_modules",
           "SEMANTIC_FAMILY_TYPES", "SemanticConfig",
           "build_semantic_corpus", "generate_semantic_contract"]

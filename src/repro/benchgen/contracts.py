"""Generator of realistic EOSIO-style Wasm contracts.

Mainnet binaries are unavailable offline, so the benchmark corpus is
generated: each contract is genuine Wasm bytecode following the EOSIO
CDT conventions the paper's analyses exploit —

* a ``void apply(receiver, code, action)`` dispatcher that deserialises
  the action-data byte stream and reaches the action function through
  an **indirect call** (the §3.4.2 pattern),
* an *eosponser* with the ``transfer@eosio.token`` signature (§2.1),
* the Table 2 memory layout for asset and string parameters,
* database use through ``db_*_i64`` (transaction dependency), inline/
  deferred reward actions, tapos-based randomness, and the guard code
  whose presence/absence defines the five vulnerability ground truths.

The configuration knobs correspond one-to-one to the paper's benchmark
construction (§4.2): removing guard code yields Fake EOS / Fake Notif
samples, dropping ``require_auth`` yields MissAuth samples, the tapos
PRNG yields BlockinfoDep, inline rewards yield Rollback, and an
unsatisfiable branch wrapper yields the non-vulnerable twins.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from ..eosio.abi import Abi, TRANSFER_SIGNATURE
from ..eosio.asset import Asset
from ..eosio.chain import Action
from ..eosio.name import N
from ..eosio.serialize import Encoder
from ..wasm.builder import FunctionBuilder, ModuleBuilder
from ..wasm.module import Module

__all__ = ["ContractConfig", "GeneratedContract", "generate_contract",
           "INPUT_ADDR", "TEMPLATE_ADDR", "VULN_TYPES"]

VULN_TYPES = ("fake_eos", "fake_notif", "missauth", "blockinfodep",
              "rollback")

INPUT_ADDR = 1024        # where apply() deserialises the action data
TEMPLATE_ADDR = 512      # packed inline-action template
ERR_ADDR = 256           # NUL-terminated assert messages

# Table slots of the action functions (the indirect-call dispatch).
SLOT_TRANSFER = 0
SLOT_INIT = 1
SLOT_PAYOUT = 2


@dataclass
class ContractConfig:
    """Knobs defining one generated contract (and its ground truth)."""

    account: str = "victim"
    seed: int = 0
    # Guard code presence (True = patched / safe).
    fake_eos_guard: bool = True
    fake_notif_guard: bool = True
    auth_check: bool = True
    # Behavioural features.
    use_blockinfo: bool = False
    reward_scheme: str = "defer"       # "inline" | "defer" | "none"
    db_dependency: bool = False        # eosponser requires init first
    has_payout: bool = True            # expose the MissAuth surface
    # Dispatcher idiom: "canonical" uses the i64.eq pattern EOSAFE's
    # heuristic recognises; "variant" computes the same predicate as
    # eqz(action - N(x)) — semantically identical, but outside the
    # pattern (the §4.2 cause of EOSAFE's FNs).
    dispatcher_style: str = "canonical"
    # Input-verification maze (drives RQ1 coverage / RQ3 robustness).
    maze_depth: int = 0
    # Extra `if (field != const) unreachable` guards (RQ3 verification).
    verification_guards: tuple = ()    # e.g. (("amount", 100000), ...)
    # Reward only when the memo starts with this byte string — the
    # batdappboomx / CVE-2022-27134 pattern ('action:buy').
    memo_guard: bytes = b""
    # The eosponser only responds to payments from this account (the
    # §4.2 FN mechanism: "can only be invoked by the caller with the
    # specific address, i.e., its administrator").
    admin_gate: str = ""
    # Wrap the reward/tapos code in an unsatisfiable branch, producing
    # ground-truth non-vulnerable BlockinfoDep/Rollback samples (§4.2).
    unreachable_reward: bool = False

    def ground_truth(self) -> dict[str, bool]:
        """Which of the five vulnerabilities this contract truly has."""
        reward_reachable = (self.reward_scheme != "none"
                            and not self.unreachable_reward)
        return {
            "fake_eos": not self.fake_eos_guard,
            "fake_notif": not self.fake_notif_guard,
            "missauth": not self.auth_check,
            "blockinfodep": (self.use_blockinfo
                             and not self.unreachable_reward),
            "rollback": self.reward_scheme == "inline"
                        and not self.unreachable_reward,
        }


@dataclass
class GeneratedContract:
    """A generated contract plus its metadata."""

    config: ContractConfig
    module: Module
    abi: Abi
    ground_truth: dict[str, bool] = field(default_factory=dict)
    # The maze's threading input (None when maze_depth == 0); the RQ3
    # verification injector aligns its required quantity with it so the
    # injected guards stay satisfiable together with the maze.
    maze_witness: dict[str, int] | None = None

    @property
    def account(self) -> str:
        return self.config.account


def generate_contract(config: ContractConfig) -> GeneratedContract:
    """Emit the contract module for ``config``."""
    rng = random.Random(config.seed)
    gen = _ContractEmitter(config, rng)
    module = gen.build()
    abi = Abi.from_signatures(_abi_signatures(config))
    return GeneratedContract(config, module, abi, config.ground_truth(),
                             gen.maze_witness)


def _abi_signatures(config: ContractConfig) -> dict:
    signatures = {
        "transfer": TRANSFER_SIGNATURE,
        "init": (("owner", "name"),),
    }
    if config.has_payout:
        signatures["payout"] = (("to", "name"), ("quantity", "asset"))
    return signatures


class _ContractEmitter:
    """Builds the Wasm module for one configuration."""

    def __init__(self, config: ContractConfig, rng: random.Random):
        self.config = config
        self.rng = rng
        self.builder = ModuleBuilder()
        self.imports: dict[str, int] = {}
        self._err_cursor = ERR_ADDR
        self._data: list[tuple[int, bytes]] = []
        self.maze_witness: dict[str, int] | None = None

    # -- import helpers -----------------------------------------------------
    def imp(self, api: str) -> int:
        from ..eosio.host import HOST_API_SIGNATURES
        if api not in self.imports:
            params, results = HOST_API_SIGNATURES[api]
            self.imports[api] = self.builder.import_function(
                "env", api,
                params=[t.name for t in params],
                results=[r.name for r in results])
        return self.imports[api]

    def err_msg(self, text: str) -> int:
        """Embed a NUL-terminated message; returns its address."""
        addr = self._err_cursor
        data = text.encode() + b"\x00"
        self._data.append((addr, data))
        self._err_cursor += len(data)
        return addr

    # -- top level ------------------------------------------------------------
    def build(self) -> Module:
        b = self.builder
        b.add_memory(1)
        # Pre-declare every import the bodies may use so indices are
        # stable before function emission begins.
        for api in ("read_action_data", "action_data_size", "eosio_assert",
                    "require_auth", "require_recipient", "send_inline",
                    "send_deferred", "tapos_block_num", "tapos_block_prefix",
                    "db_store_i64", "db_find_i64", "db_update_i64",
                    "db_get_i64", "current_receiver"):
            self.imp(api)
        transfer = self._emit_transfer_impl()
        init = self._emit_init_impl()
        payout = self._emit_payout_impl() if self.config.has_payout else None
        extras = self._emit_extra_actions()
        self._emit_apply(transfer, init, payout, extras)
        b.add_table_entry(SLOT_TRANSFER, transfer)
        b.add_table_entry(SLOT_INIT, init)
        if payout is not None:
            b.add_table_entry(SLOT_PAYOUT, payout)
        for _name, slot, func, _dispatch in extras:
            b.add_table_entry(slot, func)
        # Inline-action template for rewards/payouts.
        template = self._reward_template()
        self._data.append((TEMPLATE_ADDR, template))
        for addr, data in self._data:
            b.add_data(addr, data)
        return b.build()

    def _emit_extra_actions(self) -> list:
        """Hook for subclass emitters (e.g. the semantic corpus) to add
        actions beyond transfer/init/payout.  Returns a list of
        ``(action_name, table_slot, function, dispatch)`` tuples where
        ``dispatch(f)`` pushes the arguments and the indirect call."""
        return []

    # -- the dispatcher (§2.2) ---------------------------------------------------
    def _emit_apply(self, transfer: FunctionBuilder, init: FunctionBuilder,
                    payout: FunctionBuilder | None,
                    extras: list = ()) -> None:
        b = self.builder
        f = b.function("apply", params=["i64", "i64", "i64"])
        size = f.add_local("i32")
        # Deserialise up-front (matches the CDT's generated dispatcher).
        f.emit("call", self.imp("action_data_size"))
        f.local_set(size)
        f.i32_const(INPUT_ADDR).local_get(size)
        f.emit("call", self.imp("read_action_data"))
        f.emit("drop")
        # --- transfer dispatch -------------------------------------------
        self._emit_action_compare(f, N("transfer"))
        f.emit("if", None)
        if self.config.fake_eos_guard:
            # Listing 1's patch: assert(code == N(eosio.token)).
            f.local_get(1)
            f.i64_const(N("eosio.token"))
            f.emit("i64.eq")
            f.i32_const(self.err_msg("onerror:fake eos"))
            f.emit("call", self.imp("eosio_assert"))
        self._dispatch_transfer(f)
        f.emit("else")
        # --- other actions: only when code == receiver (Listing 1) --------
        f.local_get(1)
        f.local_get(0)
        f.emit("i64.eq")
        f.emit("if", None)
        self._emit_action_compare(f, N("init"))
        f.emit("if", None)
        self._dispatch_init(f)
        f.emit("end")
        if payout is not None:
            self._emit_action_compare(f, N("payout"))
            f.emit("if", None)
            self._dispatch_payout(f)
            f.emit("end")
        for name, _slot, _func, dispatch in extras:
            self._emit_action_compare(f, N(name))
            f.emit("if", None)
            dispatch(f)
            f.emit("end")
        f.emit("end")
        f.emit("end")
        b.export_function("apply", f)
        self._fix_indirect_types(f)

    def _emit_action_compare(self, f: FunctionBuilder, name_value: int) -> None:
        """Push ``action == name_value`` as an i32 truth value, using
        the configured dispatcher idiom."""
        if self.config.dispatcher_style == "canonical":
            f.local_get(2)
            f.i64_const(name_value)
            f.emit("i64.eq")
        else:
            # eqz(action - N(x)): the same predicate, different shape.
            f.local_get(2)
            f.i64_const(name_value)
            f.emit("i64.sub")
            f.emit("i64.eqz")

    def _dispatch_transfer(self, f: FunctionBuilder) -> None:
        """Push the eosponser arguments per the Table 2 layout and
        dispatch through the indirect-call table."""
        f.local_get(0)                       # self (receiver)
        f.i32_const(INPUT_ADDR)
        f.emit("i64.load", 3, 0)             # from
        f.i32_const(INPUT_ADDR)
        f.emit("i64.load", 3, 8)             # to
        f.i32_const(INPUT_ADDR + 16)         # quantity ptr (amount+symbol)
        f.i32_const(INPUT_ADDR + 32)         # memo ptr (len byte + content)
        f.i32_const(SLOT_TRANSFER)
        f.emit("call_indirect", _TYPE_TRANSFER)

    def _dispatch_init(self, f: FunctionBuilder) -> None:
        f.local_get(0)
        f.i32_const(INPUT_ADDR)
        f.emit("i64.load", 3, 0)             # owner
        f.i32_const(SLOT_INIT)
        f.emit("call_indirect", _TYPE_INIT)

    def _dispatch_payout(self, f: FunctionBuilder) -> None:
        f.local_get(0)
        f.i32_const(INPUT_ADDR)
        f.emit("i64.load", 3, 0)             # to
        f.i32_const(INPUT_ADDR + 8)          # quantity ptr
        f.i32_const(SLOT_PAYOUT)
        f.emit("call_indirect", _TYPE_PAYOUT)

    def _fix_indirect_types(self, f: FunctionBuilder) -> None:
        """Replace the symbolic type markers with real type indices."""
        from ..wasm.opcodes import Instr
        marker_types = {
            _TYPE_TRANSFER: (("i64", "i64", "i64", "i32", "i32"), ()),
            _TYPE_INIT: (("i64", "i64"), ()),
            _TYPE_PAYOUT: (("i64", "i64", "i32"), ()),
        }
        self._pending_indirect = marker_types  # consumed in build() fixup
        # The builder interns types at build(); patch via a post-build
        # hook: store marker -> params on the builder for later.
        original_build = self.builder.build

        def build_with_fixup():
            module = original_build()
            from ..wasm.types import FuncType, ValType
            for func in module.functions:
                for i, instr in enumerate(func.body):
                    if instr.op == "call_indirect" and instr.args[0] < 0:
                        params, results = marker_types[instr.args[0]]
                        func_type = FuncType(
                            tuple(ValType.from_name(p) for p in params),
                            tuple(ValType.from_name(r) for r in results))
                        type_index = module.add_type(func_type)
                        func.body[i] = Instr("call_indirect", type_index)
            return module

        self.builder.build = build_with_fixup

    # -- the eosponser ---------------------------------------------------------------
    def _emit_transfer_impl(self) -> FunctionBuilder:
        cfg = self.config
        f = self.builder.function(
            "transfer_impl",
            params=["i64", "i64", "i64", "i32", "i32"])
        # locals: 0=self 1=from 2=to 3=quantity_ptr 4=memo_ptr
        if cfg.fake_notif_guard:
            # Listing 2's patch: if (to != _self) return.
            f.local_get(2)
            f.local_get(0)
            f.emit("i64.ne")
            f.emit("if", None)
            f.emit("return")
            f.emit("end")
        # Ignore our own outgoing transfers (from == _self).
        f.local_get(1)
        f.local_get(0)
        f.emit("i64.eq")
        f.emit("if", None)
        f.emit("return")
        f.emit("end")
        if cfg.admin_gate:
            # Only the administrator's payments are served.
            f.local_get(1)
            f.i64_const(N(cfg.admin_gate))
            f.emit("i64.ne")
            f.emit("if", None)
            f.emit("return")
            f.emit("end")
        for guard in cfg.verification_guards:
            self._emit_verification_guard(f, guard)
        if cfg.memo_guard:
            self._emit_memo_guard(f, cfg.memo_guard)
        if cfg.db_dependency:
            self._emit_db_dependency_check(f)
        body = lambda: self._emit_reward_body(f)
        if cfg.maze_depth > 0:
            # The witness input that threads the whole maze; drawing it
            # up front keeps the vulnerable leaf reachable (the paper's
            # ground-truth construction requires the injected template
            # to be triggerable by an elaborate input).
            witness = {"amount": self.rng.randrange(20_000, 1_000_000_000),
                       "memo0": self.rng.randrange(1, 256)}
            self.maze_witness = witness
            self._emit_maze(f, cfg.maze_depth, body, witness)
        else:
            body()
        return f

    def _emit_verification_guard(self, f: FunctionBuilder, guard) -> None:
        """RQ3 complicated verification: mismatch => unreachable."""
        field_name, constant = guard
        self._push_field(f, field_name)
        f.i64_const(constant) if field_name != "memo0" else f.i32_const(
            constant)
        op = "i64.ne" if field_name != "memo0" else "i32.ne"
        f.emit(op)
        f.emit("if", None)
        f.emit("unreachable")
        f.emit("end")

    def _push_field(self, f: FunctionBuilder, field_name: str) -> None:
        """Push one eosponser input field onto the stack."""
        if field_name == "from":
            f.local_get(1)
        elif field_name == "to":
            f.local_get(2)
        elif field_name == "amount":
            f.local_get(3)
            f.emit("i64.load", 3, 0)
        elif field_name == "symbol":
            f.local_get(3)
            f.emit("i64.load", 3, 8)
        elif field_name == "memo0":
            f.local_get(4)
            f.emit("i32.load8_u", 0, 1)  # first content byte
        else:
            raise ValueError(f"unknown field {field_name!r}")

    def _emit_memo_guard(self, f: FunctionBuilder, prefix: bytes) -> None:
        """Return early unless the memo starts with ``prefix`` — the
        CVE-2022-27134 trigger shape (memo == "action:buy")."""
        for i, byte in enumerate(prefix):
            f.local_get(4)
            f.emit("i32.load8_u", 0, 1 + i)  # memo content byte i
            f.i32_const(byte)
            f.emit("i32.ne")
            f.emit("if", None)
            f.emit("return")
            f.emit("end")

    def _emit_db_dependency_check(self, f: FunctionBuilder) -> None:
        """eosio_assert(db_find(config) != -1): transaction dependency."""
        f.emit("call", self.imp("current_receiver"))
        f.emit("call", self.imp("current_receiver"))
        f.i64_const(N("config"))
        f.i64_const(0)
        f.emit("call", self.imp("db_find_i64"))
        f.i32_const(-1)
        f.emit("i32.ne")
        f.i32_const(self.err_msg("contract not initialized"))
        f.emit("call", self.imp("eosio_assert"))

    def _emit_maze(self, f: FunctionBuilder, depth: int, leaf,
                   witness: dict[str, int], on_true_path: bool = True) -> None:
        """A binary tree of input comparisons; the all-true leaf holds
        the interesting code, every other leaf is filler.

        Along the true path every node's predicate is satisfied by
        ``witness``, so that leaf is reachable by construction — while
        the random 64-bit constants keep blind fuzzing out of the deep
        levels (the Figure 3 coverage differential).  Else-subtrees get
        fresh constants: realistic dead weight that a feedback fuzzer
        can still chew through.  Only attacker-controllable fields
        (amount, memo) participate, so the leaf stays reachable through
        a legitimate payment.
        """
        rng = self.rng
        field_name = rng.choice(["amount", "amount", "memo0"])
        w = witness[field_name]
        if field_name == "memo0":
            choices = [("i32.eq", w)]
            if w < 255:
                choices.append(("i32.lt_u", rng.randrange(w + 1, 256)))
            op, constant = rng.choice(choices)
            self._push_field(f, field_name)
            f.i32_const(constant)
            f.emit(op)
        else:
            choices = [("i64.eq", w), ("i64.eq", w),
                       ("i64.lt_u", w + rng.randrange(1, 1 << 20)),
                       ("i64.gt_u", rng.randrange(0, w))]
            op, constant = rng.choice(choices)
            self._push_field(f, field_name)
            f.i64_const(constant)
            f.emit(op)
        f.emit("if", None)
        if depth <= 1:
            if on_true_path:
                leaf()
            else:
                self._emit_filler(f)
        else:
            self._emit_maze(f, depth - 1, leaf, witness, on_true_path)
        f.emit("else")
        if depth <= 1:
            self._emit_filler(f)
        else:
            sibling = {"amount": rng.randrange(20_000, 1_000_000_000),
                       "memo0": rng.randrange(1, 256)}
            self._emit_maze(f, depth - 1, leaf, sibling,
                            on_true_path=False)
        f.emit("end")

    def _emit_filler(self, f: FunctionBuilder) -> None:
        """A harmless leaf: write a stats row."""
        f.i32_const(0)
        f.local_get(1)
        f.emit("i64.store", 3, 64)  # stash 'from' in scratch memory
        f.emit("nop")

    def _emit_reward_body(self, f: FunctionBuilder) -> None:
        """The profitable path: pay the player back (Listing 4)."""
        cfg = self.config
        emit_reward = lambda: self._emit_send_reward(f)
        wrapped = emit_reward
        if cfg.use_blockinfo:
            wrapped = lambda: self._emit_blockinfo_gate(f, emit_reward)
        if cfg.unreachable_reward:
            # Ground-truth-safe twin: the gate can never be satisfied
            # (amount must equal two different constants).
            c1 = self.rng.randrange(1, 1 << 32)
            c2 = c1 + 1 + self.rng.randrange(1 << 16)
            self._push_field(f, "amount")
            f.i64_const(c1)
            f.emit("i64.eq")
            f.emit("if", None)
            self._push_field(f, "amount")
            f.i64_const(c2)
            f.emit("i64.eq")
            f.emit("if", None)
            wrapped()
            f.emit("end")
            f.emit("end")
        else:
            # Minimum stake check (realistic eosponser behaviour).
            self._push_field(f, "amount")
            f.i64_const(10_000)  # 1.0000 EOS
            f.emit("i64.ge_s")
            f.emit("if", None)
            wrapped()
            f.emit("end")

    def _emit_blockinfo_gate(self, f: FunctionBuilder, inner) -> None:
        """Listing 4's tapos PRNG: reward only when the dice land."""
        a = f.add_local("i32")
        b = f.add_local("i32")
        f.emit("call", self.imp("tapos_block_prefix"))
        f.emit("call", self.imp("tapos_block_num"))
        f.emit("i32.mul")
        f.local_set(a)
        f.emit("call", self.imp("tapos_block_prefix"))
        f.emit("call", self.imp("tapos_block_num"))
        f.emit("i32.add")
        f.local_set(b)
        f.local_get(b)
        f.emit("i32.eqz")
        f.emit("if", None)
        f.emit("return")
        f.emit("end")
        f.local_get(a)
        f.local_get(b)
        f.emit("i32.rem_u")
        f.emit("if", None)
        inner()
        f.emit("end")

    def _emit_send_reward(self, f: FunctionBuilder) -> None:
        """Patch the packed template (recipient, amount) and send it."""
        cfg = self.config
        if cfg.reward_scheme == "none":
            self._emit_filler(f)
            return
        offsets = self._template_offsets()
        # recipient = from
        f.i32_const(TEMPLATE_ADDR + offsets["to"])
        f.local_get(1)
        f.emit("i64.store", 3, 0)
        # reward amount = the stake (echo it back).
        f.i32_const(TEMPLATE_ADDR + offsets["amount"])
        f.local_get(3)
        f.emit("i64.load", 3, 0)
        f.emit("i64.store", 3, 0)
        if cfg.reward_scheme == "inline":
            f.i32_const(TEMPLATE_ADDR)
            f.i32_const(len(self._reward_template()))
            f.emit("call", self.imp("send_inline"))
        else:
            # send_deferred(sender_id, payer, ptr, len)
            f.i32_const(0)
            f.i64_const(N(self.config.account))
            f.i32_const(TEMPLATE_ADDR)
            f.i32_const(len(self._reward_template()))
            f.emit("call", self.imp("send_deferred"))

    def _template_offsets(self) -> dict[str, int]:
        """Byte offsets of the patchable fields inside the template."""
        # account(8) name(8) authcount(1) actor(8) perm(8) datalen(1)
        data_start = 8 + 8 + 1 + 16 + 1
        return {"from": data_start, "to": data_start + 8,
                "amount": data_start + 16, "symbol": data_start + 24}

    def _reward_template(self) -> bytes:
        data = (Encoder().name(self.config.account).name(self.config.account)
                .asset(Asset.from_string("0.0001 EOS")).string("r").bytes())
        action = Action("eosio.token", "transfer",
                        [self.config.account], data)
        return action.pack()

    # -- init ------------------------------------------------------------------------
    def _emit_init_impl(self) -> FunctionBuilder:
        f = self.builder.function("init_impl", params=["i64", "i64"])
        # locals: 0=self 1=owner
        if self.config.auth_check:
            f.local_get(1)
            f.emit("call", self.imp("require_auth"))
        # Store the owner into the config table (if absent).
        f.emit("call", self.imp("current_receiver"))
        f.emit("call", self.imp("current_receiver"))
        f.i64_const(N("config"))
        f.i64_const(0)
        f.emit("call", self.imp("db_find_i64"))
        f.i32_const(-1)
        f.emit("i32.eq")
        f.emit("if", None)
        f.i32_const(0)
        f.local_get(1)
        f.emit("i64.store", 3, 128)
        f.emit("call", self.imp("current_receiver"))
        f.i64_const(N("config"))
        f.local_get(0)
        f.i64_const(0)
        f.i32_const(128)
        f.i32_const(8)
        f.emit("call", self.imp("db_store_i64"))
        f.emit("drop")
        f.emit("end")
        return f

    # -- payout (the MissAuth surface, §2.3.3) ---------------------------------------------
    def _emit_payout_impl(self) -> FunctionBuilder:
        f = self.builder.function("payout_impl",
                                  params=["i64", "i64", "i32"])
        # locals: 0=self 1=to 2=quantity_ptr
        if self.config.auth_check:
            f.local_get(1)
            f.emit("call", self.imp("require_auth"))
        offsets = self._template_offsets()
        f.i32_const(TEMPLATE_ADDR + offsets["to"])
        f.local_get(1)
        f.emit("i64.store", 3, 0)
        f.i32_const(TEMPLATE_ADDR + offsets["amount"])
        f.local_get(2)
        f.emit("i64.load", 3, 0)
        f.emit("i64.store", 3, 0)
        f.i32_const(TEMPLATE_ADDR)
        f.i32_const(len(self._reward_template()))
        f.emit("call", self.imp("send_inline"))
        return f


# Negative sentinels for call_indirect type indices, fixed at build().
_TYPE_TRANSFER = -1
_TYPE_INIT = -2
_TYPE_PAYOUT = -3

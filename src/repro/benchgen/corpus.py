"""Benchmark corpus construction (§4.2, §4.3, §4.4).

Builds the labelled sample sets behind Tables 4-6 and the RQ4 wild
corpus, at a configurable ``scale`` (1.0 = the paper's counts).  Each
sample is a generated contract plus its per-type ground-truth label,
following the paper's construction recipe:

* Fake EOS / Fake Notif — guard code removed vs. present;
* MissAuth — permission-API calls removed vs. present;
* BlockinfoDep / Rollback — the Listing 4 template at the end of
  nested random-constant branches; non-vulnerable twins place it
  behind inaccessible branches;
* obfuscated variants (Table 5) and complicated-verification variants
  (Table 6) are bytecode-level transformations of the same samples.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from ..wasm.module import Module
from .contracts import (ContractConfig, GeneratedContract, VULN_TYPES,
                        generate_contract)
from .obfuscate import obfuscate_module
from .verification import VerificationSpec, inject_verification

__all__ = ["BenchmarkSample", "build_table4_corpus", "build_wild_corpus",
           "obfuscated_variant", "verification_variant", "PAPER_COUNTS",
           "WildContract"]

# Per-type sample counts of the paper's Table 4 benchmark (vul + safe).
PAPER_COUNTS = {
    "fake_eos": 254,
    "fake_notif": 1378,
    "missauth": 890,
    "blockinfodep": 400,
    "rollback": 418,
}

# Fraction of contracts using the non-canonical dispatcher idiom
# (drives EOSAFE's path-location failures; see DESIGN.md).
VARIANT_DISPATCHER_RATIO = 0.5


@dataclass
class BenchmarkSample:
    """One labelled benchmark entry for a specific vulnerability type."""

    vuln_type: str
    label: bool                      # ground truth: vulnerable?
    contract: GeneratedContract
    variant: str = "plain"           # "plain" | "obfuscated" | "verified"
    verification: VerificationSpec | None = None

    @property
    def module(self) -> Module:
        return self.contract.module


def _base_config(rng: random.Random, account: str = "victim",
                 maze: tuple[int, int] = (0, 2)) -> ContractConfig:
    """A randomised, fully-patched baseline configuration."""
    return ContractConfig(
        account=account,
        seed=rng.getrandbits(32),
        fake_eos_guard=True,
        fake_notif_guard=True,
        auth_check=True,
        use_blockinfo=False,
        reward_scheme=rng.choice(("inline", "defer")),
        db_dependency=rng.random() < 0.3,
        dispatcher_style=("variant"
                          if rng.random() < VARIANT_DISPATCHER_RATIO
                          else "canonical"),
        maze_depth=rng.randint(*maze),
    )


def _sample_config(vuln_type: str, vulnerable: bool,
                   rng: random.Random) -> ContractConfig:
    """The §4.2 injection recipe for one sample."""
    if vuln_type in ("blockinfodep", "rollback"):
        # "Several nested if-else branches" with the Listing 4 template
        # at the branch ends; inaccessible branches for the safe twins.
        config = _base_config(rng, maze=(2, 3))
        config = replace(config, use_blockinfo=True,
                         reward_scheme="inline",
                         unreachable_reward=not vulnerable)
        return config
    config = _base_config(rng)
    if vuln_type == "fake_eos":
        return replace(config, fake_eos_guard=not vulnerable)
    if vuln_type == "fake_notif":
        return replace(config, fake_notif_guard=not vulnerable)
    if vuln_type == "missauth":
        return replace(config, auth_check=not vulnerable,
                       reward_scheme="defer")
    raise ValueError(f"unknown vulnerability type {vuln_type!r}")


def build_table4_corpus(scale: float = 0.1,
                        seed: int = 20220718) -> list[BenchmarkSample]:
    """The balanced ground-truth benchmark (3,340 samples at scale 1)."""
    rng = random.Random(seed)
    samples: list[BenchmarkSample] = []
    for vuln_type in VULN_TYPES:
        per_label = max(1, round(PAPER_COUNTS[vuln_type] * scale / 2))
        for label in (True, False):
            for _ in range(per_label):
                config = _sample_config(vuln_type, label, rng)
                contract = generate_contract(config)
                samples.append(BenchmarkSample(vuln_type, label, contract))
    return samples


def obfuscated_variant(sample: BenchmarkSample) -> BenchmarkSample:
    """Table 5: the same sample, popcount + decoy-recursion obfuscated."""
    module = obfuscate_module(sample.contract.module,
                              seed=sample.contract.config.seed)
    contract = GeneratedContract(sample.contract.config, module,
                                 sample.contract.abi,
                                 dict(sample.contract.ground_truth),
                                 sample.contract.maze_witness)
    return BenchmarkSample(sample.vuln_type, sample.label, contract,
                           variant="obfuscated")


def verification_variant(sample: BenchmarkSample,
                         spec: VerificationSpec | None = None,
                         ) -> BenchmarkSample:
    """Table 6: the same sample behind complicated input verification.

    When the sample contains a branch maze, the injected quantity guard
    is aligned with the maze witness so the original ground truth is
    preserved (the guards and the maze stay jointly satisfiable).
    """
    if spec is None:
        witness = sample.contract.maze_witness
        if witness is not None:
            spec = VerificationSpec(amount=witness["amount"])
        else:
            spec = VerificationSpec()
    module = inject_verification(sample.contract.module, spec)
    contract = GeneratedContract(sample.contract.config, module,
                                 sample.contract.abi,
                                 dict(sample.contract.ground_truth),
                                 sample.contract.maze_witness)
    return BenchmarkSample(sample.vuln_type, sample.label, contract,
                           variant="verified", verification=spec)


def build_rq1_contracts(count: int = 100,
                        seed: int = 41) -> list[GeneratedContract]:
    """Real-world-like contracts for the RQ1 coverage study (Figure 3).

    Contracts lean on deep branch mazes and database dependencies —
    the conditional-branch-heavy population where feedback matters.
    """
    rng = random.Random(seed)
    out = []
    for index in range(count):
        config = _base_config(rng, account="victim", maze=(5, 7))
        config = replace(
            config,
            seed=rng.getrandbits(32),
            fake_eos_guard=rng.random() < 0.5,
            fake_notif_guard=rng.random() < 0.5,
            use_blockinfo=rng.random() < 0.3,
            db_dependency=rng.random() < 0.4,
        )
        out.append(generate_contract(config))
    return out


# ---------------------------------------------------------------------------
# RQ4: the in-the-wild corpus
# ---------------------------------------------------------------------------

@dataclass
class WildContract:
    """One 'deployed' contract with its maintenance history (§4.4)."""

    contract: GeneratedContract
    still_operating: bool
    patched_later: bool

    @property
    def ground_truth(self) -> dict[str, bool]:
        return self.contract.ground_truth


def build_wild_corpus(scale: float = 0.1,
                      seed: int = 991) -> list[WildContract]:
    """Profitable Mainnet-like contracts (991 at scale 1).

    The vulnerability mix follows the RQ4 findings: ~70% of profitable
    contracts carry at least one issue, MissAuth being the most common
    and BlockinfoDep the rarest; 58% of flagged contracts remain
    operating and only a sliver were patched.
    """
    rng = random.Random(seed)
    count = max(4, round(991 * scale))
    out: list[WildContract] = []
    for index in range(count):
        config = _base_config(rng, maze=(0, 3))
        # Independently drop guards at rates shaped by the RQ4 counts
        # (241 FakeEOS / 264 FakeNotif / 470 MissAuth / 22 Blockinfo /
        #  122 Rollback out of 991).
        config = replace(
            config,
            fake_eos_guard=rng.random() >= 0.24,
            fake_notif_guard=rng.random() >= 0.27,
            auth_check=rng.random() >= 0.47,
            use_blockinfo=rng.random() < 0.05,
            reward_scheme=("inline" if rng.random() < 0.12
                           else rng.choice(("defer", "none"))),
            seed=rng.getrandbits(32),
        )
        contract = generate_contract(config)
        vulnerable = any(contract.ground_truth.values())
        still_operating = rng.random() < (0.58 if vulnerable else 0.8)
        patched_later = still_operating and rng.random() < 0.17
        out.append(WildContract(contract, still_operating, patched_later))
    return out

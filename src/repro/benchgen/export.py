"""Corpus (de)serialisation: release the benchmark as files on disk.

The paper publishes its 3,340-sample benchmark; this module writes a
generated corpus in the same spirit — one ``.wasm`` + ``.abi.json``
pair per sample plus a ``manifest.json`` with the ground-truth labels —
and loads it back for evaluation, so corpora can be pinned, shared and
re-analysed without regenerating.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..eosio.abi import Abi
from ..wasm import encode_module, parse_module
from .contracts import ContractConfig, GeneratedContract
from .corpus import BenchmarkSample

__all__ = ["export_corpus", "load_corpus", "MANIFEST_NAME"]

MANIFEST_NAME = "manifest.json"


def export_corpus(samples: list[BenchmarkSample],
                  directory: "str | Path") -> Path:
    """Write a labelled corpus; returns the manifest path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    entries = []
    for index, sample in enumerate(samples):
        stem = f"sample-{index:05d}"
        (directory / f"{stem}.wasm").write_bytes(
            encode_module(sample.module))
        (directory / f"{stem}.abi.json").write_text(
            sample.contract.abi.to_json())
        entries.append({
            "stem": stem,
            "vuln_type": sample.vuln_type,
            "label": sample.label,
            "variant": sample.variant,
            "account": sample.contract.config.account,
            "ground_truth": sample.contract.ground_truth,
            "maze_witness": sample.contract.maze_witness,
        })
    manifest_path = directory / MANIFEST_NAME
    manifest_path.write_text(json.dumps(
        {"version": 1, "samples": entries}, indent=2))
    return manifest_path


def load_corpus(directory: "str | Path") -> list[BenchmarkSample]:
    """Load a corpus previously written by :func:`export_corpus`."""
    directory = Path(directory)
    manifest = json.loads((directory / MANIFEST_NAME).read_text())
    if manifest.get("version") != 1:
        raise ValueError("unsupported corpus manifest version")
    samples: list[BenchmarkSample] = []
    for entry in manifest["samples"]:
        stem = entry["stem"]
        module = parse_module((directory / f"{stem}.wasm").read_bytes())
        abi = Abi.from_json((directory / f"{stem}.abi.json").read_text())
        config = ContractConfig(account=entry["account"])
        contract = GeneratedContract(
            config, module, abi, dict(entry["ground_truth"]),
            entry.get("maze_witness"))
        samples.append(BenchmarkSample(
            entry["vuln_type"], bool(entry["label"]), contract,
            variant=entry.get("variant", "plain")))
    return samples

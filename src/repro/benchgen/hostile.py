"""Hostile-module corpus for the untrusted-ingestion hardening tests.

Two families, both fully deterministic (seeded ``random.Random``, no
wall-clock anywhere):

* **malformed binaries** — structural mutants of a valid contract
  binary (truncations, bit flips, section splices) plus hand-built
  adversarial payloads (huge vector counts, giant locals runs,
  overlong LEB128, bad UTF-8 names, unknown opcodes, absurd memory
  declarations).  Every one of these must come back from
  :func:`repro.wasm.load_untrusted_module` as a typed
  :class:`~repro.resilience.MalformedModule` — never a raw Python
  exception, never a hang;
* **resource-hostile modules** — syntactically valid binaries whose
  *execution* is abusive (unbounded ``memory.grow`` loops, infinite
  loops).  These must be contained by the metered interpreter with a
  typed :class:`~repro.wasm.interpreter.Trap` subclass.

Used by ``tests/wasm/test_parser_hostile.py`` and the CI
``hostile-input`` smoke bench (``wasai bench hostile``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..wasm.builder import ModuleBuilder
from ..wasm.encoder import encode_module
from .contracts import ContractConfig, generate_contract

__all__ = ["HostileSample", "base_module_bytes", "build_hostile_corpus",
           "build_resource_hostile_modules"]

_WASM_HEADER = b"\0asm\x01\x00\x00\x00"


@dataclass(frozen=True)
class HostileSample:
    """One malformed input: the bytes plus how they were derived."""

    name: str
    data: bytes
    kind: str  # "truncate" | "bitflip" | "splice" | "payload"


def base_module_bytes(seed: int = 0) -> bytes:
    """A genuine contract binary to mutate (dispatcher, imports,
    memory, data segments — every section the parser walks)."""
    generated = generate_contract(ContractConfig(seed=seed))
    return encode_module(generated.module)


def _truncations(base: bytes, count: int) -> list[HostileSample]:
    # Cut points spread over the whole binary, including mid-header
    # and mid-section cuts.
    samples = []
    for i in range(count):
        cut = 1 + (i * (len(base) - 1)) // count
        samples.append(HostileSample(f"truncate[{cut}]", base[:cut],
                                     "truncate"))
    return samples


def _bitflips(base: bytes, count: int,
              rng: random.Random) -> list[HostileSample]:
    samples = []
    for i in range(count):
        position = rng.randrange(len(base))
        bit = rng.randrange(8)
        mutated = bytearray(base)
        mutated[position] ^= 1 << bit
        samples.append(HostileSample(
            f"bitflip[{position}.{bit}]", bytes(mutated), "bitflip"))
    return samples


def _splices(base: bytes, count: int,
             rng: random.Random) -> list[HostileSample]:
    # Move a window of bytes somewhere else: section ids, sizes and
    # payloads end up interleaved in ways a linear parser must survive.
    samples = []
    for i in range(count):
        length = rng.randrange(2, max(3, len(base) // 4))
        src = rng.randrange(8, max(9, len(base) - length))
        dst = rng.randrange(8, len(base))
        window = base[src:src + length]
        mutated = base[:dst] + window + base[dst:]
        samples.append(HostileSample(
            f"splice[{src}->{dst}x{length}]", mutated, "splice"))
    return samples


def _section(section_id: int, payload: bytes) -> bytes:
    from ..wasm.leb128 import encode_unsigned
    return bytes([section_id]) + encode_unsigned(len(payload)) + payload


def _targeted_payloads() -> list[HostileSample]:
    """Hand-built adversarial encodings aimed at specific parser
    weaknesses (each one historically a hang or a raw exception in
    naive decoders)."""
    samples = [
        HostileSample("empty", b"", "payload"),
        HostileSample("bad-magic", b"\0asN\x01\x00\x00\x00", "payload"),
        HostileSample("bad-version", b"\0asm\x02\x00\x00\x00", "payload"),
        HostileSample("header-only", _WASM_HEADER, "payload"),
        # Type section claiming 2^32-1 entries in a 5-byte payload:
        # a count-trusting parser preallocates gigabytes.
        HostileSample(
            "huge-vec-count",
            _WASM_HEADER + _section(1, b"\xff\xff\xff\xff\x0f"),
            "payload"),
        # One code body declaring a 100-million-entry locals run.
        HostileSample(
            "huge-locals",
            _WASM_HEADER
            + _section(1, b"\x01\x60\x00\x00")        # () -> ()
            + _section(3, b"\x01\x00")                # 1 function
            + _section(10, b"\x01\x0a"                # 1 body, 10 bytes
                       + b"\x01"                      # 1 locals run
                       + b"\x80\xc2\xd7\x2f"          # count = 100M
                       + b"\x7f\x0b\x00\x00\x00"),    # i32; end; pad
            "payload"),
        # u32 LEB that keeps its continuation bit set for 6 bytes.
        HostileSample(
            "overlong-leb",
            _WASM_HEADER + _section(1, b"\x80\x80\x80\x80\x80\x01"),
            "payload"),
        # Export section with an invalid UTF-8 name.
        HostileSample(
            "bad-utf8-name",
            _WASM_HEADER + _section(7, b"\x01\x02\xff\xfe\x00\x00"),
            "payload"),
        # Memory demanding 2^20 pages (64 GiB) up front.
        HostileSample(
            "huge-memory",
            _WASM_HEADER + _section(5, b"\x01\x00\x80\x80\x40"),
            "payload"),
        # maximum < minimum.
        HostileSample(
            "inverted-limits",
            _WASM_HEADER + _section(5, b"\x01\x01\x10\x01"),
            "payload"),
        # A code body that is all `block` openers and no `end`.
        HostileSample(
            "deep-nesting",
            _WASM_HEADER
            + _section(1, b"\x01\x60\x00\x00")
            + _section(3, b"\x01\x00")
            + _section(10, b"\x01\x40\x00" + b"\x02\x40" * 31),
            "payload"),
        # An opcode byte outside the instruction table.
        HostileSample(
            "unknown-opcode",
            _WASM_HEADER
            + _section(1, b"\x01\x60\x00\x00")
            + _section(3, b"\x01\x00")
            + _section(10, b"\x01\x04\x00\xd7\x00\x0b"),
            "payload"),
        # Section size pointing past the end of the file.
        HostileSample(
            "oversized-section",
            _WASM_HEADER + b"\x01\x7f\x60",
            "payload"),
        # Valid module followed by trailing garbage.
        HostileSample(
            "trailing-junk",
            base_module_bytes() + b"\x00\x01\x02\x03",
            "payload"),
        # Duplicate / out-of-order section ids.
        HostileSample(
            "repeated-sections",
            _WASM_HEADER + _section(1, b"\x00") + _section(1, b"\x00"),
            "payload"),
        # Function section without a matching code section.
        HostileSample(
            "missing-code",
            _WASM_HEADER
            + _section(1, b"\x01\x60\x00\x00")
            + _section(3, b"\x01\x00"),
            "payload"),
        # Export referencing a function index that does not exist.
        HostileSample(
            "dangling-export",
            _WASM_HEADER + _section(7, b"\x01\x01\x61\x00\x63"),
            "payload"),
    ]
    return samples


def build_hostile_corpus(seed: int = 0,
                         mutants: int = 220) -> list[HostileSample]:
    """A deterministic malformed-module corpus of >= ``mutants``
    samples (structural mutants of a real contract binary plus the
    targeted payloads)."""
    rng = random.Random(seed)
    base = base_module_bytes(seed)
    targeted = _targeted_payloads()
    structural = max(mutants - len(targeted), 0)
    n_truncate = structural // 3
    n_splice = structural // 6
    n_bitflip = structural - n_truncate - n_splice
    samples = list(targeted)
    samples.extend(_truncations(base, n_truncate))
    samples.extend(_bitflips(base, n_bitflip, rng))
    samples.extend(_splices(base, n_splice, rng))
    return samples


def build_resource_hostile_modules() -> list[tuple[str, "object"]]:
    """Valid modules whose execution abuses resources; each is
    ``(name, module)`` with an exported no-argument ``attack``
    function the metered interpreter must trap on."""
    out = []

    grow = ModuleBuilder()
    grow.add_memory(1)
    fn = grow.function("attack")
    # for (;;) memory.grow(16) — keeps demanding pages even after the
    # cap makes grow fail; the memory cap bounds RAM while the fuel /
    # deadline meter bounds time.
    fn.emit("loop", None)
    fn.i32_const(16)
    fn.emit("memory.grow")
    fn.emit("drop")
    fn.emit("br", 0)
    fn.emit("end")
    grow.export_function("attack", fn)
    out.append(("memory-grow-loop", grow.build()))

    spin = ModuleBuilder()
    fn = spin.function("attack")
    fn.emit("loop", None)
    fn.emit("br", 0)
    fn.emit("end")
    spin.export_function("attack", fn)
    out.append(("infinite-loop", spin.build()))

    return out

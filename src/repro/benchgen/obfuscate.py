"""Bytecode obfuscation (RQ3, §4.3).

Two transformations, mirroring the paper's purpose-built obfuscator:

1. **Data-flow**: 64-bit constants are encoded through the popcount
   algorithm — ``i64.const C`` becomes ``i64.const X; i64.popcnt;
   i64.const (C - popcnt(X)); i64.add``.  Literal name constants
   disappear from the binary, defeating static pattern matching, while
   dynamic tools observe identical runtime values.
2. **Control-flow**: a recursive decoy function whose entry condition
   is unsatisfiable is added, and identity calls to it are threaded
   through the original code, inflating the static path count.

Both operate on (a copy of) the module, after parsing — no source
access required, exactly like the paper's tool.
"""

from __future__ import annotations

import random

from ..wasm.module import Function, Module
from ..wasm.opcodes import Instr
from ..wasm.types import FuncType, I64

__all__ = ["obfuscate_module", "popcount_encode_constant"]


def popcount_encode_constant(value: int, rng: random.Random) -> list[Instr]:
    """The popcount data-flow encoding of one i64 constant."""
    x = rng.getrandbits(63)
    pop = bin(x).count("1")
    rest = (value - pop) & 0xFFFFFFFFFFFFFFFF
    return [
        Instr("i64.const", _signed64(x)),
        Instr("i64.popcnt"),
        Instr("i64.const", _signed64(rest)),
        Instr("i64.add"),
    ]


def obfuscate_module(module: Module, seed: int = 0,
                     const_threshold: int = 1 << 32,
                     decoy_density: float = 0.25) -> Module:
    """Return an obfuscated copy of ``module``.

    ``const_threshold`` selects which i64 constants get popcount
    encoding (name constants are large); ``decoy_density`` is the
    probability of wrapping an encoded constant in a decoy-recursion
    call.
    """
    rng = random.Random(seed)
    out = _copy_module(module)
    decoy_index = _append_decoy(out, rng)
    for func in out.functions[:-1]:  # skip the decoy itself
        new_body: list[Instr] = []
        for instr in func.body:
            if (instr.op == "i64.const"
                    and abs(instr.args[0]) >= const_threshold):
                new_body.extend(popcount_encode_constant(
                    instr.args[0] & 0xFFFFFFFFFFFFFFFF, rng))
                if rng.random() < decoy_density:
                    new_body.append(Instr("call", decoy_index))
            else:
                new_body.append(instr)
        func.body = new_body
    return out


def _append_decoy(module: Module, rng: random.Random) -> int:
    """Add ``i64 decoy(i64 x)``: recurses only under an impossible
    condition (x equals two different constants), else returns x."""
    type_index = module.add_type(FuncType((I64,), (I64,)))
    c1 = rng.getrandbits(62) | 1
    c2 = c1 + 1 + rng.getrandbits(16)
    func_index = module.num_imported_functions + len(module.functions)
    body = [
        Instr("local.get", 0),
        Instr("i64.const", _signed64(c1)),
        Instr("i64.eq"),
        Instr("if", None),
        Instr("local.get", 0),
        Instr("i64.const", _signed64(c2)),
        Instr("i64.eq"),
        Instr("if", None),
        # Unreachable in practice: the impossible recursion.
        Instr("local.get", 0),
        Instr("call", func_index),
        Instr("drop"),
        Instr("end"),
        Instr("end"),
        Instr("local.get", 0),
    ]
    module.functions.append(Function(type_index, [], body))
    return func_index


def _copy_module(module: Module) -> Module:
    from ..wasm.module import DataSegment, Element, Export, Global, Import
    out = Module()
    out.types = list(module.types)
    out.imports = [Import(i.module, i.name, i.kind, i.desc)
                   for i in module.imports]
    out.functions = [Function(f.type_index, list(f.locals), list(f.body))
                     for f in module.functions]
    out.tables = list(module.tables)
    out.memories = list(module.memories)
    out.globals = [Global(g.type, list(g.init)) for g in module.globals]
    out.exports = [Export(e.name, e.kind, e.index) for e in module.exports]
    out.start = module.start
    out.elements = [Element(e.table_index, list(e.offset),
                            list(e.func_indices)) for e in module.elements]
    out.data_segments = [DataSegment(d.memory_index, list(d.offset), d.data)
                         for d in module.data_segments]
    return out


def _signed64(value: int) -> int:
    value &= 0xFFFFFFFFFFFFFFFF
    return value - (1 << 64) if value >= 1 << 63 else value

"""Multi-contract benchmark scenarios for the semantic oracle families.

Every sample here is an *exchange-style* victim: a contract that
accepts ``eosio.token`` deposits (forwarded as notifications, possibly
through the ``fake.notif`` relay) and maintains its own on-chain
ledger.  The fuzzing harness already deploys the full triad — the
system token, the forwarding relay and the victim — so each scenario
exercises genuine cross-contract traffic, not a single contract in a
vacuum.

All four contracts share the same *safe deposit prologue*: credit a
balance only when ``code == eosio.token`` (the Listing 1 guard, in the
dispatcher), the notification names us as recipient (``to == _self``,
the Listing 2 guard) and the amount is positive.  Each family's buggy
variant then breaks exactly one semantic invariant the paper's five
API-shape oracles cannot see:

* ``token_arith`` — the deposit credit *subtracts* where it should
  add, driving an asset row's signed amount negative (wrapped
  arithmetic on an unsigned quantity);
* ``permission`` — a ``grantrole`` admin action probes ``has_auth``
  but ignores the result, so the role table is writable by anyone
  (the AChecker pattern: the auth *API* is present, its verdict is
  not enforced — invisible to MissAuth's call-presence rule);
* ``notif_chain`` — the deposit handler drops the ``to == _self``
  check, crediting deposits the ``fake.notif`` relay forwarded with
  the original ``code`` intact;
* ``data_consistency`` — the contract maintains a currency-stats row
  but never folds deposits into its recorded supply, so the ledger
  and the statistics diverge.

The clean twin of every variant keeps all guards and honest
arithmetic, giving each family its own precision/recall row with a
ground-truth zero-FP expectation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..eosio.abi import Abi, TRANSFER_SIGNATURE
from ..eosio.name import N
from ..wasm.builder import FunctionBuilder
from .contracts import (ContractConfig, GeneratedContract, INPUT_ADDR,
                        _ContractEmitter)
from .corpus import BenchmarkSample

__all__ = ["SEMANTIC_FAMILY_TYPES", "SemanticConfig",
           "generate_semantic_contract", "build_semantic_corpus"]

SEMANTIC_FAMILY_TYPES = ("token_arith", "permission", "notif_chain",
                         "data_consistency")

# Scratch memory for row images, clear of the generator's other
# regions (ERR 256+, TEMPLATE 512, INPUT 1024).
_DEPOSIT_ADDR = 3200     # 16-byte asset row (amount i64 + symbol u64)
_STAT_ADDR = 3264        # 40-byte stat row (supply + max + issuer)
_ROLE_ADDR = 3328        # 8-byte role row

_SLOT_GRANT = 3          # indirect-call table slot for grantrole
_TYPE_GRANT = -2         # (i64, i64) -> (): same shape as init


@dataclass(frozen=True)
class SemanticConfig:
    """One semantic-corpus sample: which family, buggy or clean."""

    family: str
    vulnerable: bool
    seed: int = 0
    account: str = "victim"

    def __post_init__(self):
        if self.family not in SEMANTIC_FAMILY_TYPES:
            raise ValueError(
                f"unknown semantic family {self.family!r}")


def generate_semantic_contract(config: SemanticConfig) -> GeneratedContract:
    """Emit the exchange-style contract for one semantic sample."""
    base = ContractConfig(
        account=config.account,
        seed=config.seed,
        fake_eos_guard=True,
        # The notif_chain bug IS the missing to == _self check.
        fake_notif_guard=not (config.family == "notif_chain"
                              and config.vulnerable),
        auth_check=True,
        use_blockinfo=False,
        reward_scheme="none",
        has_payout=False,
        dispatcher_style="canonical",
        maze_depth=0,
    )
    rng = random.Random(config.seed)
    emitter = _SemanticEmitter(base, rng, config)
    module = emitter.build()
    signatures = {
        "transfer": TRANSFER_SIGNATURE,
        "init": (("owner", "name"),),
    }
    if config.family == "permission":
        signatures["grantrole"] = (("account", "name"),)
    abi = Abi.from_signatures(signatures)
    ground_truth = base.ground_truth()
    ground_truth[config.family] = config.vulnerable
    return GeneratedContract(base, module, abi, ground_truth, None)


def build_semantic_corpus(pairs: int = 1,
                          seed: int = 20260807) -> list[BenchmarkSample]:
    """The labelled semantic benchmark: per family, ``pairs`` buggy
    samples and ``pairs`` clean twins, each its own MetricsTable row
    (``vuln_type`` is the family name)."""
    rng = random.Random(seed)
    samples: list[BenchmarkSample] = []
    for family in SEMANTIC_FAMILY_TYPES:
        for label in (True, False):
            for _ in range(max(1, pairs)):
                config = SemanticConfig(family=family, vulnerable=label,
                                        seed=rng.getrandbits(32))
                contract = generate_semantic_contract(config)
                samples.append(BenchmarkSample(family, label, contract))
    return samples


class _SemanticEmitter(_ContractEmitter):
    """The shared exchange-contract emitter, parameterised by family."""

    def __init__(self, base: ContractConfig, rng: random.Random,
                 semantic: SemanticConfig):
        super().__init__(base, rng)
        self.semantic = semantic

    def build(self):
        # Pre-declare the extra imports before any function is
        # emitted, keeping the import index space stable (same reason
        # the base emitter pre-declares its own list).
        if self.semantic.family == "permission":
            self.imp("has_auth")
        return super().build()

    # -- the deposit body (replaces the reward path) -----------------------
    def _emit_reward_body(self, f: FunctionBuilder) -> None:
        family = self.semantic.family
        vulnerable = self.semantic.vulnerable
        if family == "permission":
            # The permission scenario keeps its deposits inert; the
            # writer path under test is the grantrole action.
            self._emit_filler(f)
            return
        negate = family == "token_arith" and vulnerable
        self._emit_deposit_credit(f, negate=negate)
        if family == "data_consistency":
            self._emit_stat_update(f, credit=not vulnerable)

    def _emit_deposit_credit(self, f: FunctionBuilder,
                             negate: bool) -> None:
        """Credit ``accounts[from]`` with the paid amount (or, in the
        token_arith bug, *debit* it — wrapped arithmetic that leaves a
        negative signed amount in the asset row)."""
        amt = f.add_local("i64")
        it = f.add_local("i32")
        # amount = quantity.amount; only positive payments credit.
        f.local_get(3)
        f.emit("i64.load", 3, 0)
        f.local_set(amt)
        f.local_get(amt)
        f.i64_const(0)
        f.emit("i64.le_s")
        f.emit("if", None)
        f.emit("return")
        f.emit("end")
        # Row symbol = quantity.symbol.
        f.i32_const(_DEPOSIT_ADDR)
        f.local_get(3)
        f.emit("i64.load", 3, 8)
        f.emit("i64.store", 3, 8)
        # it = db_find(self, self, accounts, from)
        f.emit("call", self.imp("current_receiver"))
        f.emit("call", self.imp("current_receiver"))
        f.i64_const(N("accounts"))
        f.local_get(1)
        f.emit("call", self.imp("db_find_i64"))
        f.local_set(it)
        f.local_get(it)
        f.i32_const(-1)
        f.emit("i32.eq")
        f.emit("if", None)
        # Fresh row: amount (or 0 - amount).
        f.i32_const(_DEPOSIT_ADDR)
        if negate:
            f.i64_const(0)
            f.local_get(amt)
            f.emit("i64.sub")
        else:
            f.local_get(amt)
        f.emit("i64.store", 3, 0)
        f.emit("call", self.imp("current_receiver"))
        f.i64_const(N("accounts"))
        f.local_get(0)
        f.local_get(1)
        f.i32_const(_DEPOSIT_ADDR)
        f.i32_const(16)
        f.emit("call", self.imp("db_store_i64"))
        f.emit("drop")
        f.emit("else")
        # Existing row: old +/- amount.
        f.local_get(it)
        f.i32_const(_DEPOSIT_ADDR)
        f.i32_const(16)
        f.emit("call", self.imp("db_get_i64"))
        f.emit("drop")
        f.i32_const(_DEPOSIT_ADDR)
        f.i32_const(_DEPOSIT_ADDR)
        f.emit("i64.load", 3, 0)
        f.local_get(amt)
        f.emit("i64.sub" if negate else "i64.add")
        f.emit("i64.store", 3, 0)
        f.local_get(it)
        f.local_get(0)
        f.i32_const(_DEPOSIT_ADDR)
        f.i32_const(16)
        f.emit("call", self.imp("db_update_i64"))
        f.emit("end")

    def _emit_stat_update(self, f: FunctionBuilder, credit: bool) -> None:
        """Maintain the currency-stats row.  The clean twin folds each
        deposit into the recorded supply; the buggy one lazily creates
        the row with supply 0 and never updates it."""
        amt = f.add_local("i64")
        sym = f.add_local("i64")
        it = f.add_local("i32")
        f.local_get(3)
        f.emit("i64.load", 3, 0)
        f.local_set(amt)
        f.local_get(3)
        f.emit("i64.load", 3, 8)
        f.local_set(sym)
        # it = db_find(self, self, stat, symbol)
        f.emit("call", self.imp("current_receiver"))
        f.emit("call", self.imp("current_receiver"))
        f.i64_const(N("stat"))
        f.local_get(sym)
        f.emit("call", self.imp("db_find_i64"))
        f.local_set(it)
        f.local_get(it)
        f.i32_const(-1)
        f.emit("i32.eq")
        f.emit("if", None)
        # supply = amount (clean) or 0 (buggy, never corrected).
        f.i32_const(_STAT_ADDR)
        if credit:
            f.local_get(amt)
        else:
            f.i64_const(0)
        f.emit("i64.store", 3, 0)
        f.i32_const(_STAT_ADDR)
        f.local_get(sym)
        f.emit("i64.store", 3, 8)
        f.i32_const(_STAT_ADDR)
        f.i64_const(1 << 60)             # max supply
        f.emit("i64.store", 3, 16)
        f.i32_const(_STAT_ADDR)
        f.local_get(sym)
        f.emit("i64.store", 3, 24)
        f.i32_const(_STAT_ADDR)
        f.local_get(0)                   # issuer = self
        f.emit("i64.store", 3, 32)
        f.emit("call", self.imp("current_receiver"))
        f.i64_const(N("stat"))
        f.local_get(0)
        f.local_get(sym)
        f.i32_const(_STAT_ADDR)
        f.i32_const(40)
        f.emit("call", self.imp("db_store_i64"))
        f.emit("drop")
        f.emit("else")
        if credit:
            f.local_get(it)
            f.i32_const(_STAT_ADDR)
            f.i32_const(40)
            f.emit("call", self.imp("db_get_i64"))
            f.emit("drop")
            f.i32_const(_STAT_ADDR)
            f.i32_const(_STAT_ADDR)
            f.emit("i64.load", 3, 0)
            f.local_get(amt)
            f.emit("i64.add")
            f.emit("i64.store", 3, 0)
            f.local_get(it)
            f.local_get(0)
            f.i32_const(_STAT_ADDR)
            f.i32_const(40)
            f.emit("call", self.imp("db_update_i64"))
        else:
            f.emit("nop")
        f.emit("end")

    # -- the grantrole action (the permission writer path) -----------------
    def _emit_extra_actions(self) -> list:
        if self.semantic.family != "permission":
            return []
        func = self._emit_grantrole_impl()

        def dispatch(f: FunctionBuilder) -> None:
            f.local_get(0)
            f.i32_const(INPUT_ADDR)
            f.emit("i64.load", 3, 0)     # account
            f.i32_const(_SLOT_GRANT)
            f.emit("call_indirect", _TYPE_GRANT)

        return [("grantrole", _SLOT_GRANT, func, dispatch)]

    def _emit_grantrole_impl(self) -> FunctionBuilder:
        f = self.builder.function("grantrole_impl",
                                  params=["i64", "i64"])
        # locals: 0=self 1=account
        granted = f.add_local("i32")
        f.i64_const(N("admin"))
        f.emit("call", self.imp("has_auth"))
        f.local_set(granted)
        if self.semantic.vulnerable:
            # The bug: the probe ran, its verdict is never enforced.
            self._emit_role_write(f)
        else:
            f.local_get(granted)
            f.emit("if", None)
            self._emit_role_write(f)
            f.emit("end")
        return f

    def _emit_role_write(self, f: FunctionBuilder) -> None:
        it = f.add_local("i32")
        f.i32_const(_ROLE_ADDR)
        f.local_get(1)
        f.emit("i64.store", 3, 0)
        f.emit("call", self.imp("current_receiver"))
        f.emit("call", self.imp("current_receiver"))
        f.i64_const(N("roles"))
        f.local_get(1)
        f.emit("call", self.imp("db_find_i64"))
        f.local_set(it)
        f.local_get(it)
        f.i32_const(-1)
        f.emit("i32.eq")
        f.emit("if", None)
        f.emit("call", self.imp("current_receiver"))
        f.i64_const(N("roles"))
        f.local_get(0)
        f.local_get(1)
        f.i32_const(_ROLE_ADDR)
        f.i32_const(8)
        f.emit("call", self.imp("db_store_i64"))
        f.emit("drop")
        f.emit("else")
        f.local_get(it)
        f.local_get(0)
        f.i32_const(_ROLE_ADDR)
        f.i32_const(8)
        f.emit("call", self.imp("db_update_i64"))
        f.emit("end")

"""Complicated-verification injection (RQ3, §4.3).

Injects the paper's exact guard shape into the entry of the action
function, at the bytecode level::

    if (i64.ne (i64.load local.get 3) (i64.const 100000)) unreachable
    if (i64.ne (i64.load offset=8 local.get 3) (i64.const <EOS raw>)) unreachable

Only an elaborate input (quantity exactly "10.0000 EOS") survives the
guards, so random fuzzing dies at the entry while adaptive seeds solve
the equalities.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..eosio.asset import Asset, EOS_SYMBOL
from ..wasm.module import Module
from ..wasm.opcodes import Instr
from .obfuscate import _copy_module, _signed64

__all__ = ["inject_verification", "VerificationSpec"]


@dataclass(frozen=True)
class VerificationSpec:
    """What the injected guards require of the input."""

    amount: int = 100_000          # 10.0000 EOS, the paper's example
    symbol_raw: int = EOS_SYMBOL.raw   # 1397703940

    @property
    def required_quantity(self) -> Asset:
        return Asset(self.amount, EOS_SYMBOL)


def inject_verification(module: Module,
                        spec: VerificationSpec | None = None,
                        table_slot: int = 0) -> Module:
    """Return a copy with the verification guards prepended to the
    action function behind ``table_slot`` (the eosponser)."""
    spec = spec or VerificationSpec()
    out = _copy_module(module)
    local_index = _resolve_slot(out, table_slot)
    func = out.functions[local_index]
    guards = [
        # if (quantity.amount != spec.amount) unreachable
        Instr("local.get", 3),
        Instr("i64.load", 3, 0),
        Instr("i64.const", _signed64(spec.amount)),
        Instr("i64.ne"),
        Instr("if", None),
        Instr("unreachable"),
        Instr("end"),
        # if (quantity.symbol != spec.symbol) unreachable
        Instr("local.get", 3),
        Instr("i64.load", 3, 8),
        Instr("i64.const", _signed64(spec.symbol_raw)),
        Instr("i64.ne"),
        Instr("if", None),
        Instr("unreachable"),
        Instr("end"),
    ]
    func.body = guards + list(func.body)
    return out


def _resolve_slot(module: Module, table_slot: int) -> int:
    for elem in module.elements:
        base = elem.offset[0].args[0]
        if base <= table_slot < base + len(elem.func_indices):
            func_index = elem.func_indices[table_slot - base]
            return func_index - module.num_imported_functions
    raise ValueError(f"table slot {table_slot} not populated")

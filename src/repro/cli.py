"""Command-line interface: ``wasai scan | gen | bench | serve | ...``.

Examples::

    # Generate a vulnerable contract and write contract.wasm + ABI
    wasai gen --no-fake-eos-guard --out victim

    # Scan a contract binary (concolic fuzz + the five detectors)
    wasai scan victim.wasm --abi victim.abi.json

    # Run the Table 4 evaluation at a small scale
    wasai bench table4 --scale 0.02

    # Run the scan daemon, then submit work to it
    wasai serve --port 8734 --store scans.db
    wasai submit victim.wasm --abi victim.abi.json --wait
    wasai status <job-id> --url http://127.0.0.1:8734
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .benchgen import (ContractConfig, build_table4_corpus,
                       generate_contract, obfuscated_variant,
                       verification_variant)
from .eosio.abi import Abi
from .harness import (DEFAULT_TIMEOUT_MS, evaluate_corpus, run_eosafe,
                      run_eosfuzzer, run_wasai)
from .scanner import format_report
from .wasm import encode_module

__all__ = ["main"]


def _oracles_spec(text: str) -> tuple:
    """argparse type for ``--oracles``: resolve family names/aliases,
    turning a typo into a usage error (exit 2), not a stack trace."""
    from .semoracle import UnknownOracleFamily, resolve_oracles
    try:
        return resolve_oracles(text)
    except UnknownOracleFamily as exc:
        raise argparse.ArgumentTypeError(str(exc))


_ORACLES_HELP = ("comma-separated oracle families to enable "
                 "(names or the aliases paper5/semantic/all; "
                 "default: the paper's five)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="wasai",
        description="WASAI: concolic fuzzing of Wasm smart contracts")
    sub = parser.add_subparsers(dest="command", required=True)

    scan = sub.add_parser("scan", help="fuzz + scan one contract binary")
    scan.add_argument("wasm", type=Path, help="contract .wasm file")
    scan.add_argument("--abi", type=Path, required=True,
                      help="ABI JSON file")
    scan.add_argument("--timeout-ms", type=float,
                      default=DEFAULT_TIMEOUT_MS,
                      help="virtual fuzzing budget (default 30000)")
    scan.add_argument("--tool", choices=("wasai", "eosfuzzer", "eosafe"),
                      default="wasai")
    scan.add_argument("--seed", type=int, default=1)
    scan.add_argument("--json", action="store_true",
                      help="emit the report as JSON")
    scan.add_argument("--exploits", action="store_true",
                      help="print replayable exploit payloads for "
                           "every confirmed finding")
    scan.add_argument("--address-pool", action="store_true",
                      help="mine bytecode constants for caller "
                           "identities (resolves admin-gated FNs)")
    scan.add_argument("--max-module-bytes", type=int, default=None,
                      help="ingestion budget: reject binaries larger "
                           "than this (default 8 MiB)")
    scan.add_argument("--max-memory-pages", type=int, default=None,
                      help="cap on Wasm linear memory growth during "
                           "fuzzing, in 64 KiB pages (default 1024)")
    scan.add_argument("--no-translate", dest="translate",
                      action="store_false", default=True,
                      help="run the generic reference interpreter instead "
                           "of the direct-threaded translation layer")
    scan.add_argument("--cache-dir", type=Path, default=None,
                      help="shared on-disk cache directory (instrumentation "
                           "+ solver results, safe for concurrent workers)")
    scan.add_argument("--no-divergence-check", dest="divergence_check",
                      action="store_false",
                      help="disable the concolic divergence sentinel "
                           "(trace/replay cross-checking)")
    scan.add_argument("--oracles", type=_oracles_spec, default=None,
                      help=_ORACLES_HELP)

    gen = sub.add_parser("gen", help="generate a benchmark contract")
    gen.add_argument("--out", type=Path, default=Path("victim"),
                     help="output prefix (<out>.wasm, <out>.abi.json)")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--maze-depth", type=int, default=2)
    gen.add_argument("--reward", choices=("inline", "defer", "none"),
                     default="defer")
    for flag, attr in (("fake-eos-guard", "fake_eos_guard"),
                       ("fake-notif-guard", "fake_notif_guard"),
                       ("auth-check", "auth_check")):
        gen.add_argument(f"--no-{flag}", dest=attr, action="store_false")
    gen.add_argument("--blockinfo", dest="use_blockinfo",
                     action="store_true")
    gen.add_argument("--obfuscate", action="store_true")
    gen.add_argument("--verification", action="store_true")

    bench = sub.add_parser("bench", help="run a paper experiment")
    bench.add_argument("experiment",
                       choices=("table4", "table5", "table6", "hostile",
                                "semantic"))
    bench.add_argument("--scale", type=float, default=0.02)
    bench.add_argument("--timeout-ms", type=float, default=20_000.0)
    bench.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the campaigns "
                            "(0 = one per CPU, default 1 = serial)")
    bench.add_argument("--task-timeout-s", type=float, default=None,
                       help="real wall-clock cap per sample when "
                            "running parallel (--jobs > 1)")
    bench.add_argument("--journal", type=Path, default=None,
                       help="append-only checkpoint journal; completed "
                            "samples are recorded as they finish")
    bench.add_argument("--resume", action="store_true",
                       help="reuse results already in --journal instead "
                            "of recomputing them")
    bench.add_argument("--max-retries", type=int, default=1,
                       help="retries per failed sample before it counts "
                            "against quarantine (default 1)")
    bench.add_argument("--quarantine-after", type=int, default=3,
                       help="bench a sample after this many failed "
                            "attempts; it is reported as skipped "
                            "(default 3)")
    bench.add_argument("--backoff-s", type=float, default=0.0,
                       help="base delay between retry rounds, doubled "
                            "each round (default 0: no delay)")
    bench.add_argument("--no-translate", dest="translate",
                       action="store_false", default=True,
                       help="run the generic reference interpreter instead "
                            "of the direct-threaded translation layer")
    bench.add_argument("--cache-dir", type=Path, default=None,
                       help="shared on-disk cache directory; parallel "
                            "workers reuse each other's instrumentation "
                            "and solver results through it")
    bench.add_argument("--no-degrade", dest="degrade",
                       action="store_false",
                       help="disable the black-box fallback when the "
                            "symbolic/solver stage fails")
    bench.add_argument("--no-divergence-check", dest="divergence_check",
                       action="store_false",
                       help="disable the concolic divergence sentinel")
    bench.add_argument("--mutants", type=int, default=220,
                       help="hostile experiment: number of malformed "
                            "modules to generate (default 220)")
    bench.add_argument("--fail-on-quarantine", action="store_true",
                       help="exit non-zero when any sample was "
                            "quarantined (CI containment gate)")
    bench.add_argument("--oracles", type=_oracles_spec, default=None,
                       help=_ORACLES_HELP)
    bench.add_argument("--fail-on-family-fp", action="store_true",
                       help="exit 6 when any semantic oracle family "
                            "records a false positive (CI precision "
                            "gate)")

    corpus = sub.add_parser("gen-corpus",
                            help="write a labelled benchmark corpus "
                                 "(.wasm + ABI + manifest) to disk")
    corpus.add_argument("directory", type=Path)
    corpus.add_argument("--scale", type=float, default=0.02)
    corpus.add_argument("--variant",
                        choices=("plain", "obfuscated", "verified"),
                        default="plain")

    serve = sub.add_parser("serve",
                           help="run the scan service HTTP daemon")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8734)
    serve.add_argument("--store", type=Path, default=Path("wasai.db"),
                       help="SQLite artifact store (modules, verdicts, "
                            "coverage, quarantine; default wasai.db)")
    serve.add_argument("--workers", type=int, default=2,
                       help="scan worker threads (default 2)")
    serve.add_argument("--queue-depth", type=int, default=64,
                       help="bounded queue depth; submissions beyond "
                            "it are shed with HTTP 429 (default 64)")
    serve.add_argument("--max-inflight", type=int, default=None,
                       help="queued+running budget (default: "
                            "queue-depth + workers)")
    serve.add_argument("--timeout-ms", type=float,
                       default=DEFAULT_TIMEOUT_MS,
                       help="default virtual fuzzing budget per job")
    serve.add_argument("--journal", type=Path, default=None,
                       help="JSONL checkpoint journal for graceful "
                            "drain (SIGTERM) and --resume")
    serve.add_argument("--resume", action="store_true",
                       help="replay jobs checkpointed in --journal "
                            "by a drained daemon (exactly once)")
    serve.add_argument("--max-retries", type=int, default=1)
    serve.add_argument("--quarantine-after", type=int, default=3)
    serve.add_argument("--job-ttl-s", type=float, default=None,
                       help="default queue TTL per job; jobs still "
                            "queued after it expire (terminal state "
                            "'expired')")
    serve.add_argument("--promote-after-s", type=float, default=None,
                       help="anti-starvation: serve any job queued "
                            "longer than this ahead of every "
                            "priority band")
    serve.add_argument("--task-deadline-s", type=float, default=300.0,
                       help="claim age before the watchdog declares "
                            "a worker hung and requeues its job "
                            "(default 300)")
    serve.add_argument("--breaker-threshold", type=int, default=3,
                       help="consecutive per-stage failures before "
                            "the circuit breaker trips (default 3)")
    serve.add_argument("--breaker-cooldown-s", type=float,
                       default=30.0,
                       help="open->half-open cooldown; doubles per "
                            "re-trip (default 30)")
    serve.add_argument("--store-max-bytes", type=int, default=None,
                       help="artifact-store disk budget; writes "
                            "beyond it shed with HTTP 429 "
                            "kind=disk")
    serve.add_argument("--tenants", type=Path, default=None,
                       help="JSON file of per-tenant API keys and "
                            "quotas; submissions are admission-gated "
                            "(401 unknown key, typed 429 kind=quota)")
    serve.add_argument("--capture-traces", action="store_true",
                       help="persist a durable trace-IR pack per "
                            "completed scan so oracles can later be "
                            "replayed without re-fuzzing")
    serve.add_argument("--drift-audit-s", type=float, default=None,
                       help="background drift auditor cadence: every "
                            "N seconds replay a sample of stored "
                            "traces and flag verdict drift (default "
                            "off)")
    serve.add_argument("--drift-audit-sample", type=int, default=4,
                       help="traces replayed per audit round "
                            "(default 4)")
    serve.add_argument("--oracles", type=_oracles_spec, default=None,
                       help=_ORACLES_HELP + "; applies to every "
                            "submitted job and re-verdict sweep")
    serve.add_argument("--target-p95-s", type=float, default=None,
                       help="latency SLO driving adaptive admission "
                            "control: while observed p95 job latency "
                            "breaches this, the effective inflight "
                            "budget shrinks (AIMD) and the brownout "
                            "ladder engages (default 30)")
    serve.add_argument("--housekeeping-s", type=float, default=0.25,
                       help="cadence of the housekeeping tick that "
                            "sweeps expired jobs off an idle queue "
                            "and refreshes the pressure level "
                            "(default 0.25)")
    serve.add_argument("--verbose", action="store_true",
                       help="log every HTTP request")

    submit = sub.add_parser("submit",
                            help="submit a contract to a running "
                                 "scan daemon")
    submit.add_argument("wasm", type=Path, help="contract .wasm file")
    submit.add_argument("--abi", type=Path, required=True)
    submit.add_argument("--url", default="http://127.0.0.1:8734",
                        help="daemon base URL; a comma-separated list "
                             "enables multi-endpoint failover")
    submit.add_argument("--api-key", default=None,
                        help="tenant API key (sent as X-Api-Key)")
    submit.add_argument("--timeout-ms", type=float, default=None,
                        help="virtual fuzzing budget (default: the "
                             "daemon's)")
    submit.add_argument("--tool",
                        choices=("wasai", "eosfuzzer", "eosafe"),
                        default=None)
    submit.add_argument("--seed", type=int, default=None)
    submit.add_argument("--client", default="cli",
                        help="client id for fair scheduling")
    submit.add_argument("--priority", type=int, default=0,
                        help="higher runs sooner (default 0)")
    submit.add_argument("--deadline-s", type=float, default=None,
                        help="answer-by budget in seconds: propagated "
                             "end-to-end as an absolute wall-clock "
                             "deadline (X-Deadline-Ms); past it the "
                             "daemon cuts the campaign short with the "
                             "terminal state deadline_exceeded")
    submit.add_argument("--wait", action="store_true",
                        help="poll until the job is terminal and "
                             "print the verdict")
    submit.add_argument("--wait-timeout-s", type=float, default=300.0)

    status = sub.add_parser("status",
                            help="query a job (or --stats) on a "
                                 "running scan daemon")
    status.add_argument("job_id", nargs="?", default=None)
    status.add_argument("--url", default="http://127.0.0.1:8734")
    status.add_argument("--stats", action="store_true",
                        help="print the daemon's /stats instead")

    reverdict = sub.add_parser(
        "reverdict",
        help="replay the scanner oracles over stored trace-IR packs "
             "(zero re-fuzzing) and rewrite the verdicts")
    reverdict.add_argument("--oracle-version", type=int, default=None,
                           help="oracle version to stamp into the "
                                "rewritten verdicts' provenance "
                                "(default: the registered version)")
    reverdict.add_argument("--store", type=Path, default=None,
                           help="run offline against this SQLite "
                                "artifact store instead of a daemon")
    reverdict.add_argument("--url", default="http://127.0.0.1:8734",
                           help="daemon base URL (ignored with "
                                "--store)")
    reverdict.add_argument("--wait-timeout-s", type=float,
                           default=300.0)
    reverdict.add_argument("--oracles", type=_oracles_spec, default=None,
                           help=_ORACLES_HELP)
    reverdict.add_argument("--json", action="store_true",
                           help="emit the sweep report as JSON")

    chaos = sub.add_parser("chaos",
                           help="chaos-drill a live in-process daemon "
                                "under a deterministic fault schedule")
    chaos.add_argument("--schedule",
                       choices=("ci", "quick", "fleet", "overload"),
                       default="ci",
                       help="fault schedule: 'ci' runs every phase, "
                            "'quick' a fast subset, 'fleet' the "
                            "3-node coordinator drill, 'overload' "
                            "the deadline/brownout burst drill "
                            "(default ci)")
    chaos.add_argument("--json", action="store_true",
                       help="emit the machine-readable report")
    chaos.add_argument("--keep-dir", type=Path, default=None,
                       help="run in (and keep) this directory for "
                            "post-mortem instead of a temp dir")
    chaos.add_argument("--verbose", action="store_true",
                       help="print each phase as it completes")

    args = parser.parse_args(argv)
    # Process-wide performance knobs.  Both are plain module globals,
    # so forked parallel workers inherit them.
    if getattr(args, "translate", True) is False:
        from .wasm.interpreter import configure_translation
        configure_translation(False)
    if getattr(args, "cache_dir", None) is not None:
        from .sharedcache import configure_shared_cache
        configure_shared_cache(args.cache_dir)
    if args.command == "scan":
        return _cmd_scan(args)
    if args.command == "gen":
        return _cmd_gen(args)
    if args.command == "gen-corpus":
        return _cmd_gen_corpus(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "status":
        return _cmd_status(args)
    if args.command == "reverdict":
        return _cmd_reverdict(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    return _cmd_bench(args)


def _cmd_scan(args) -> int:
    import dataclasses

    from .resilience import MalformedModule
    from .wasm import DEFAULT_BUDGET, load_untrusted_module
    from .wasm.interpreter import ExecutionLimits

    budget = DEFAULT_BUDGET
    if args.max_module_bytes is not None:
        budget = dataclasses.replace(budget,
                                     max_module_bytes=args.max_module_bytes)
    try:
        module = load_untrusted_module(args.wasm.read_bytes(),
                                       budget=budget)
    except MalformedModule as exc:
        print(f"error: rejected untrusted module: {exc}", file=sys.stderr)
        return 2
    abi = Abi.from_json(args.abi.read_text())
    run = None
    if args.tool == "eosafe":
        result = run_eosafe(module)
    else:
        runner = run_wasai if args.tool == "wasai" else run_eosfuzzer
        kwargs = {}
        if args.tool == "wasai":
            kwargs["divergence_check"] = args.divergence_check
            kwargs["oracles"] = args.oracles
            if args.address_pool:
                kwargs["address_pool"] = True
            if args.max_memory_pages is not None:
                kwargs["limits"] = ExecutionLimits(
                    max_memory_pages=args.max_memory_pages)
        run = runner(module, abi, timeout_ms=args.timeout_ms,
                     rng_seed=args.seed, **kwargs)
        result = run.scan
        if not args.json:
            print(f"# iterations: {run.report.iterations}, "
                  f"distinct branches covered: {len(run.report.covered)}")
    if args.json:
        from .scanner import report_to_json
        print(report_to_json(result))
    else:
        print(format_report(result))
    if args.exploits and run is not None:
        from .scanner import synthesize_exploits, verify_exploit
        exploits = synthesize_exploits(run.report, result)
        if exploits:
            print("\nSynthesised exploit payloads:")
        for exploit in exploits:
            verified = verify_exploit(exploit, module, abi)
            status = "verified on a fresh chain" if verified \
                else "NOT reproducible"
            print(f"  # {status}")
            print("  " + exploit.summary().replace("\n", "\n  "))
    return 1 if result.is_vulnerable() else 0


def _cmd_gen(args) -> int:
    config = ContractConfig(
        seed=args.seed,
        fake_eos_guard=args.fake_eos_guard,
        fake_notif_guard=args.fake_notif_guard,
        auth_check=args.auth_check,
        use_blockinfo=args.use_blockinfo,
        reward_scheme=args.reward,
        maze_depth=args.maze_depth,
    )
    generated = generate_contract(config)
    module = generated.module
    if args.obfuscate:
        from .benchgen import obfuscate_module
        module = obfuscate_module(module, seed=args.seed)
    if args.verification:
        from .benchgen import inject_verification
        module = inject_verification(module)
    wasm_path = args.out.with_suffix(".wasm")
    abi_path = args.out.with_suffix(".abi.json")
    wasm_path.write_bytes(encode_module(module))
    abi_path.write_text(generated.abi.to_json())
    truth = {k: v for k, v in generated.ground_truth.items() if v}
    print(f"wrote {wasm_path} ({wasm_path.stat().st_size} bytes) "
          f"and {abi_path}")
    print("ground truth:",
          json.dumps(truth) if truth else "not vulnerable")
    return 0


def _cmd_gen_corpus(args) -> int:
    from .benchgen import export_corpus
    samples = build_table4_corpus(scale=args.scale)
    if args.variant == "obfuscated":
        samples = [obfuscated_variant(s) for s in samples]
    elif args.variant == "verified":
        samples = [verification_variant(s) for s in samples]
    manifest = export_corpus(samples, args.directory)
    print(f"wrote {len(samples)} samples to {args.directory} "
          f"(manifest: {manifest})")
    return 0


def _cmd_bench_hostile(args) -> int:
    """Containment smoke test: the malformed corpus must be rejected
    with typed diagnostics and the resource-hostile modules trapped by
    the metered interpreter — anything else is a hardening failure."""
    from .benchgen.hostile import (build_hostile_corpus,
                                   build_resource_hostile_modules)
    from .resilience import MalformedModule
    from .wasm import load_untrusted_module
    from .wasm.interpreter import ExecutionLimits, Instance, Trap
    corpus = build_hostile_corpus(mutants=args.mutants)
    parsed = rejected = 0
    escaped: list[tuple[str, str]] = []
    for sample in corpus:
        try:
            load_untrusted_module(sample.data, sample_id=sample.name)
            parsed += 1
        except MalformedModule:
            rejected += 1
        except Exception as exc:  # raw leak: exactly what we test for
            escaped.append((sample.name,
                            f"{type(exc).__name__}: {exc}"))
    trapped = 0
    limits = ExecutionLimits(fuel=200_000, deadline_s=5.0,
                             max_memory_pages=64)
    for name, module in build_resource_hostile_modules():
        try:
            Instance(module, {}, limits=limits).invoke("attack", [])
            escaped.append((name, "completed without trapping"))
        except Trap:
            trapped += 1
        except Exception as exc:
            escaped.append((name, f"{type(exc).__name__}: {exc}"))
    print(f"# hostile: {len(corpus)} malformed inputs, "
          f"{trapped + len(escaped)} resource-hostile modules")
    print(f"  parsed clean   {parsed}")
    print(f"  rejected typed {rejected}")
    print(f"  trapped        {trapped}")
    print(f"  escaped        {len(escaped)}")
    for name, reason in escaped:
        print(f"    {name}: {reason}")
    return 1 if escaped else 0


def _cmd_bench(args) -> int:
    from .metrics import ThroughputStats
    from .resilience import CampaignJournal, ResiliencePolicy
    if args.experiment == "hostile":
        return _cmd_bench_hostile(args)
    tools = ("wasai", "eosfuzzer", "eosafe")
    oracles = args.oracles
    if args.experiment == "semantic":
        # The semantic corpus: per family, one buggy/clean pair per
        # unit of scale.  Only WASAI evaluates the semantic families,
        # so the comparison tools sit this experiment out.
        from .benchgen import build_semantic_corpus
        samples = build_semantic_corpus(pairs=max(1, round(args.scale * 50)))
        tools = ("wasai",)
        if oracles is None:
            oracles = _oracles_spec("all")
    else:
        samples = build_table4_corpus(scale=args.scale)
        if args.experiment == "table5":
            samples = [obfuscated_variant(s) for s in samples]
        elif args.experiment == "table6":
            samples = [verification_variant(s) for s in samples]
    print(f"# {args.experiment}: {len(samples)} samples "
          f"(scale {args.scale}, jobs {args.jobs or 'auto'})")
    if args.resume and args.journal is None:
        print("error: --resume requires --journal", file=sys.stderr)
        return 2
    policy = ResiliencePolicy(max_retries=args.max_retries,
                              backoff_base_s=args.backoff_s,
                              quarantine_after=args.quarantine_after,
                              degrade=args.degrade)
    journal = CampaignJournal(args.journal) if args.journal else None
    perf = ThroughputStats()
    tables = evaluate_corpus(samples, tools=tools,
                             timeout_ms=args.timeout_ms,
                             jobs=args.jobs,
                             task_timeout_s=args.task_timeout_s,
                             perf=perf, policy=policy,
                             journal=journal, resume=args.resume,
                             divergence_check=args.divergence_check,
                             oracles=oracles)
    for table in tables.values():
        print(table.format())
    print(perf.format())
    if args.fail_on_quarantine and perf.quarantined:
        print(f"error: {perf.quarantined} sample(s) quarantined "
              "(--fail-on-quarantine)", file=sys.stderr)
        return 3
    if args.fail_on_family_fp:
        from .semoracle import SEMANTIC_FAMILIES
        family_fps = {
            f"{tool}/{family}": count
            for tool, table in tables.items()
            for family, count in
            table.false_positives(SEMANTIC_FAMILIES).items()}
        if family_fps:
            detail = ", ".join(f"{k}: {v}"
                               for k, v in sorted(family_fps.items()))
            print(f"error: semantic family false positives — {detail} "
                  "(--fail-on-family-fp)", file=sys.stderr)
            return 6
    return 0


def _cmd_serve(args) -> int:
    from .resilience import CampaignJournal, ResiliencePolicy
    from .service import (ScanService, ScanServiceConfig, make_server,
                          serve_forever)
    if args.resume and args.journal is None:
        print("error: --resume requires --journal", file=sys.stderr)
        return 2
    service = ScanService(
        store=str(args.store),
        config=ScanServiceConfig(workers=args.workers,
                                 max_depth=args.queue_depth,
                                 max_inflight=args.max_inflight,
                                 default_timeout_ms=args.timeout_ms,
                                 job_ttl_s=args.job_ttl_s,
                                 promote_after_s=args.promote_after_s,
                                 task_deadline_s=args.task_deadline_s,
                                 breaker_threshold=args.breaker_threshold,
                                 breaker_cooldown_s=args.breaker_cooldown_s,
                                 store_max_bytes=args.store_max_bytes,
                                 capture_traces=args.capture_traces,
                                 drift_audit_s=args.drift_audit_s,
                                 drift_audit_sample=args.drift_audit_sample,
                                 oracles=args.oracles,
                                 target_p95_s=args.target_p95_s,
                                 housekeeping_s=args.housekeeping_s),
        policy=ResiliencePolicy(max_retries=args.max_retries,
                                quarantine_after=args.quarantine_after),
        journal=CampaignJournal(args.journal) if args.journal else None)
    tenants = None
    if args.tenants is not None:
        from .service import TenantBook
        tenants = TenantBook.from_doc(
            json.loads(args.tenants.read_text(encoding="utf-8")))
    server = make_server(service, host=args.host, port=args.port,
                         verbose=args.verbose, tenants=tenants)
    host, port = server.server_address[:2]
    print(f"wasai scan service on http://{host}:{port} "
          f"(store {args.store}, {args.workers} workers, "
          f"queue depth {args.queue_depth})", flush=True)
    if args.resume:
        replayed = service.resume_from_journal()
        print(f"resumed {replayed} checkpointed job(s) from "
              f"{args.journal}", flush=True)
    checkpointed = serve_forever(server)
    print(f"drained; {checkpointed} queued job(s) checkpointed",
          flush=True)
    return 0


def _cmd_submit(args) -> int:
    from .service import ServiceClient, ServiceError
    client = ServiceClient(args.url.split(","), api_key=args.api_key)
    config = {}
    if args.timeout_ms is not None:
        config["timeout_ms"] = args.timeout_ms
    if args.tool is not None:
        config["tool"] = args.tool
    if args.seed is not None:
        config["rng_seed"] = args.seed
    try:
        doc = client.submit(args.wasm.read_bytes(),
                            args.abi.read_text(), config=config or None,
                            client=args.client, priority=args.priority,
                            deadline_s=args.deadline_s)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2 if exc.error == "malformed_module" else 4
    print(f"job {doc['id']}: {doc['state']} "
          f"(outcome: {doc['outcome']})")
    if doc["state"] == "deadline_exceeded":
        print(f"error: {doc.get('error', 'deadline exceeded')}",
              file=sys.stderr)
        return 4
    if doc["state"] == "done" or args.wait:
        if doc["state"] != "done":
            try:
                doc = client.wait(doc["id"],
                                  timeout_s=args.wait_timeout_s)
            except (ServiceError, TimeoutError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 4
        print(json.dumps(doc, indent=2, sort_keys=True))
        if doc["state"] != "done":
            return 4
        verdict = doc.get("verdict", {})
        return 1 if verdict.get("vulnerable") else 0
    return 0


def _cmd_status(args) -> int:
    from .service import ServiceClient, ServiceError
    client = ServiceClient(args.url)
    try:
        if args.stats or args.job_id is None:
            doc = client.stats()
        else:
            doc = client.status(args.job_id)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 4
    print(json.dumps(doc, indent=2, sort_keys=True))
    return 0


def _format_reverdict_report(doc: dict) -> str:
    header = (f"# reverdict: oracle v{doc.get('oracle_version')}, "
              f"trace IR v{doc.get('traceir_version')}")
    if doc.get("oracles"):
        header += f", families: {','.join(doc['oracles'])}"
    lines = [
        header,
        f"  replayed   {doc.get('replayed', 0)} "
        f"(rewritten {doc.get('rewritten', 0)}, "
        f"orphaned {doc.get('orphaned', 0)})",
        f"  matched    {doc.get('matched', 0)}",
        f"  drift      {doc.get('drift', 0)}",
        f"  corrupt    {doc.get('corrupt', 0)} (quarantined)",
        f"  insufficient {doc.get('insufficient', 0)} "
        "(surface too old; re-queued for fresh scans)",
    ]
    for incident in doc.get("incidents", ()):
        kind = incident.get("kind", "incident")
        key = incident.get("scan_key", "?")
        detail = incident.get("detail", "")
        lines.append(f"    {kind} {key[:16]} {detail}".rstrip())
    return "\n".join(lines)


def _cmd_reverdict(args) -> int:
    if args.store is not None:
        # Offline: open the artifact store directly — the sweep needs
        # no fuzzing workers, so no daemon is required.
        from .service.reverdict import reverdict_store
        from .service.store import ArtifactStore
        store = ArtifactStore(str(args.store))
        try:
            report_doc = reverdict_store(
                store, oracle_version=args.oracle_version,
                oracles=args.oracles).to_doc()
        finally:
            store.close()
    else:
        from .service import ServiceClient, ServiceError
        client = ServiceClient(args.url.split(","))
        try:
            doc = client.reverdict(oracle_version=args.oracle_version,
                                   wait=True,
                                   timeout_s=args.wait_timeout_s,
                                   oracles=args.oracles)
        except (ServiceError, TimeoutError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 4
        if doc.get("state") != "done":
            print(f"error: reverdict job {doc.get('id')} ended "
                  f"{doc.get('state')}: {doc.get('error')}",
                  file=sys.stderr)
            return 4
        report_doc = doc.get("result", {})
    if args.json:
        print(json.dumps(report_doc, indent=2, sort_keys=True))
    else:
        print(_format_reverdict_report(report_doc))
    return 1 if report_doc.get("drift") else 0


def _cmd_chaos(args) -> int:
    from .service import run_chaos_drill
    report = run_chaos_drill(
        args.schedule, verbose=args.verbose,
        keep_dir=str(args.keep_dir) if args.keep_dir else None)
    if args.json:
        print(json.dumps(report.to_doc(), indent=2, sort_keys=True))
    else:
        print(report.format())
    return 0 if report.ok else 5


if __name__ == "__main__":
    sys.exit(main())

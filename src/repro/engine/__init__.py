"""repro.engine — the fuzzing skeleton (Algorithm 1)."""

from .clock import CostModel, VirtualClock
from .dbg import DatabaseDependencyGraph
from .deploy import (FuzzTarget, InstrumentationCache,
                     configure_instrumentation_cache, deploy_target,
                     deploy_untrusted_target, instrumentation_cache,
                     module_content_hash, module_fingerprint,
                     setup_chain)
from .fuzzer import FuzzReport, Observation, WasaiFuzzer
from .seedpool import SeedPool
from .seeds import Seed, random_seed, random_value

__all__ = [
    "CostModel", "VirtualClock", "DatabaseDependencyGraph", "FuzzTarget",
    "deploy_target", "deploy_untrusted_target", "setup_chain",
    "FuzzReport", "Observation",
    "WasaiFuzzer", "SeedPool", "Seed", "random_seed", "random_value",
    "InstrumentationCache", "instrumentation_cache",
    "configure_instrumentation_cache", "module_content_hash",
    "module_fingerprint",
]

"""A deterministic virtual clock for timed fuzzing campaigns.

The paper's experiments run with a wall-clock 5-minute timeout and a
3,000 ms SMT cap.  Wall time is not reproducible across machines, so
the harness charges calibrated *virtual* milliseconds per unit of
work.  The relative costs — a transaction execution is cheap, an SMT
query is expensive — are what produce Figure 3's early crossover
(WASAI pays solver time up front, then overtakes on coverage).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["VirtualClock", "CostModel"]


@dataclass
class CostModel:
    """Virtual milliseconds charged per unit of work.

    Defaults are calibrated against the paper's setup: Nodeos executes
    an instrumented transaction in tens of milliseconds (tracing I/O
    dominates), one SMT query is capped at 3,000 ms and averages a few
    hundred, and replaying a trace symbolically costs roughly one
    transaction.
    """

    transaction_ms: float = 40.0       # execute + capture traces
    replay_ms: float = 25.0            # Symback trace simulation
    smt_query_ms: float = 420.0        # average solver query
    smt_cap_ms: float = 3000.0         # the paper's per-query cap
    iteration_overhead_ms: float = 3.0


class VirtualClock:
    def __init__(self, cost_model: CostModel | None = None):
        self.costs = cost_model or CostModel()
        self.now_ms = 0.0

    def charge(self, milliseconds: float) -> None:
        self.now_ms += milliseconds

    def charge_transaction(self) -> None:
        self.charge(self.costs.transaction_ms)

    def charge_replay(self) -> None:
        self.charge(self.costs.replay_ms)

    def charge_smt(self, queries: int = 1, capped: bool = False) -> None:
        per_query = (self.costs.smt_cap_ms if capped
                     else self.costs.smt_query_ms)
        self.charge(per_query * queries)

    def charge_iteration(self) -> None:
        self.charge(self.costs.iteration_overhead_ms)

    def expired(self, timeout_ms: float) -> bool:
        return self.now_ms >= timeout_ms

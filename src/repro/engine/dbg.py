"""The database dependency graph (DBG, §3.3.2).

Records which action functions read and write which database tables;
the Engine uses it to resolve transaction dependency: when a seed's
action read a table it found empty (or asserted on), schedule a writer
of that table first.

The paper notes (§5) that the table-level granularity is deliberately
coarse; the FN mechanism that follows from it (multi-table actions) is
reproduced by the benchmark generator.
"""

from __future__ import annotations

import networkx as nx

from ..eosio.database import DbOperation

__all__ = ["DatabaseDependencyGraph"]


class DatabaseDependencyGraph:
    """A bipartite graph between action names and table keys."""

    def __init__(self) -> None:
        self.graph = nx.DiGraph()

    @staticmethod
    def _table_node(table_key: tuple) -> tuple:
        return ("table", table_key)

    @staticmethod
    def _action_node(action_name: str) -> tuple:
        return ("action", action_name)

    def record(self, action_name: str, ops: list[DbOperation]) -> None:
        """Update the graph with one execution's database journal."""
        action = self._action_node(action_name)
        self.graph.add_node(action)
        for op in ops:
            table = self._table_node(op.table_key)
            self.graph.add_node(table)
            if op.kind == "write":
                # action -> table: the action can populate the table.
                self.graph.add_edge(action, table, kind="write")
            else:
                # table -> action: the action depends on the table.
                self.graph.add_edge(table, action, kind="read")

    def writers_of(self, table_key: tuple) -> list[str]:
        table = self._table_node(table_key)
        if table not in self.graph:
            return []
        return sorted(name for kind, name in self.graph.predecessors(table)
                      if kind == "action")

    def tables_read_by(self, action_name: str) -> list[tuple]:
        action = self._action_node(action_name)
        if action not in self.graph:
            return []
        return sorted(key for kind, key in self.graph.predecessors(action)
                      if kind == "table")

    def dependency_writers(self, action_name: str) -> list[str]:
        """Actions that write any table ``action_name`` reads — the
        φ2 candidates of §3.3.2."""
        writers: set[str] = set()
        for table_key in self.tables_read_by(action_name):
            writers.update(self.writers_of(table_key))
        writers.discard(action_name)
        return sorted(writers)

    def known_actions(self) -> list[str]:
        return sorted(name for kind, name in self.graph.nodes
                      if kind == "action")

"""Deployment helper: wire a contract binary into the local chain.

Mirrors the paper's *Initiation* stage (Algorithm 1, L2): instrument
the target binary (bin -> bin'), deploy it together with the auxiliary
contracts (``eosio.token`` and the adversary-oracle agents), and keep
the artefacts Symback needs (original module, site table, ABI, the
``apply`` function index).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..eosio.abi import Abi
from ..eosio.chain import Chain, WasmContract
from ..eosio.name import N, Name
from ..eosio.token import deploy_token, issue_to
from ..instrument import SiteTable, instrument_module
from ..wasm.module import Module

__all__ = ["FuzzTarget", "deploy_target", "setup_chain"]


@dataclass
class FuzzTarget:
    """Everything the fuzzer needs to know about a deployed target."""

    account: int
    module: Module          # the ORIGINAL (uninstrumented) module
    abi: Abi
    site_table: SiteTable
    apply_index: int        # function index of void apply() (original)
    import_names: dict[int, str]

    @property
    def account_str(self) -> str:
        from ..eosio.name import name_to_string
        return name_to_string(self.account)


def deploy_target(chain: Chain, account: "str | int", module: Module,
                  abi: Abi) -> FuzzTarget:
    """Instrument ``module`` and deploy it at ``account``."""
    instrumented, site_table = instrument_module(module)
    contract = WasmContract(instrumented, abi, site_table)
    account_name = chain.set_contract(account, contract)
    apply_index = module.export_index("apply", "func")
    if apply_index is None:
        raise ValueError("contract has no exported apply() dispatcher")
    import_names = {i: imp.name
                    for i, imp in enumerate(module.imported_functions())}
    return FuzzTarget(account_name, module, abi, site_table, apply_index,
                      import_names)


def setup_chain(player_funds: str = "10000000.0000 EOS") -> Chain:
    """A fresh local chain with eosio.token and standard test accounts
    (the paper's local blockchain initiation)."""
    chain = Chain()
    deploy_token(chain, "eosio.token")
    issue_to(chain, "eosio.token", "player", player_funds)
    issue_to(chain, "eosio.token", "attacker", player_funds)
    chain.create_account("bob")
    return chain

"""Deployment helper: wire a contract binary into the local chain.

Mirrors the paper's *Initiation* stage (Algorithm 1, L2): instrument
the target binary (bin -> bin'), deploy it together with the auxiliary
contracts (``eosio.token`` and the adversary-oracle agents), and keep
the artefacts Symback needs (original module, site table, ABI, the
``apply`` function index).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass

from ..eosio.abi import Abi
from ..eosio.chain import Chain, WasmContract
from ..eosio.name import N, Name
from ..eosio.token import deploy_token, issue_to
from ..instrument import SiteTable, instrument_module
from ..resilience import faultinject
from ..resilience.errors import (CampaignError, DeployError,
                                 InstrumentError)
from ..sharedcache import SharedDiskCache
from ..wasm.module import Module

__all__ = ["FuzzTarget", "deploy_target", "setup_chain",
           "InstrumentationCache", "instrumentation_cache",
           "configure_instrumentation_cache", "module_content_hash",
           "module_fingerprint"]


def module_content_hash(module: Module) -> str:
    """The canonical content hash identifying ``module`` everywhere.

    The binary encoding is canonical for our purposes (the corpus
    builders hand out structurally distinct modules), so hashing the
    encoded bytes yields one identity shared by every consumer: the
    instrumentation cache, the checkpoint journal's resume keys and
    the scan service's artifact store all key on this digest, so they
    can never disagree about whether two modules are "the same".  The
    digest is memoised on the module instance; modules are treated as
    immutable once they reach the deployment layer.
    """
    cached = getattr(module, "_repro_fingerprint", None)
    if cached is not None:
        return cached
    from ..wasm.encoder import encode_module
    digest = hashlib.sha256(encode_module(module)).hexdigest()
    module._repro_fingerprint = digest
    return digest


# Historical name, kept for existing callers and tests.
module_fingerprint = module_content_hash


class InstrumentationCache:
    """Memoises ``instrument_module`` per distinct contract binary.

    The evaluation pipeline redeploys the same module many times — once
    per tool in ``evaluate_corpus``, repeatedly across RQ4 rounds and
    the obfuscation bench — and instrumentation is a full-module
    rewrite, so amortising it is a large win.  Entries (instrumented
    module + site table) are shared read-only: execution state lives in
    per-transaction ``Instance`` objects, never in the module itself.

    Below the in-memory memo sits an optional shared on-disk tier
    (:mod:`repro.sharedcache`): parallel workers are separate processes
    with separate memos, so a sibling's instrumentation work is only
    reusable through the disk.  A memory miss consults the disk before
    rewriting; fresh rewrites are written through.
    """

    def __init__(self, max_entries: int = 128):
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, tuple[Module, SiteTable]]" \
            = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.disk = SharedDiskCache("instrument", serializer="pickle")

    def __len__(self) -> int:
        return len(self._entries)

    def instrument(self, module: Module) -> tuple[Module, SiteTable]:
        key = module_content_hash(module)
        found = self._entries.get(key)
        if found is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return found
        self.misses += 1
        entry = None
        if self.disk.enabled:
            cached = self.disk.get(key)
            if (isinstance(cached, tuple) and len(cached) == 2
                    and isinstance(cached[0], Module)):
                entry = cached
        if entry is None:
            entry = instrument_module(module)
            self.disk.put(key, entry)
        self._entries[key] = entry
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
        return entry

    def clear(self) -> None:
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats_dict(self) -> dict[str, "int | float"]:
        stats = {"hits": self.hits, "misses": self.misses,
                 "evictions": self.evictions, "entries": len(self._entries),
                 "hit_rate": self.hit_rate}
        stats.update(self.disk.stats_dict())
        return stats


# One cache per process; parallel workers each grow their own.
_INSTRUMENT_CACHE: InstrumentationCache | None = InstrumentationCache()


def instrumentation_cache() -> InstrumentationCache | None:
    """The process-wide instrumentation cache (None when disabled)."""
    return _INSTRUMENT_CACHE


def configure_instrumentation_cache(
        enabled: bool = True,
        max_entries: int = 128) -> InstrumentationCache | None:
    """Replace the process-wide cache (or disable it); returns the new
    cache.  Used by the determinism tests and the ablation benches."""
    global _INSTRUMENT_CACHE
    _INSTRUMENT_CACHE = (InstrumentationCache(max_entries)
                         if enabled else None)
    return _INSTRUMENT_CACHE


@dataclass
class FuzzTarget:
    """Everything the fuzzer needs to know about a deployed target."""

    account: int
    module: Module          # the ORIGINAL (uninstrumented) module
    abi: Abi
    site_table: SiteTable
    apply_index: int        # function index of void apply() (original)
    import_names: dict[int, str]

    @property
    def account_str(self) -> str:
        from ..eosio.name import name_to_string
        return name_to_string(self.account)


def deploy_target(chain: Chain, account: "str | int", module: Module,
                  abi: Abi) -> FuzzTarget:
    """Instrument ``module`` and deploy it at ``account``.

    Failures surface as typed campaign errors:
    :class:`~repro.resilience.InstrumentError` for the bin -> bin'
    rewrite, :class:`~repro.resilience.DeployError` for the chain
    side — so the containment policies can tell the stages apart.
    """
    faultinject.inject("instrument")
    try:
        cache = _INSTRUMENT_CACHE
        if cache is not None:
            instrumented, site_table = cache.instrument(module)
        else:
            instrumented, site_table = instrument_module(module)
    except CampaignError:
        raise
    except Exception as exc:
        raise InstrumentError.wrap(exc)
    faultinject.inject("deploy")
    try:
        contract = WasmContract(instrumented, abi, site_table)
        account_name = chain.set_contract(account, contract)
        apply_index = module.export_index("apply", "func")
        if apply_index is None:
            raise ValueError(
                "contract has no exported apply() dispatcher")
        import_names = {
            i: imp.name
            for i, imp in enumerate(module.imported_functions())}
    except CampaignError:
        raise
    except Exception as exc:
        raise DeployError.wrap(exc)
    return FuzzTarget(account_name, module, abi, site_table, apply_index,
                      import_names)


def setup_chain(player_funds: str = "10000000.0000 EOS",
                limits=None) -> Chain:
    """A fresh local chain with eosio.token and standard test accounts
    (the paper's local blockchain initiation).  ``limits``, when given,
    is the :class:`~repro.wasm.interpreter.ExecutionLimits` every Wasm
    contract on this chain will run under."""
    chain = Chain(limits=limits)
    deploy_token(chain, "eosio.token")
    issue_to(chain, "eosio.token", "player", player_funds)
    issue_to(chain, "eosio.token", "attacker", player_funds)
    chain.create_account("bob")
    return chain


def deploy_untrusted_target(chain: Chain, account: "str | int",
                            data: bytes, abi: Abi,
                            budget=None) -> FuzzTarget:
    """Ingest raw (untrusted) contract bytes, then deploy.

    The sandboxed ingestion front door for byte-level inputs: the
    bytes pass through :func:`~repro.wasm.load_untrusted_module`
    (budget enforcement + typed diagnostics) before the usual
    instrument/deploy pipeline sees them, so a hostile binary fails
    the non-retryable *ingest* stage instead of surfacing a raw
    parser exception mid-deployment.
    """
    from ..wasm.hardening import load_untrusted_module
    module = load_untrusted_module(data, budget=budget)
    return deploy_target(chain, account, module, abi)

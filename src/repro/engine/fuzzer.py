"""The WASAI fuzzing loop (Algorithm 1).

One :class:`WasaiFuzzer` campaign fuzzes one deployed target: it
selects seeds under transaction-dependency guidance (DBG + circular
seed pool), executes them through the adversary-oracle payloads,
captures the instrumented traces, replays them symbolically, flips
unexplored conditional states, and feeds the solved adaptive seeds
back into the pool.  The scanner consumes the resulting observation
log.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from itertools import cycle

from ..eosio.chain import ActionRecord, Chain
from ..eosio.name import Name, name_to_string
from ..eosio.token import issue_to, token_balance
from ..instrument import decode_raw_trace
from ..instrument.hooks import HookEvent
from ..resilience import faultinject
from ..resilience.errors import (CampaignError, DeadlineExceeded,
                                 DivergenceError, SolverError,
                                 SymbackError)
from ..smt import SolverStats
from ..symbolic import (SeedLayout, branch_coverage_ids, flip_queries,
                        locate_action_call, replay_action, solve_flips)
from ..scanner.oracles import (AdversarySetup, PAYLOAD_KINDS, build_payload,
                               setup_adversaries)
from .clock import VirtualClock
from .dbg import DatabaseDependencyGraph
from .deploy import FuzzTarget
from .seedpool import SeedPool
from .seeds import Seed, random_seed

__all__ = ["WasaiFuzzer", "FuzzReport", "Observation", "KNOWN_IDENTITIES"]

# Account names every campaign's seed generator may draw on; the
# deployed target's own account is spliced in after "attacker" (see
# WasaiFuzzer._known_identities — the order is part of the RNG stream,
# so changing it changes campaigns byte-for-byte).
KNOWN_IDENTITIES: tuple[str, ...] = ("player", "attacker", "eosio.token",
                                     "bob")


@dataclass
class Observation:
    """One victim execution observed during fuzzing."""

    payload_kind: str
    action_name: str
    executed_params: list
    record: ActionRecord
    events: list[HookEvent]
    success: bool
    time_ms: float
    # The exact transaction that produced this observation — kept so
    # the Scanner can emit replayable exploit payloads.
    actions: list = field(default_factory=list)


@dataclass
class FuzzReport:
    """The campaign's output, consumed by the Scanner and the benches."""

    target_account: int
    covered: set = field(default_factory=set)
    coverage_timeline: list[tuple[float, int]] = field(default_factory=list)
    observations: list[Observation] = field(default_factory=list)
    eosponser_id: int | None = None
    iterations: int = 0
    adaptive_seeds: int = 0
    solver_stats: SolverStats = field(default_factory=SolverStats)
    setup: AdversarySetup | None = None
    # Resilience accounting: True once the campaign fell back to pure
    # black-box fuzzing (symbolic feedback lost); ``contained`` lists
    # every fault the loop absorbed instead of aborting.
    degraded: bool = False
    contained: list[str] = field(default_factory=list)
    # Which pipeline stage the absorbed feedback failures blamed
    # (e.g. "solve", "symback"), keyed by stage name with a hit count.
    # The scan service's circuit breakers consume this: containment
    # hides the fault from the campaign, but the service still needs
    # to know *which* stage is failing across jobs.
    feedback_failure_stages: dict = field(default_factory=dict)
    # Divergence-sentinel verdicts: one entry per trace whose symbolic
    # replay disagreed with the recorded concrete operands.  A sample
    # with any entry here is reported as its own row class, never
    # folded into TP/FP counts.
    divergences: list[str] = field(default_factory=list)
    # Sentinel cross-checks that passed across all replays (evidence
    # the sentinel was armed, not just silent).
    sentinel_checkpoints: int = 0
    # End-of-campaign DB snapshot (plain bytes, keyed by
    # (code, scope, table) then primary key) — the read surface of the
    # semantic ``data_consistency`` oracle family.
    db_state: dict = field(default_factory=dict)

    def observations_of(self, payload_kind: str) -> list[Observation]:
        return [o for o in self.observations
                if o.payload_kind == payload_kind]


class WasaiFuzzer:
    """Concolic fuzzing of one deployed target contract."""

    def __init__(self, chain: Chain, target: FuzzTarget,
                 rng: random.Random | None = None,
                 clock: VirtualClock | None = None,
                 timeout_ms: float = 300_000.0,
                 smt_max_conflicts: int = 20_000,
                 max_flips_per_round: int = 4,
                 initial_seeds_per_action: int = 3,
                 feedback: bool = True,
                 address_pool: bool = False,
                 trace_dir: "str | None" = None,
                 trace_format: str = "jsonl",
                 max_feedback_failures: int = 3,
                 divergence_check: bool = True,
                 deadline_epoch_s: float | None = None,
                 wall_clock=time.time):
        self.chain = chain
        self.target = target
        self.rng = rng or random.Random(0)
        self.clock = clock or VirtualClock()
        self.timeout_ms = timeout_ms
        self.smt_max_conflicts = smt_max_conflicts
        self.max_flips_per_round = max_flips_per_round
        self.feedback = feedback
        self.pool = SeedPool()
        self.dbg = DatabaseDependencyGraph()
        self.report = FuzzReport(target_account=target.account)
        # The address-pool extension (the paper's §4.2/§5 future work):
        # candidate identities mined from the bytecode's name-like
        # constants, rotated as the paying account.
        self.address_pool = address_pool
        self._identities: list[int] = []
        self._identity_rotation = None
        # Optional offline trace redirect (§3.3.1): every observation's
        # raw trace is flushed to its own file, and Symback reads the
        # events back from disk instead of the in-memory buffer.
        self._trace_store = None
        if trace_dir is not None:
            from ..instrument.tracefile import TraceStore
            self._trace_store = TraceStore(trace_dir, fmt=trace_format)
        self._explored_flips: set[tuple] = set()
        self._payload_rotation = cycle(PAYLOAD_KINDS)
        self._action_rotation = None
        self._pending_dependency: list[str] = []
        # Containment: after this many symbolic-feedback failures the
        # campaign degrades to the black-box mutation loop (the
        # ConFuzzius-style fallback) instead of aborting.
        self.max_feedback_failures = max_feedback_failures
        self._feedback_failures = 0
        self.divergence_check = divergence_check
        # Caller wall-clock deadline (absolute epoch seconds).  The
        # campaign budget itself is *virtual* time, so an overloaded
        # host can take arbitrarily long to burn it; the deadline is
        # the real-time bound the caller actually experiences.  Checked
        # once per round, never inside one (a round is the atomic unit
        # of fuzzing work).
        self.deadline_epoch_s = deadline_epoch_s
        self._wall_clock = wall_clock
        self._started_wall_s: float | None = None

    # -- campaign ----------------------------------------------------------
    def run(self) -> FuzzReport:
        self._started_wall_s = self._wall_clock()
        self._check_deadline()
        self._initiate()
        while not self.clock.expired(self.timeout_ms):
            self._check_deadline()
            self._iteration()
        self.report.coverage_timeline.append(
            (self.clock.now_ms, len(self.report.covered)))
        self.report.db_state = self.chain.db.export_state()
        return self.report

    def _check_deadline(self) -> None:
        if self.deadline_epoch_s is None:
            return
        now = self._wall_clock()
        if now >= self.deadline_epoch_s:
            elapsed = now - (self._started_wall_s
                             if self._started_wall_s is not None else now)
            raise DeadlineExceeded(
                f"caller deadline passed mid-campaign after "
                f"{self.report.iterations} rounds",
                deadline_epoch_s=self.deadline_epoch_s,
                elapsed_s=elapsed)

    def _initiate(self) -> None:
        """Algorithm 1 L2: local chain + agents + random seed pool."""
        setup = setup_adversaries(self.chain, self.target.account)
        self.report.setup = setup
        # Fund the victim so reward paths can execute.
        issue_to(self.chain, "eosio.token", self.target.account_str,
                 "10000000.0000 EOS")
        known = self._known_identities()
        actions = self.target.abi.action_names()
        for action_name in actions:
            abi_action = self.target.abi.action(action_name)
            for _ in range(3):
                self.pool.add(random_seed(abi_action, self.rng, known))
        self._action_rotation = cycle(actions or ["transfer"])
        if self.address_pool:
            self._identities = self._mine_identities()
            for identity in self._identities:
                self.chain.create_account(identity)
                issue_to(self.chain, "eosio.token",
                         identity, "10000.0000 EOS")
            self._identity_rotation = cycle([setup.player,
                                             *self._identities])

    def _known_identities(self) -> list[str]:
        """KNOWN_IDENTITIES with the target account spliced in at the
        historical position (index 2) to preserve seed RNG streams."""
        known = list(KNOWN_IDENTITIES)
        known.insert(2, self.target.account_str)
        return known

    def _mine_identities(self) -> list[int]:
        """Candidate account identities: i64 constants in the contract
        bytecode that decode to plausible EOSIO names."""
        from ..eosio.name import string_to_name
        candidates: set[int] = set()
        skip = {self.target.account, Name("eosio.token").value,
                Name("transfer").value}
        for func in self.target.module.functions:
            for instr in func.body:
                if instr.op != "i64.const":
                    continue
                value = instr.args[0] & 0xFFFFFFFFFFFFFFFF
                if value in skip or value == 0:
                    continue
                text = name_to_string(value)
                if not text or len(text) < 3:
                    continue
                try:
                    if string_to_name(text) == value:
                        candidates.add(value)
                except ValueError:
                    continue
        return sorted(candidates)[:8]

    def _iteration(self) -> None:
        self.report.iterations += 1
        self.clock.charge_iteration()
        action_name = self._select_action()
        abi_action = (self.target.abi.action(action_name)
                      if self.target.abi.has_action(action_name) else None)
        if abi_action is None:
            return
        # Keep the pool supplied with fresh random seeds alongside the
        # adaptive ones (Algorithm 1 keeps drawing from both).
        known = self._known_identities()
        self.pool.add(random_seed(abi_action, self.rng, known))
        seed = self.pool.next(action_name)
        if seed is None:
            seed = random_seed(abi_action, self.rng, known)
            self.pool.add(seed)
        # Transfer seeds run under every adversary-oracle payload; the
        # other actions only have the direct invocation.
        kinds = PAYLOAD_KINDS if action_name == "transfer" else ("direct",)
        for kind in kinds:
            try:
                observation = self.execute_seed(kind, seed, abi_action)
            except CampaignError as exc:
                # A trapping victim execution (trap storm) costs one
                # observation, never the campaign.
                self.report.contained.append(f"execute: {exc}")
                continue
            if observation is None:
                continue
            self._update_dbg(observation)
            if self.feedback:
                try:
                    self._feedback(observation, abi_action)
                except DivergenceError as exc:
                    self._contain_divergence(exc)
                except CampaignError as exc:
                    self._contain_feedback_failure(exc)

    def _contain_divergence(self, exc: DivergenceError) -> None:
        """Quarantine one diverged trace: its symbolic feedback is
        dropped (no adaptive seeds, no flips) and the verdict is
        recorded so the harness reports the sample as divergent.
        Deliberately *not* routed through the degradation budget —
        divergence is an unsound replay, not an unavailable one."""
        if len(self.report.divergences) < 10:
            self.report.divergences.append(
                f"iteration {self.report.iterations}: {exc}")
        self.report.contained.append(f"divergence: {exc}")

    def _contain_feedback_failure(self, exc: CampaignError) -> None:
        """Absorb one symbolic-feedback fault; degrade to black-box
        fuzzing once the budget is spent (the campaign keeps running
        on random + mutation seeds, exactly the EOSFuzzer loop)."""
        self._feedback_failures += 1
        self.report.contained.append(f"feedback: {exc}")
        stage = exc.stage or "symback"
        self.report.feedback_failure_stages[stage] = \
            self.report.feedback_failure_stages.get(stage, 0) + 1
        if (self._feedback_failures >= self.max_feedback_failures
                and self.feedback):
            self.feedback = False
            self.report.degraded = True
            self.report.contained.append(
                f"degraded to black-box fuzzing after "
                f"{self._feedback_failures} symbolic failures")

    # -- seed selection (§3.3.2) ----------------------------------------------
    def _select_action(self) -> str:
        if self._pending_dependency:
            return self._pending_dependency.pop(0)
        return next(self._action_rotation)

    def _update_dbg(self, observation: Observation) -> None:
        self.dbg.record(observation.action_name, observation.record.db_ops)
        # Transaction dependency: a failed read means some writer must
        # run first; schedule the writers the DBG knows about.
        if not observation.success:
            for writer in self.dbg.dependency_writers(
                    observation.action_name):
                if writer not in self._pending_dependency:
                    self._pending_dependency.append(writer)

    # -- payload execution -------------------------------------------------------
    def execute_seed(self, kind: str, seed: Seed,
                     abi_action) -> Observation | None:
        """Run one payload; capture the victim's trace."""
        faultinject.inject("trap")
        setup = self.report.setup
        payer = None
        if (self.address_pool and kind == "legit"
                and self._identity_rotation is not None):
            payer = next(self._identity_rotation)
        try:
            actions, executed_params = build_payload(kind, setup, seed,
                                                     abi_action,
                                                     payer=payer)
        except (ValueError, TypeError):
            return None
        result = self.chain.push_transaction(actions)
        self.clock.charge_transaction()
        victim_records = [r for r in result.all_records()
                          if r.receiver == self.target.account
                          and r.wasm_trace]
        if not victim_records:
            return None
        record = victim_records[0]
        if self._trace_store is not None:
            from ..instrument.tracefile import load_trace_file
            from ..resilience.errors import TraceCorruption
            token = f"iter{self.report.iterations:06d}-{kind}"
            for hook_name, args in record.wasm_trace:
                self._trace_store.append(token, hook_name, args)
            path = self._trace_store.finalize(token)
            try:
                events = load_trace_file(path)
            except TraceCorruption as exc:
                # The offline file rotted between flush and readback
                # (or an injected fault corrupted it).  The in-memory
                # buffer is still intact, so the observation survives;
                # the containment is recorded, never silent.
                self.report.contained.append(
                    f"trace file discarded: {exc}")
                events = decode_raw_trace(record.wasm_trace)
        else:
            events = decode_raw_trace(record.wasm_trace)
        if faultinject.should_corrupt("trace"):
            events = _corrupt_trace(events, self.target.site_table)
        observation = Observation(kind, seed.action_name, executed_params,
                                  record, events, result.success,
                                  self.clock.now_ms, actions=actions)
        self.report.observations.append(observation)
        # Coverage accounting (only the fuzzing target's traces, §4.1).
        new_cover = branch_coverage_ids(self.target.site_table, events)
        before = len(self.report.covered)
        self.report.covered.update(new_cover)
        if len(self.report.covered) != before:
            self.report.coverage_timeline.append(
                (self.clock.now_ms, len(self.report.covered)))
        # Locate the eosponser from a valid EOS transaction (§3.5).
        if self.report.eosponser_id is None and kind == "legit":
            located = locate_action_call(events, self.target.site_table,
                                         self.target.apply_index)
            if located is not None:
                self.report.eosponser_id = located[1]
        return observation

    # -- symbolic feedback (§3.4) ----------------------------------------------------
    def _feedback(self, observation: Observation, abi_action) -> None:
        layout = SeedLayout(abi_action, observation.executed_params)
        try:
            replay = replay_action(self.target.module,
                                   self.target.site_table,
                                   observation.events, layout,
                                   self.target.apply_index,
                                   self.target.import_names,
                                   divergence_check=self.divergence_check)
        except CampaignError:
            raise
        except Exception as exc:
            raise SymbackError.wrap(exc)
        self.report.sentinel_checkpoints += replay.checkpoints
        self.clock.charge_replay()
        if not replay.reached_action:
            return
        explored = self._explored_flips | self.report.covered
        queries = flip_queries(replay, explored)
        queries = queries[:self.max_flips_per_round]
        if not queries:
            return
        before_unknown = self.report.solver_stats.unknowns
        try:
            seeds = solve_flips(queries, layout, observation.action_name,
                                max_conflicts=self.smt_max_conflicts,
                                stats=self.report.solver_stats)
        except CampaignError:
            raise
        except Exception as exc:
            raise SolverError.wrap(exc)
        capped = self.report.solver_stats.unknowns > before_unknown
        self.clock.charge_smt(len(queries), capped=capped)
        for adaptive in seeds:
            self._explored_flips.add(adaptive.branch_id)
            self.pool.add_front(Seed(adaptive.action_name, adaptive.values,
                                     "adaptive"))
            self.report.adaptive_seeds += 1
        for query in queries:
            flipped_id = (query.branch.site.func_index,
                          query.branch.site.pc,
                          not bool(query.branch.taken))
            self._explored_flips.add(flipped_id)


def _corrupt_trace(events: list[HookEvent],
                   sites) -> list[HookEvent]:
    """Deterministically corrupt a decoded trace (fault injection).

    Acted on when a ``Fault(stage="trace", kind="corrupt")`` matches:
    recorded memory-op addresses and host-call arguments are shifted,
    host-call returns are bumped and recorded branch outcomes flipped,
    producing exactly the concrete/symbolic disagreement a real
    instrumentation or replay bug would — so tests can prove the
    divergence sentinel catches it end-to-end.
    """
    from ..wasm.opcodes import is_load, is_store
    corrupted: list[HookEvent] = []
    for event in events:
        operands = event.operands
        if event.kind == "post" and operands \
                and isinstance(operands[0], int):
            operands = (operands[0] + 1, *operands[1:])
        elif event.kind == "instr" and operands:
            op = sites[event.site_id].instr.op
            if op in ("br_if", "if") and isinstance(operands[-1], int):
                operands = (*operands[:-1], 1 - int(bool(operands[-1])))
            elif (is_load(op) or is_store(op)) \
                    and isinstance(operands[0], int):
                operands = (operands[0] + 4096, *operands[1:])
            elif op in ("call", "call_indirect") \
                    and isinstance(operands[0], int):
                operands = (operands[0] + 1, *operands[1:])
        if operands is event.operands:
            corrupted.append(event)
        else:
            corrupted.append(HookEvent(event.kind, event.site_id,
                                       event.func_id, operands))
    return corrupted

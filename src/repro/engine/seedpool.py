"""The seed pool: per-action circular queues (§3.3.2).

"The seed pool is a mapping, where each key is an action name and each
item is a circular queue saving the seed candidates.  Engine pops the
head of the seed candidates of φ and then pushes it back to the queue
tail."
"""

from __future__ import annotations

from collections import deque

from .seeds import Seed

__all__ = ["SeedPool"]


class SeedPool:
    def __init__(self, max_per_action: int = 256):
        self._queues: dict[str, deque[Seed]] = {}
        self.max_per_action = max_per_action

    def add(self, seed: Seed) -> None:
        queue = self._queues.setdefault(seed.action_name,
                                        deque(maxlen=self.max_per_action))
        queue.append(seed)

    def add_front(self, seed: Seed) -> None:
        """Adaptive seeds jump the queue: they are tried next."""
        queue = self._queues.setdefault(seed.action_name,
                                        deque(maxlen=self.max_per_action))
        queue.appendleft(seed)

    def next(self, action_name: str) -> Seed | None:
        """Pop the head and push it back to the tail (circular)."""
        queue = self._queues.get(action_name)
        if not queue:
            return None
        seed = queue.popleft()
        queue.append(seed)
        return seed

    def size(self, action_name: str | None = None) -> int:
        if action_name is not None:
            return len(self._queues.get(action_name, ()))
        return sum(len(q) for q in self._queues.values())

    def action_names(self) -> list[str]:
        return sorted(self._queues)

"""Seeds Γ⟨φ, ρ⟩ and random seed generation (§3.1, Algorithm 1 L2).

A seed names an action function and carries concrete parameter values.
Random seeds are biased toward *plausible* values (known account names,
EOS-denominated assets, short memos) the way the paper's oracles build
payload templates; adaptive seeds later replace individual parameters
with solver models.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..eosio.abi import AbiAction
from ..eosio.asset import Asset, EOS_SYMBOL, Symbol
from ..eosio.name import Name

__all__ = ["Seed", "random_seed", "random_value"]

_MEMO_WORDS = ("", "hi", "play", "action:buy", "bet", "reveal", "x")


@dataclass
class Seed:
    """One fuzzing input: the action function name and its parameters."""

    action_name: str
    values: list = field(default_factory=list)
    origin: str = "random"   # "random" | "adaptive" | "oracle"

    def pack(self, action: AbiAction) -> bytes:
        return action.pack(self.values)

    def __repr__(self) -> str:
        return f"Seed({self.action_name}, {self.values}, {self.origin})"


def random_value(abi_type: str, rng: random.Random,
                 known_names: list[str]) -> object:
    """Draw a random value of an ABI type."""
    if abi_type == "name":
        if known_names and rng.random() < 0.7:
            return Name(rng.choice(known_names))
        return Name(rng.getrandbits(64))
    if abi_type == "asset":
        amount = rng.choice((0, 1, 10_000, 50_000,
                             rng.randrange(0, 10_000_000),
                             rng.randrange(0, 1 << 30),
                             rng.randrange(0, 1 << 62)))
        return Asset(amount, EOS_SYMBOL)
    if abi_type == "symbol":
        return EOS_SYMBOL if rng.random() < 0.8 else Symbol(0, "FAKE")
    if abi_type == "string":
        if rng.random() < 0.6:
            return rng.choice(_MEMO_WORDS)
        length = rng.randrange(1, 12)
        return "".join(chr(rng.randrange(0x21, 0x7F)) for _ in range(length))
    if abi_type == "bytes":
        return bytes(rng.randrange(256) for _ in range(rng.randrange(0, 8)))
    if abi_type == "bool":
        return bool(rng.getrandbits(1))
    if abi_type.startswith("uint") or abi_type.startswith("int"):
        bits = int(abi_type.lstrip("uint").lstrip("int") or 64)
        value = rng.getrandbits(min(bits, 64))
        if abi_type.startswith("int") and rng.random() < 0.3:
            value = -value
        return value
    if abi_type in ("float32", "float64"):
        return rng.random() * 1000.0
    raise ValueError(f"cannot generate random {abi_type!r}")


def random_seed(action: AbiAction, rng: random.Random,
                known_names: list[str]) -> Seed:
    values = [random_value(p.type, rng, known_names)
              for p in action.params]
    return Seed(action.name, values, "random")

"""repro.eosio — the EOSIO blockchain substrate.

A deterministic local chain (accounts, transactions, notifications,
inline/deferred actions, key-value database) plus the EOSVM library
APIs, the name/asset/ABI codecs and the ``eosio.token`` system
contract.  Together these replace the Nodeos + EOSVM deployment the
paper instruments.
"""

from .abi import Abi, AbiAction, AbiParam, TRANSFER_SIGNATURE
from .asset import Asset, EOS_SYMBOL, Symbol
from .chain import (Action, ActionRecord, ApplyContext, Chain, Contract,
                    NativeContract, TransactionResult, WasmContract)
from .database import Database, DbOperation
from .errors import (AssertionFailure, ChainError, MissingAuthorization,
                     TransactionFailed, UnknownAccount)
from .host import HOST_API_SIGNATURES, HostCall
from .name import N, Name, name_to_string, string_to_name
from .serialize import Decoder, Encoder, pack_values, unpack_values
from .token import TokenContract, deploy_token, issue_to, token_balance

__all__ = [
    "Abi", "AbiAction", "AbiParam", "TRANSFER_SIGNATURE", "Asset",
    "EOS_SYMBOL", "Symbol", "Action", "ActionRecord", "ApplyContext",
    "Chain", "Contract", "NativeContract", "TransactionResult",
    "WasmContract", "Database", "DbOperation", "AssertionFailure",
    "ChainError", "MissingAuthorization", "TransactionFailed",
    "UnknownAccount", "HOST_API_SIGNATURES", "HostCall", "N", "Name",
    "name_to_string", "string_to_name", "Decoder", "Encoder",
    "pack_values", "unpack_values", "TokenContract", "deploy_token",
    "issue_to", "token_balance",
]

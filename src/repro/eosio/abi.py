"""ABI model: the action-signature metadata shipped beside a contract.

WASAI consumes a contract's ABI to know which action functions exist
and how to serialise seed parameters Γ⟨φ, ρ⟩ into the byte stream the
dispatcher deserialises (§3.1).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .name import Name
from .serialize import SERIALIZABLE_TYPES, pack_values, unpack_values

__all__ = ["AbiParam", "AbiAction", "Abi", "TRANSFER_SIGNATURE"]

# The canonical eosponser header: void transfer(name, name, asset, string).
TRANSFER_SIGNATURE = (("from", "name"), ("to", "name"),
                      ("quantity", "asset"), ("memo", "string"))


@dataclass(frozen=True)
class AbiParam:
    name: str
    type: str

    def __post_init__(self):
        if self.type not in SERIALIZABLE_TYPES:
            raise ValueError(f"unsupported ABI param type {self.type!r}")


@dataclass(frozen=True)
class AbiAction:
    """One action function's signature."""

    name: str
    params: tuple[AbiParam, ...] = ()

    @property
    def param_types(self) -> list[str]:
        return [p.type for p in self.params]

    def pack(self, values: list) -> bytes:
        return pack_values(self.param_types, values)

    def unpack(self, data: bytes) -> list:
        return unpack_values(self.param_types, data)


@dataclass
class Abi:
    """A contract ABI: the set of declared actions."""

    actions: dict[str, AbiAction] = field(default_factory=dict)

    @staticmethod
    def from_signatures(signatures: dict[str, tuple]) -> "Abi":
        """Build from ``{"transfer": (("from", "name"), ...), ...}``."""
        abi = Abi()
        for action_name, params in signatures.items():
            abi.actions[action_name] = AbiAction(
                action_name, tuple(AbiParam(n, t) for n, t in params))
        return abi

    def action(self, name: str) -> AbiAction:
        try:
            return self.actions[name]
        except KeyError:
            raise KeyError(f"action {name!r} not declared in ABI") from None

    def action_names(self) -> list[str]:
        return sorted(self.actions)

    def has_action(self, name: str) -> bool:
        return name in self.actions

    # -- JSON round-trip (mirrors the on-chain ABI format, simplified) ----
    def to_json(self) -> str:
        doc = {
            "version": "eosio::abi/1.1",
            "actions": [
                {"name": a.name,
                 "fields": [{"name": p.name, "type": p.type}
                            for p in a.params]}
                for a in self.actions.values()
            ],
        }
        return json.dumps(doc, indent=2, sort_keys=True)

    @staticmethod
    def from_json(text: str) -> "Abi":
        doc = json.loads(text)
        abi = Abi()
        for entry in doc.get("actions", ()):
            params = tuple(AbiParam(f["name"], f["type"])
                           for f in entry.get("fields", ()))
            abi.actions[entry["name"]] = AbiAction(entry["name"], params)
        return abi

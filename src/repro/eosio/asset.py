"""EOSIO asset and symbol types.

An ``asset`` is the 128-bit struct the paper's Table 2 describes: a
signed 64-bit ``amount`` followed by a 64-bit ``symbol``.  The symbol
packs the display precision in its low byte and up to seven ASCII
characters of symbol code above it, so ``"1.0000 EOS"`` has amount
10000 and symbol ``0x...534F4504``.
"""

from __future__ import annotations

__all__ = ["Symbol", "Asset", "EOS_SYMBOL"]

_MAX_AMOUNT = (1 << 62) - 1


class Symbol:
    """A token symbol: precision plus code (e.g. ``4,EOS``)."""

    __slots__ = ("precision", "code")

    def __init__(self, precision: int, code: str):
        if not 0 <= precision <= 18:
            raise ValueError("precision must be in [0, 18]")
        if not 1 <= len(code) <= 7 or not code.isalpha() or not code.isupper():
            raise ValueError(f"invalid symbol code {code!r}")
        self.precision = precision
        self.code = code

    @property
    def raw(self) -> int:
        """The u64 encoding (precision low byte, code above)."""
        value = self.precision
        for i, char in enumerate(self.code):
            value |= ord(char) << (8 * (i + 1))
        return value

    @staticmethod
    def from_raw(raw: int) -> "Symbol":
        precision = raw & 0xFF
        code_chars = []
        raw >>= 8
        while raw:
            code_chars.append(chr(raw & 0xFF))
            raw >>= 8
        return Symbol(precision, "".join(code_chars))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Symbol) and other.raw == self.raw

    def __hash__(self) -> int:
        return hash(self.raw)

    def __repr__(self) -> str:
        return f"Symbol({self.precision},{self.code})"


EOS_SYMBOL = Symbol(4, "EOS")


class Asset:
    """A token quantity: integer amount at the symbol's precision."""

    __slots__ = ("amount", "symbol")

    def __init__(self, amount: int, symbol: Symbol = EOS_SYMBOL):
        if abs(amount) > _MAX_AMOUNT:
            raise ValueError("asset amount magnitude too large")
        self.amount = int(amount)
        self.symbol = symbol

    @staticmethod
    def from_string(text: str) -> "Asset":
        """Parse ``"10.0000 EOS"`` style quantities."""
        number, _, code = text.strip().partition(" ")
        if not code:
            raise ValueError(f"asset string {text!r} missing symbol code")
        whole, _, frac = number.partition(".")
        precision = len(frac)
        sign = -1 if whole.startswith("-") else 1
        digits = (whole.lstrip("-") or "0") + (frac or "")
        return Asset(sign * int(digits), Symbol(precision, code))

    def __str__(self) -> str:
        precision = self.symbol.precision
        sign = "-" if self.amount < 0 else ""
        magnitude = abs(self.amount)
        if precision:
            whole = magnitude // 10**precision
            frac = magnitude % 10**precision
            return f"{sign}{whole}.{frac:0{precision}d} {self.symbol.code}"
        return f"{sign}{magnitude} {self.symbol.code}"

    def __repr__(self) -> str:
        return f"Asset({str(self)!r})"

    def _check(self, other: "Asset") -> None:
        if other.symbol != self.symbol:
            raise ValueError("asset symbol mismatch")

    def __add__(self, other: "Asset") -> "Asset":
        self._check(other)
        return Asset(self.amount + other.amount, self.symbol)

    def __sub__(self, other: "Asset") -> "Asset":
        self._check(other)
        return Asset(self.amount - other.amount, self.symbol)

    def __neg__(self) -> "Asset":
        return Asset(-self.amount, self.symbol)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Asset) and other.amount == self.amount
                and other.symbol == self.symbol)

    def __lt__(self, other: "Asset") -> bool:
        self._check(other)
        return self.amount < other.amount

    def __le__(self, other: "Asset") -> bool:
        self._check(other)
        return self.amount <= other.amount

    def __hash__(self) -> int:
        return hash((self.amount, self.symbol.raw))

    @property
    def is_positive(self) -> bool:
        return self.amount > 0

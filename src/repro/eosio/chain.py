"""A deterministic local EOSIO blockchain.

This module replaces the Nodeos testnet the paper runs WASAI against.
It executes transactions made of actions against deployed contracts
(Wasm modules through :mod:`repro.wasm.interpreter`, or native Python
contracts such as ``eosio.token``), with the EOSIO semantics the five
vulnerability classes depend on:

* **notifications** — ``require_recipient`` forwards the *original*
  ``code`` to notified contracts (the Fake Notif surface, §2.3.2),
* **inline actions** — packed into the same transaction and reverted
  together with it (the Rollback surface, §2.3.5),
* **deferred actions** — run as separate transactions that the sender
  cannot revert (the paper's suggested Rollback patch),
* **database rollback** — a failed transaction restores the pre-state.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from ..wasm.interpreter import (ExecutionLimits, HostFunc, Instance,
                                InstanceTemplate, Trap, TrapResourceLimit)
from ..wasm.module import Module
from .abi import Abi
from .database import Database, DbOperation
from .errors import (AssertionFailure, ChainError, MissingAuthorization,
                     TransactionFailed, UnknownAccount)
from .host import ContextCell, HostCall, build_host_imports
from .name import Name, name_to_string
from .serialize import Encoder

__all__ = ["Action", "ActionRecord", "TransactionResult", "Chain",
           "Contract", "NativeContract", "WasmContract", "ApplyContext"]

MAX_INLINE_DEPTH = 10


@dataclass
class Action:
    """One action of a transaction."""

    account: int          # the contract that owns the action
    name: int             # action name (u64)
    authorization: list[int] = field(default_factory=list)
    data: bytes = b""

    def __post_init__(self):
        self.account = int(Name(self.account))
        self.name = int(Name(self.name))
        self.authorization = [int(Name(a)) for a in self.authorization]

    def pack(self) -> bytes:
        """The packed-action wire format consumed by ``send_inline``."""
        encoder = Encoder()
        encoder.uint(self.account, 8)
        encoder.uint(self.name, 8)
        encoder.varuint32(len(self.authorization))
        for actor in self.authorization:
            encoder.uint(actor, 8)
            encoder.uint(int(Name("active")), 8)
        encoder.varuint32(len(self.data))
        encoder.raw(self.data)
        return encoder.bytes()

    def __repr__(self) -> str:
        return (f"Action({name_to_string(self.name)}@"
                f"{name_to_string(self.account)})")


@dataclass
class ActionRecord:
    """The observable outcome of executing one apply() call."""

    receiver: int
    code: int
    action_name: int
    data: bytes
    is_notification: bool
    host_calls: list[HostCall] = field(default_factory=list)
    wasm_trace: list[tuple] = field(default_factory=list)
    console: list[str] = field(default_factory=list)
    db_ops: list[DbOperation] = field(default_factory=list)
    # Set when this apply() aborted (assert/trap); the transaction was
    # reverted but the trace up to the abort is preserved — WASAI's
    # feedback depends on replaying failed executions too.
    error: str | None = None

    def called_apis(self) -> set[str]:
        return {call.api for call in self.host_calls}

    def __repr__(self) -> str:
        return (f"ActionRecord({name_to_string(self.action_name)}@"
                f"{name_to_string(self.code)} -> "
                f"{name_to_string(self.receiver)})")


@dataclass
class TransactionResult:
    success: bool
    error: str | None
    records: list[ActionRecord] = field(default_factory=list)
    deferred: list["TransactionResult"] = field(default_factory=list)

    def all_records(self) -> list[ActionRecord]:
        out = list(self.records)
        for deferred in self.deferred:
            out.extend(deferred.all_records())
        return out


class ApplyContext:
    """Execution context of one apply() call (one receiver)."""

    def __init__(self, chain: "Chain", receiver: int, code: int,
                 action: Action, is_notification: bool):
        self.chain = chain
        self.receiver = receiver
        self.code = code
        self.action = action
        self.action_name = action.name
        self.data = action.data
        self.authorization = list(action.authorization)
        self.is_notification = is_notification
        self.console: list[str] = []
        self.host_calls: list[HostCall] = []
        self.wasm_trace: list[tuple] = []
        self.wasm_trace_bytes = 0
        self.new_recipients: list[int] = []
        self.inline_actions: list[Action] = []
        self.deferred_actions: list[Action] = []

    def has_authorization(self, account: int) -> bool:
        return account in self.authorization

    def add_recipient(self, account: int) -> None:
        self.new_recipients.append(account)

    def add_inline_action(self, action: Action) -> None:
        # An inline action must be authorised by the sending contract
        # itself or by an authority the parent action carried.
        for actor in action.authorization:
            if actor != self.receiver and not self.has_authorization(actor):
                raise MissingAuthorization(actor)
        self.inline_actions.append(action)

    def add_deferred_action(self, action: Action) -> None:
        for actor in action.authorization:
            if actor != self.receiver and not self.has_authorization(actor):
                raise MissingAuthorization(actor)
        self.deferred_actions.append(action)


class Contract:
    """Base class of deployable contracts."""

    def apply(self, chain: "Chain", ctx: ApplyContext) -> None:
        raise NotImplementedError

    @property
    def abi(self) -> Abi:
        return Abi()


class NativeContract(Contract):
    """A contract implemented in Python (system/agent contracts)."""


class WasmContract(Contract):
    """A contract deployed as a Wasm module.

    ``site_table`` is present for instrumented binaries; its hook
    imports (module namespace ``wasabi``) are bound to the apply
    context's trace buffer.
    """

    def __init__(self, module: Module, abi: Abi | None = None,
                 site_table=None):
        self.module = module
        self._abi = abi or Abi()
        self.site_table = site_table
        # Per-chain execution state, built lazily on the first apply:
        # the host-import dict (bound through a ContextCell so it is
        # constructed once, not per action) and the instance template
        # that rewinds one cached Instance instead of re-instantiating.
        self._bound_chain: "Chain | None" = None
        self._cell: ContextCell | None = None
        self._imports: dict | None = None
        self._limits: ExecutionLimits | None = None
        self._template: InstanceTemplate | None = None

    @property
    def abi(self) -> Abi:
        return self._abi

    def apply(self, chain: "Chain", ctx: ApplyContext) -> None:
        if self._bound_chain is not chain:
            self._bind(chain)
        self._cell.ctx = ctx
        if self.module.start is None:
            # Applies never overlap (inline actions and notifications
            # run after the triggering apply returns), so the contract
            # can rewind one cached instance per action.
            if self._template is None:
                self._template = InstanceTemplate(
                    self.module, self._imports, self._limits)
            instance = self._template.fresh()
        else:
            # A start function must observe fresh per-instantiation
            # state, so these modules are re-instantiated each apply.
            instance = Instance(self.module, self._imports,
                                limits=self._limits)
        instance.invoke("apply", [ctx.receiver, ctx.code, ctx.action_name])

    def _bind(self, chain: "Chain") -> None:
        cell = ContextCell()
        imports = build_host_imports(chain, cell)
        for imp in self.module.imports:
            if imp.kind == "func" and imp.module == "wasabi":
                imports[(imp.module, imp.name)] = self._hook(
                    chain, cell, imp.name, self.module.types[imp.desc])
        self._cell = cell
        self._imports = imports
        self._limits = ExecutionLimits(**chain.execution_limits)
        self._template = None
        self._bound_chain = chain

    @staticmethod
    def _hook(chain: "Chain", ctx, hook_name: str, func_type):
        # The trace buffer is host memory an instrumented contract can
        # write into at one entry per executed hook, so it is metered:
        # a hostile contract spinning in a hooked loop traps instead of
        # filling RAM with trace entries.  The budgets and the event
        # size are resolved once at bind time; per event only the two
        # threshold compares and the append into the per-action buffer
        # remain (the buffer lands on the ActionRecord wholesale, so
        # there is no flush copy either).
        cell = ctx if isinstance(ctx, ContextCell) else ContextCell(ctx)
        limits = ExecutionLimits(**chain.execution_limits)
        max_events = limits.max_trace_events
        max_bytes = limits.max_trace_bytes
        event_bytes = 16 + 8 * len(func_type.params)

        def impl(instance, args):
            ctx = cell.ctx
            trace = ctx.wasm_trace
            if max_events is not None and len(trace) >= max_events:
                raise TrapResourceLimit(
                    f"trace exceeds {max_events} events")
            ctx.wasm_trace_bytes += event_bytes
            if max_bytes is not None \
                    and ctx.wasm_trace_bytes > max_bytes:
                raise TrapResourceLimit(
                    f"trace exceeds {max_bytes} bytes")
            trace.append((hook_name, tuple(args)))
            return []
        return HostFunc(func_type, impl)


class Chain:
    """The local blockchain: accounts, database, transaction engine."""

    def __init__(self, tapos_block_num: int = 1234,
                 tapos_block_prefix: int = 0x5EED_BEEF,
                 current_time: int = 1_600_000_000_000_000,
                 fuel: int = 5_000_000, call_depth: int = 250,
                 limits: "ExecutionLimits | None" = None):
        self.db = Database()
        self.accounts: dict[int, Contract | None] = {}
        self.tapos_block_num = tapos_block_num
        self.tapos_block_prefix = tapos_block_prefix
        self.current_time = current_time
        if limits is not None:
            self.execution_limits = dict(asdict(limits))
        else:
            self.execution_limits = {"fuel": fuel, "call_depth": call_depth}
        self.transaction_log: list[TransactionResult] = []

    # -- account management ----------------------------------------------
    def create_account(self, name: "int | str") -> int:
        account = int(Name(name))
        self.accounts.setdefault(account, None)
        return account

    def set_contract(self, name: "int | str", contract: Contract) -> int:
        account = self.create_account(name)
        self.accounts[account] = contract
        return account

    def get_contract(self, name: "int | str") -> Contract | None:
        return self.accounts.get(int(Name(name)))

    def is_account(self, name: "int | str") -> bool:
        return int(Name(name)) in self.accounts

    # -- transaction engine -------------------------------------------------
    def push_action(self, account, action_name, authorization, data: bytes,
                    ) -> TransactionResult:
        """Convenience: a single-action transaction."""
        return self.push_transaction(
            [Action(account, action_name, list(authorization), data)])

    def push_transaction(self, actions: list[Action]) -> TransactionResult:
        """Execute a transaction; on any failure the database state is
        rolled back and the result carries the error.  Deferred actions
        scheduled by the transaction run afterwards, each as its own
        transaction (EOSIO semantics: the sender cannot revert them)."""
        snapshot = self.db.snapshot()
        records: list[ActionRecord] = []
        deferred: list[Action] = []
        result: TransactionResult
        try:
            for action in actions:
                self._run_action(action, records, deferred, depth=0)
            result = TransactionResult(True, None, records)
        except (ChainError, Trap) as exc:
            self.db.restore(snapshot)
            result = TransactionResult(
                False, f"{type(exc).__name__}: {exc}", records)
        if result.success:
            for deferred_action in deferred:
                result.deferred.append(
                    self.push_transaction([deferred_action]))
        self.transaction_log.append(result)
        return result

    def _run_action(self, action: Action, records: list[ActionRecord],
                    deferred: list[Action], depth: int) -> None:
        if depth > MAX_INLINE_DEPTH:
            raise ChainError("inline action depth exceeded")
        if action.account not in self.accounts:
            raise UnknownAccount(
                f"unknown account {name_to_string(action.account)}")
        inline: list[Action] = []
        notified: set[int] = set()
        queue: list[tuple[int, bool]] = [(action.account, False)]
        while queue:
            receiver, is_notification = queue.pop(0)
            notified.add(receiver)
            contract = self.accounts.get(receiver)
            if contract is None:
                continue
            ctx = ApplyContext(self, receiver, action.account, action,
                               is_notification)
            self.db.drain_journal()
            error: Exception | None = None
            try:
                contract.apply(self, ctx)
            except (ChainError, Trap) as exc:
                error = exc
            record = ActionRecord(
                receiver=receiver, code=action.account,
                action_name=action.name, data=action.data,
                is_notification=is_notification,
                host_calls=ctx.host_calls, wasm_trace=ctx.wasm_trace,
                console=ctx.console, db_ops=self.db.drain_journal(),
                error=f"{type(error).__name__}: {error}" if error else None)
            records.append(record)
            if error is not None:
                raise error
            for recipient in ctx.new_recipients:
                if recipient not in notified:
                    queue.append((recipient, True))
            inline.extend(ctx.inline_actions)
            deferred.extend(ctx.deferred_actions)
        for inline_action in inline:
            self._run_action(inline_action, records, deferred, depth + 1)

"""The per-contract key-value database (EOSIO multi-index substrate).

Rows live under ``(code, scope, table)`` keyed by a u64 primary key,
exactly the shape the ``db_*_i64`` intrinsics expose.  Every access is
journalled so the Engine can build its database dependency graph
(DBG, §3.3.2) and the chain can roll a failed transaction back.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Database", "DbOperation", "TableKey"]

TableKey = tuple[int, int, int]  # (code, scope, table)


@dataclass(frozen=True)
class DbOperation:
    """One journalled database access: the ⟨op, tb⟩ pairs of §3.3.2.

    Writes additionally carry the primary key and the before/after
    row images — the semantic oracle families
    (:mod:`repro.semoracle`) reason about *values*, not just which
    tables were touched.  Reads leave all three at None.
    """

    kind: str  # "read" or "write"
    code: int
    scope: int
    table: int
    pkey: int | None = None
    before: bytes | None = None   # row image prior to the write
    after: bytes | None = None    # row image after the write

    @property
    def table_key(self) -> TableKey:
        return (self.code, self.scope, self.table)


@dataclass
class _Row:
    key: int
    payer: int
    data: bytes


class Database:
    """All tables of a local chain, with snapshot/rollback support."""

    def __init__(self) -> None:
        self._tables: dict[TableKey, dict[int, _Row]] = {}
        self.journal: list[DbOperation] = []
        self._iterators: list[tuple[TableKey, int] | None] = []

    # -- iterator handles (EOSIO returns integer iterators) ----------------
    def _new_iterator(self, table_key: TableKey, key: int) -> int:
        self._iterators.append((table_key, key))
        return len(self._iterators) - 1

    def _resolve(self, iterator: int) -> tuple[TableKey, int]:
        if not 0 <= iterator < len(self._iterators):
            raise KeyError(f"bad database iterator {iterator}")
        entry = self._iterators[iterator]
        if entry is None:
            raise KeyError(f"database iterator {iterator} was erased")
        return entry

    # -- intrinsic-level API --------------------------------------------------
    def store(self, code: int, scope: int, table: int, payer: int,
              key: int, data: bytes) -> int:
        table_key = (code, scope, table)
        rows = self._tables.setdefault(table_key, {})
        if key in rows:
            raise ValueError(f"duplicate primary key {key}")
        rows[key] = _Row(key, payer, bytes(data))
        self.journal.append(DbOperation("write", *table_key, pkey=key,
                                        before=None, after=bytes(data)))
        return self._new_iterator(table_key, key)

    def find(self, code: int, scope: int, table: int, key: int) -> int:
        """Returns an iterator, or -1 when the key is absent."""
        table_key = (code, scope, table)
        self.journal.append(DbOperation("read", *table_key))
        rows = self._tables.get(table_key)
        if rows is None or key not in rows:
            return -1
        return self._new_iterator(table_key, key)

    def get(self, iterator: int) -> bytes:
        table_key, key = self._resolve(iterator)
        self.journal.append(DbOperation("read", *table_key))
        return self._tables[table_key][key].data

    def update(self, iterator: int, payer: int, data: bytes) -> None:
        table_key, key = self._resolve(iterator)
        row = self._tables[table_key][key]
        before = row.data
        row.data = bytes(data)
        if payer:
            row.payer = payer
        self.journal.append(DbOperation("write", *table_key, pkey=key,
                                        before=before,
                                        after=bytes(data)))

    def remove(self, iterator: int) -> None:
        table_key, key = self._resolve(iterator)
        before = self._tables[table_key][key].data
        del self._tables[table_key][key]
        self._iterators[iterator] = None
        self.journal.append(DbOperation("write", *table_key, pkey=key,
                                        before=before, after=None))

    def next(self, iterator: int) -> tuple[int, int]:
        """(next iterator, next key); (-1, 0) at the end of the table."""
        table_key, key = self._resolve(iterator)
        self.journal.append(DbOperation("read", *table_key))
        keys = sorted(self._tables[table_key])
        position = keys.index(key)
        if position + 1 >= len(keys):
            return -1, 0
        next_key = keys[position + 1]
        return self._new_iterator(table_key, next_key), next_key

    def lowerbound(self, code: int, scope: int, table: int,
                   key: int) -> tuple[int, int]:
        """First row with primary key >= ``key``; (-1, 0) if none."""
        table_key = (code, scope, table)
        self.journal.append(DbOperation("read", *table_key))
        rows = self._tables.get(table_key, {})
        candidates = sorted(k for k in rows if k >= key)
        if not candidates:
            return -1, 0
        return self._new_iterator(table_key, candidates[0]), candidates[0]

    # -- direct helpers (used by native contracts and tests) -------------------
    def get_row(self, code: int, scope: int, table: int,
                key: int) -> bytes | None:
        table_key = (code, scope, table)
        self.journal.append(DbOperation("read", *table_key))
        rows = self._tables.get(table_key)
        if rows is None or key not in rows:
            return None
        return rows[key].data

    def set_row(self, code: int, scope: int, table: int, payer: int,
                key: int, data: bytes) -> None:
        table_key = (code, scope, table)
        rows = self._tables.setdefault(table_key, {})
        previous = rows.get(key)
        rows[key] = _Row(key, payer, bytes(data))
        self.journal.append(DbOperation(
            "write", *table_key, pkey=key,
            before=None if previous is None else previous.data,
            after=bytes(data)))

    def erase_row(self, code: int, scope: int, table: int, key: int) -> None:
        table_key = (code, scope, table)
        rows = self._tables.get(table_key, {})
        previous = rows.pop(key, None)
        self.journal.append(DbOperation(
            "write", *table_key, pkey=key,
            before=None if previous is None else previous.data,
            after=None))

    def table_rows(self, code: int, scope: int, table: int) -> dict[int, bytes]:
        rows = self._tables.get((code, scope, table), {})
        return {k: row.data for k, row in rows.items()}

    def export_state(self) -> dict[TableKey, dict[int, bytes]]:
        """A plain-bytes snapshot of every table, for invariant checks.

        Unlike :meth:`snapshot` this drops payer/iterator bookkeeping:
        it is the read surface of the ``data_consistency`` oracle
        family, not a restore point.
        """
        return {
            table_key: {k: row.data for k, row in rows.items()}
            for table_key, rows in self._tables.items()
        }

    # -- snapshot / rollback --------------------------------------------------
    def snapshot(self) -> dict:
        return {
            table_key: {k: _Row(r.key, r.payer, r.data)
                        for k, r in rows.items()}
            for table_key, rows in self._tables.items()
        }

    def restore(self, snapshot: dict) -> None:
        self._tables = {
            table_key: {k: _Row(r.key, r.payer, r.data)
                        for k, r in rows.items()}
            for table_key, rows in snapshot.items()
        }

    # -- journal management -----------------------------------------------------
    def drain_journal(self) -> list[DbOperation]:
        ops, self.journal = self.journal, []
        return ops

"""Chain-level error types."""

from __future__ import annotations

__all__ = ["ChainError", "AssertionFailure", "MissingAuthorization",
           "UnknownAccount", "TransactionFailed"]


class ChainError(Exception):
    """Base class for chain execution errors."""


class AssertionFailure(ChainError):
    """``eosio_assert`` fired; the transaction must revert."""

    def __init__(self, message: str):
        super().__init__(message)
        self.message = message


class MissingAuthorization(ChainError):
    """``require_auth`` failed for the given account name."""

    def __init__(self, account: int):
        super().__init__(f"missing authority of account {account}")
        self.account = account


class UnknownAccount(ChainError):
    pass


class TransactionFailed(ChainError):
    """Wraps the underlying failure after the rollback happened."""

    def __init__(self, reason: Exception):
        super().__init__(str(reason))
        self.reason = reason

"""EOSVM library APIs (host imports) exposed to Wasm contracts.

These are the intrinsics the paper's §2.2 lists: permission APIs
(``require_auth``/``has_auth``/``require_auth2``), blockchain-state
APIs (``tapos_block_num``/``tapos_block_prefix``), ``eosio_assert``,
the ``db_*`` family, action I/O, inline/deferred action submission, and
the trace-printing extensions WASAI adds to Nodeos (``logi``/``logsf``/
``logdf``, §3.3.1 — here generalised to one import per operand
signature under the ``wasabi`` module namespace).

Every invocation is journalled into the apply context's ``host_calls``
list; the Scanner's detectors (§3.5) and the DBG builder read it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..wasm.interpreter import HostFunc, Instance, Trap
from ..wasm.types import F32, F64, FuncType, I32, I64
from .errors import AssertionFailure, MissingAuthorization
from .serialize import Decoder

__all__ = ["ContextCell", "HostCall", "build_host_imports",
           "HOST_API_SIGNATURES"]

MASK32 = 0xFFFFFFFF
MASK64 = 0xFFFFFFFFFFFFFFFF


@dataclass(frozen=True)
class HostCall:
    """One library-API invocation observed during an action."""

    api: str
    args: tuple
    result: object = None


# Wasm-level signatures of the library APIs (params, results).
HOST_API_SIGNATURES: dict[str, tuple[tuple, tuple]] = {
    "require_auth": ((I64,), ()),
    "require_auth2": ((I64, I64), ()),
    "has_auth": ((I64,), (I32,)),
    "require_recipient": ((I64,), ()),
    "is_account": ((I64,), (I32,)),
    "current_receiver": ((), (I64,)),
    "eosio_assert": ((I32, I32), ()),
    "abort": ((), ()),
    "read_action_data": ((I32, I32), (I32,)),
    "action_data_size": ((), (I32,)),
    "send_inline": ((I32, I32), ()),
    "send_deferred": ((I32, I64, I32, I32), ()),
    "tapos_block_num": ((), (I32,)),
    "tapos_block_prefix": ((), (I32,)),
    "current_time": ((), (I64,)),
    "db_store_i64": ((I64, I64, I64, I64, I32, I32), (I32,)),
    "db_find_i64": ((I64, I64, I64, I64), (I32,)),
    "db_get_i64": ((I32, I32, I32), (I32,)),
    "db_update_i64": ((I32, I64, I32, I32), ()),
    "db_remove_i64": ((I32,), ()),
    "db_next_i64": ((I32, I32), (I32,)),
    "db_lowerbound_i64": ((I64, I64, I64, I64), (I32,)),
    "prints": ((I32,), ()),
    "printi": ((I64,), ()),
    "printn": ((I64,), ()),
    "memcpy": ((I32, I32, I32), (I32,)),
    "memmove": ((I32, I32, I32), (I32,)),
    "memset": ((I32, I32, I32), (I32,)),
}


class ContextCell:
    """Mutable slot holding the apply context of the action in flight.

    Building the ~30 host-import closures costs more than a typical
    apply() executes, so the chain binds the imports once per contract
    against a cell and repoints ``cell.ctx`` at the start of each
    apply.  Applies never nest (inline actions and notifications run
    after the triggering apply returns), so one slot per contract is
    enough.  Passing a plain :class:`ApplyContext` where a cell is
    expected still works — it is wrapped in a single-use cell.
    """

    __slots__ = ("ctx",)

    def __init__(self, ctx=None):
        self.ctx = ctx


def build_host_imports(chain, ctx) -> dict[tuple[str, str], HostFunc]:
    """Bind the library APIs to a chain and an apply context.

    ``ctx`` may be an apply context (bound for one action) or a
    :class:`ContextCell` the caller repoints per action.  Returns the
    host-import dict for :class:`repro.wasm.Instance`.  Tracing hooks
    (``wasabi.*``) are added separately by the chain when the contract
    is instrumented.
    """
    cell = ctx if isinstance(ctx, ContextCell) else ContextCell(ctx)
    imports: dict[tuple[str, str], HostFunc] = {}

    def register(api: str, impl) -> None:
        params, results = HOST_API_SIGNATURES[api]

        def wrapped(instance: Instance, args: list) -> list:
            result = impl(instance, *args)
            out = [] if result is None else [result]
            cell.ctx.host_calls.append(HostCall(api, tuple(args),
                                                out[0] if out else None))
            return out

        imports[("env", api)] = HostFunc(FuncType(params, results), wrapped)

    # -- permissions ------------------------------------------------------
    def require_auth(instance, account):
        if not cell.ctx.has_authorization(account):
            raise MissingAuthorization(account)

    def require_auth2(instance, account, permission):
        if not cell.ctx.has_authorization(account):
            raise MissingAuthorization(account)

    def has_auth(instance, account):
        return 1 if cell.ctx.has_authorization(account) else 0

    register("require_auth", require_auth)
    register("require_auth2", require_auth2)
    register("has_auth", has_auth)
    register("is_account",
             lambda instance, account: 1 if chain.is_account(account) else 0)

    # -- notifications / receiver ------------------------------------------
    register("require_recipient",
             lambda instance, account: cell.ctx.add_recipient(account))
    register("current_receiver", lambda instance: cell.ctx.receiver)

    # -- assertions -----------------------------------------------------------
    def eosio_assert(instance, condition, msg_ptr):
        if not condition:
            message = instance.mem_read_cstr(msg_ptr)
            raise AssertionFailure(message)

    def do_abort(instance):
        raise AssertionFailure("abort() called")

    register("eosio_assert", eosio_assert)
    register("abort", do_abort)

    # -- action data -------------------------------------------------------------
    def read_action_data(instance, ptr, length):
        data = cell.ctx.data[:length]
        instance.mem_write(ptr, data)
        return len(data)

    register("read_action_data", read_action_data)
    register("action_data_size", lambda instance: len(cell.ctx.data))

    # -- inline / deferred actions --------------------------------------------------
    def send_inline(instance, ptr, length):
        payload = instance.mem_read(ptr, length)
        cell.ctx.add_inline_action(_decode_packed_action(payload))

    def send_deferred(instance, sender_id, payer, ptr, length):
        payload = instance.mem_read(ptr, length)
        cell.ctx.add_deferred_action(_decode_packed_action(payload))

    register("send_inline", send_inline)
    register("send_deferred", send_deferred)

    # -- blockchain state --------------------------------------------------------------
    register("tapos_block_num", lambda instance: chain.tapos_block_num & MASK32)
    register("tapos_block_prefix",
             lambda instance: chain.tapos_block_prefix & MASK32)
    register("current_time", lambda instance: chain.current_time & MASK64)

    # -- database ------------------------------------------------------------------------
    def db_store(instance, scope, table, payer, key, ptr, length):
        data = instance.mem_read(ptr, length)
        return chain.db.store(cell.ctx.receiver, scope, table, payer, key,
                              data)

    def db_find(instance, code, scope, table, key):
        return chain.db.find(code, scope, table, key) & MASK32

    def db_get(instance, iterator, ptr, length):
        data = chain.db.get(iterator)
        if length:
            instance.mem_write(ptr, data[:length])
        return len(data)

    def db_update(instance, iterator, payer, ptr, length):
        data = instance.mem_read(ptr, length)
        chain.db.update(iterator, payer, data)

    def db_next(instance, iterator, key_ptr):
        next_iter, next_key = chain.db.next(iterator)
        if next_iter >= 0 and key_ptr:
            instance.mem_write(key_ptr, next_key.to_bytes(8, "little"))
        return next_iter & MASK32

    def db_lowerbound(instance, code, scope, table, key):
        iterator, _ = chain.db.lowerbound(code, scope, table, key)
        return iterator & MASK32

    register("db_store_i64", db_store)
    register("db_find_i64", db_find)
    register("db_get_i64", db_get)
    register("db_update_i64", db_update)
    register("db_remove_i64",
             lambda instance, iterator: chain.db.remove(iterator))
    register("db_next_i64", db_next)
    register("db_lowerbound_i64", db_lowerbound)

    # -- console ------------------------------------------------------------------------------
    register("prints",
             lambda instance, ptr: cell.ctx.console.append(
                 instance.mem_read_cstr(ptr)))
    register("printi",
             lambda instance, value: cell.ctx.console.append(str(value)))
    register("printn", lambda instance, value: cell.ctx.console.append(
        _render_name(value)))

    # -- libc shims ------------------------------------------------------------------------------
    def memcpy(instance, dst, src, length):
        instance.mem_write(dst, instance.mem_read(src, length))
        return dst

    def memset(instance, dst, value, length):
        instance.mem_write(dst, bytes([value & 0xFF]) * length)
        return dst

    register("memcpy", memcpy)
    register("memmove", memcpy)
    register("memset", memset)
    return imports


def _render_name(value: int) -> str:
    from .name import name_to_string
    return name_to_string(value)


def _decode_packed_action(payload: bytes):
    """Decode the packed-action wire format used by send_inline:
    account u64, name u64, auth vector of (actor, permission) u64
    pairs, then a length-prefixed data blob."""
    from .chain import Action  # local import to avoid a cycle
    decoder = Decoder(payload)
    account = decoder.uint(8)
    name = decoder.uint(8)
    auth_count = decoder.varuint32()
    authorization = []
    for _ in range(auth_count):
        actor = decoder.uint(8)
        decoder.uint(8)  # permission name, unused by the simulator
        authorization.append(actor)
    data = decoder.raw(decoder.varuint32())
    return Action(account, name, authorization, data)

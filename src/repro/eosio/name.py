"""EOSIO account/action name codec.

EOSIO encodes names ("eosio.token", "transfer", ...) as 64-bit
integers using a base-32 alphabet packed 5 bits per character (the
13th character gets the top 4 bits).  The fuzzer, the oracles and the
Fake Notif guard detection all compare these u64 values, so the codec
must match the chain's exactly.
"""

from __future__ import annotations

__all__ = ["Name", "string_to_name", "name_to_string", "N"]

_ALPHABET = ".12345abcdefghijklmnopqrstuvwxyz"
_CHAR_TO_VALUE = {c: i for i, c in enumerate(_ALPHABET)}


def string_to_name(text: str) -> int:
    """Encode a name string to its u64 (the SDK's ``N(...)`` macro)."""
    if len(text) > 13:
        raise ValueError(f"name {text!r} longer than 13 characters")
    value = 0
    for i, char in enumerate(text):
        try:
            symbol = _CHAR_TO_VALUE[char]
        except KeyError:
            raise ValueError(f"invalid name character {char!r}") from None
        if i < 12:
            value |= (symbol & 0x1F) << (64 - 5 * (i + 1))
        else:
            if symbol > 0x0F:
                raise ValueError("13th character must be in [.1-5a-j]")
            value |= symbol & 0x0F
    return value


def name_to_string(value: int) -> str:
    """Decode a u64 back to its name string."""
    out = []
    for i in range(13):
        if i < 12:
            symbol = (value >> (64 - 5 * (i + 1))) & 0x1F
        else:
            symbol = value & 0x0F
        out.append(_ALPHABET[symbol])
    return "".join(out).rstrip(".")


def N(text: str) -> int:
    """The EOSIO SDK's name macro, as used throughout the paper."""
    return string_to_name(text)


class Name:
    """A value-class wrapper around the u64 encoding."""

    __slots__ = ("value",)

    def __init__(self, value: "int | str | Name"):
        if isinstance(value, Name):
            self.value = value.value
        elif isinstance(value, str):
            self.value = string_to_name(value)
        else:
            self.value = int(value) & 0xFFFFFFFFFFFFFFFF

    def __str__(self) -> str:
        return name_to_string(self.value)

    def __repr__(self) -> str:
        return f"Name({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Name):
            return other.value == self.value
        if isinstance(other, int):
            return other == self.value
        if isinstance(other, str):
            return string_to_name(other) == self.value
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.value)

    def __int__(self) -> int:
        return self.value

"""Byte-stream (de)serialisation of action data.

EOSIO action data travels as a packed byte stream that the contract
deserialises before calling the action function — the exact mechanism
behind the paper's challenge C3 (the deserialiser's path explosion).
This module implements the CDT wire format for the types the
benchmark contracts use: fixed-width ints, ``name``, ``asset``,
``symbol`` and length-prefixed ``string``/``bytes``.
"""

from __future__ import annotations

from .asset import Asset, Symbol
from .name import Name

__all__ = ["Encoder", "Decoder", "pack_values", "unpack_values",
           "SERIALIZABLE_TYPES"]

SERIALIZABLE_TYPES = ("name", "asset", "symbol", "string", "bytes",
                      "uint8", "uint16", "uint32", "uint64",
                      "int8", "int16", "int32", "int64", "bool",
                      "float32", "float64")


class Encoder:
    """Append-only packer producing the CDT byte stream."""

    def __init__(self) -> None:
        self._out = bytearray()

    def bytes(self) -> bytes:
        return bytes(self._out)

    def raw(self, data: bytes) -> "Encoder":
        self._out.extend(data)
        return self

    def uint(self, value: int, size: int) -> "Encoder":
        self._out.extend(int(value).to_bytes(size, "little", signed=False))
        return self

    def int(self, value: int, size: int) -> "Encoder":
        self._out.extend(int(value).to_bytes(size, "little", signed=True))
        return self

    def varuint32(self, value: int) -> "Encoder":
        if value < 0:
            raise ValueError("varuint32 must be non-negative")
        while True:
            byte = value & 0x7F
            value >>= 7
            self._out.append(byte | (0x80 if value else 0))
            if not value:
                return self

    def name(self, value: "Name | str | int") -> "Encoder":
        return self.uint(int(Name(value)), 8)

    def symbol(self, value: Symbol) -> "Encoder":
        return self.uint(value.raw, 8)

    def asset(self, value: Asset) -> "Encoder":
        self.int(value.amount, 8)
        return self.symbol(value.symbol)

    def string(self, value: "str | bytes") -> "Encoder":
        # EOSIO strings are raw byte vectors; accept bytes unchanged
        # (fuzzer seeds may carry non-UTF-8 content).
        data = value if isinstance(value, bytes) else value.encode("utf-8")
        self.varuint32(len(data))
        return self.raw(data)

    def typed(self, type_name: str, value) -> "Encoder":
        """Pack ``value`` according to an ABI type name."""
        if type_name == "name":
            return self.name(value)
        if type_name == "asset":
            if isinstance(value, str):
                value = Asset.from_string(value)
            return self.asset(value)
        if type_name == "symbol":
            return self.symbol(value)
        if type_name == "string":
            return self.string(value)
        if type_name == "bytes":
            self.varuint32(len(value))
            return self.raw(value)
        if type_name == "bool":
            return self.uint(1 if value else 0, 1)
        if type_name.startswith("uint"):
            return self.uint(value, int(type_name[4:]) // 8)
        if type_name.startswith("int"):
            return self.int(value, int(type_name[3:]) // 8)
        if type_name in ("float32", "float64"):
            import struct
            fmt = "<f" if type_name == "float32" else "<d"
            return self.raw(struct.pack(fmt, value))
        raise ValueError(f"unsupported ABI type {type_name!r}")


class Decoder:
    """Cursor-based unpacker mirroring :class:`Encoder`."""

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    def raw(self, size: int) -> bytes:
        if self._pos + size > len(self._data):
            raise ValueError("byte stream underflow")
        chunk = self._data[self._pos:self._pos + size]
        self._pos += size
        return chunk

    def uint(self, size: int) -> int:
        return int.from_bytes(self.raw(size), "little", signed=False)

    def int(self, size: int) -> int:
        return int.from_bytes(self.raw(size), "little", signed=True)

    def varuint32(self) -> int:
        value = 0
        shift = 0
        while True:
            byte = self.raw(1)[0]
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7
            if shift > 32:
                raise ValueError("varuint32 too long")

    def name(self) -> Name:
        return Name(self.uint(8))

    def symbol(self) -> Symbol:
        return Symbol.from_raw(self.uint(8))

    def asset(self) -> Asset:
        amount = self.int(8)
        return Asset(amount, self.symbol())

    def string(self) -> str:
        length = self.varuint32()
        return self.raw(length).decode("utf-8", errors="replace")

    def typed(self, type_name: str):
        if type_name == "name":
            return self.name()
        if type_name == "asset":
            return self.asset()
        if type_name == "symbol":
            return self.symbol()
        if type_name == "string":
            return self.string()
        if type_name == "bytes":
            return self.raw(self.varuint32())
        if type_name == "bool":
            return bool(self.uint(1))
        if type_name.startswith("uint"):
            return self.uint(int(type_name[4:]) // 8)
        if type_name.startswith("int"):
            return self.int(int(type_name[3:]) // 8)
        if type_name in ("float32", "float64"):
            import struct
            fmt = "<f" if type_name == "float32" else "<d"
            return struct.unpack(fmt, self.raw(8 if type_name == "float64"
                                               else 4))[0]
        raise ValueError(f"unsupported ABI type {type_name!r}")


def pack_values(types: list[str], values: list) -> bytes:
    """Pack parallel (types, values) lists into one byte stream."""
    if len(types) != len(values):
        raise ValueError("types/values length mismatch")
    encoder = Encoder()
    for type_name, value in zip(types, values):
        encoder.typed(type_name, value)
    return encoder.bytes()


def unpack_values(types: list[str], data: bytes) -> list:
    decoder = Decoder(data)
    return [decoder.typed(t) for t in types]

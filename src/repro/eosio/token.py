"""The ``eosio.token`` system contract (native implementation).

Implements ``create`` / ``issue`` / ``transfer`` with the standard
tables (``accounts`` scoped by owner, ``stat`` scoped by symbol code)
through the shared :class:`~repro.eosio.database.Database`, and fires
``require_recipient`` notifications to payer and payee — steps ② and ③
of the paper's Figure 1, which the Fake EOS / Fake Notif oracles abuse.

Deploying this same class under a different account (e.g.
``fake.token``) yields the attacker-issued counterfeit token of
§2.3.1: identical symbol, different ``code``.
"""

from __future__ import annotations

from .abi import Abi, TRANSFER_SIGNATURE
from .asset import Asset, Symbol
from .chain import ApplyContext, Chain, NativeContract
from .errors import AssertionFailure, MissingAuthorization
from .name import N
from .serialize import Decoder, Encoder

__all__ = ["TokenContract", "deploy_token", "token_balance", "issue_to"]

_ACCOUNTS_TABLE = N("accounts")
_STAT_TABLE = N("stat")

TOKEN_ABI = Abi.from_signatures({
    "create": (("issuer", "name"), ("maximum_supply", "asset")),
    "issue": (("to", "name"), ("quantity", "asset"), ("memo", "string")),
    "transfer": TRANSFER_SIGNATURE,
})


class TokenContract(NativeContract):
    """A standard eosio.token-compatible token contract."""

    @property
    def abi(self) -> Abi:
        return TOKEN_ABI

    def apply(self, chain: Chain, ctx: ApplyContext) -> None:
        # Tokens only act when they are the executing code (they ignore
        # notifications forwarded to them).
        if ctx.receiver != ctx.code:
            return
        if ctx.action_name == N("create"):
            self._create(chain, ctx)
        elif ctx.action_name == N("issue"):
            self._issue(chain, ctx)
        elif ctx.action_name == N("transfer"):
            self._transfer(chain, ctx)

    # -- actions ------------------------------------------------------------
    def _create(self, chain: Chain, ctx: ApplyContext) -> None:
        decoder = Decoder(ctx.data)
        issuer = int(decoder.name())
        maximum = decoder.asset()
        if not ctx.has_authorization(ctx.receiver):
            raise MissingAuthorization(ctx.receiver)
        key = _symbol_key(maximum.symbol)
        if chain.db.get_row(ctx.receiver, key, _STAT_TABLE, key) is not None:
            raise AssertionFailure("token with symbol already exists")
        stat = (Encoder().asset(Asset(0, maximum.symbol)).asset(maximum)
                .name(issuer).bytes())
        chain.db.set_row(ctx.receiver, key, _STAT_TABLE, ctx.receiver,
                         key, stat)

    def _issue(self, chain: Chain, ctx: ApplyContext) -> None:
        decoder = Decoder(ctx.data)
        to = int(decoder.name())
        quantity = decoder.asset()
        key = _symbol_key(quantity.symbol)
        raw = chain.db.get_row(ctx.receiver, key, _STAT_TABLE, key)
        if raw is None:
            raise AssertionFailure("token with symbol does not exist")
        stat = Decoder(raw)
        supply = stat.asset()
        maximum = stat.asset()
        issuer = int(stat.name())
        if not ctx.has_authorization(issuer):
            raise MissingAuthorization(issuer)
        if not quantity.is_positive:
            raise AssertionFailure("must issue positive quantity")
        supply = supply + quantity
        if supply.amount > maximum.amount:
            raise AssertionFailure("quantity exceeds available supply")
        updated = (Encoder().asset(supply).asset(maximum).name(issuer)
                   .bytes())
        chain.db.set_row(ctx.receiver, key, _STAT_TABLE, ctx.receiver,
                         key, updated)
        self._add_balance(chain, ctx.receiver, to, quantity)

    def _transfer(self, chain: Chain, ctx: ApplyContext) -> None:
        decoder = Decoder(ctx.data)
        from_ = int(decoder.name())
        to = int(decoder.name())
        quantity = decoder.asset()
        decoder.string()  # memo
        if from_ == to:
            raise AssertionFailure("cannot transfer to self")
        if not ctx.has_authorization(from_):
            raise MissingAuthorization(from_)
        if not chain.is_account(to):
            raise AssertionFailure("to account does not exist")
        if not quantity.is_positive:
            raise AssertionFailure("must transfer positive quantity")
        self._sub_balance(chain, ctx.receiver, from_, quantity)
        self._add_balance(chain, ctx.receiver, to, quantity)
        # Figure 1 steps 2 and 3: notify payer and payee.
        ctx.add_recipient(from_)
        ctx.add_recipient(to)

    # -- balances --------------------------------------------------------------
    def _sub_balance(self, chain: Chain, code: int, owner: int,
                     quantity: Asset) -> None:
        key = _symbol_key(quantity.symbol)
        raw = chain.db.get_row(code, owner, _ACCOUNTS_TABLE, key)
        if raw is None:
            raise AssertionFailure("no balance object found")
        balance = Decoder(raw).asset()
        if balance.amount < quantity.amount:
            raise AssertionFailure("overdrawn balance")
        updated = Encoder().asset(balance - quantity).bytes()
        chain.db.set_row(code, owner, _ACCOUNTS_TABLE, owner, key, updated)

    def _add_balance(self, chain: Chain, code: int, owner: int,
                     quantity: Asset) -> None:
        key = _symbol_key(quantity.symbol)
        raw = chain.db.get_row(code, owner, _ACCOUNTS_TABLE, key)
        balance = Decoder(raw).asset() if raw else Asset(0, quantity.symbol)
        updated = Encoder().asset(balance + quantity).bytes()
        chain.db.set_row(code, owner, _ACCOUNTS_TABLE, owner, key, updated)


def _symbol_key(symbol: Symbol) -> int:
    """Primary key of balance/stat rows: the symbol code bits."""
    return symbol.raw >> 8


# ---------------------------------------------------------------------------
# Convenience helpers used throughout the fuzzer and tests
# ---------------------------------------------------------------------------

def deploy_token(chain: Chain, account: "int | str",
                 maximum_supply: str = "1000000000.0000 EOS",
                 issuer: "int | str | None" = None) -> int:
    """Deploy a token contract and create its currency."""
    from .name import Name
    code = chain.set_contract(account, TokenContract())
    issuer_name = int(Name(issuer)) if issuer is not None else code
    chain.create_account(issuer_name)
    data = (Encoder().name(issuer_name)
            .asset(Asset.from_string(maximum_supply)).bytes())
    result = chain.push_action(code, "create", [code], data)
    if not result.success:
        raise RuntimeError(f"token create failed: {result.error}")
    return code


def issue_to(chain: Chain, token_code: "int | str", to: "int | str",
             quantity: str, issuer: "int | str | None" = None) -> None:
    """Issue tokens to an account (creating it if necessary)."""
    from .name import Name
    code = int(Name(token_code))
    recipient = chain.create_account(to)
    issuer_name = int(Name(issuer)) if issuer is not None else code
    data = (Encoder().name(recipient)
            .asset(Asset.from_string(quantity)).string("issue").bytes())
    result = chain.push_action(code, "issue", [issuer_name], data)
    if not result.success:
        raise RuntimeError(f"token issue failed: {result.error}")


def token_balance(chain: Chain, token_code: "int | str",
                  owner: "int | str", symbol: Symbol | None = None) -> Asset:
    """Read an account's balance (zero if no row exists)."""
    from .asset import EOS_SYMBOL
    from .name import Name
    symbol = symbol or EOS_SYMBOL
    code = int(Name(token_code))
    owner_name = int(Name(owner))
    raw = chain.db.get_row(code, owner_name, _ACCOUNTS_TABLE,
                           _symbol_key(symbol))
    if raw is None:
        return Asset(0, symbol)
    return Decoder(raw).asset()

"""The evaluation harness: run WASAI and the baselines on contracts.

Shared by the example scripts, the test suite and the benchmark
drivers for Tables 4-6, Figure 3 and RQ4.

Corpus evaluation fans out over :mod:`repro.parallel`: every sample
becomes one self-contained :class:`~repro.parallel.CampaignTask` with a
deterministic per-sample RNG seed, so ``jobs=1`` (in-process) and
``jobs=N`` (worker pool) produce byte-identical metrics tables.

Fault tolerance sits on :mod:`repro.resilience`: stage failures are
raised as typed :class:`~repro.resilience.CampaignError`\\ s, samples
whose workers crash or time out are retried / quarantined under a
:class:`~repro.resilience.ResiliencePolicy` and reported as *skipped*
in the tables (never silently folded into the confusion counts), and
``journal``/``resume`` checkpoint completed campaigns to an
append-only JSONL so interrupted runs continue instead of restarting.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from .baselines.eosafe import EosafeAnalyzer
from .baselines.eosfuzzer import EosfuzzerCampaign, eosfuzzer_scan
from .benchgen.corpus import BenchmarkSample
from .engine import (FuzzReport, FuzzTarget, VirtualClock, WasaiFuzzer,
                     deploy_target, setup_chain)
from .eosio.abi import Abi
from .metrics import MetricsTable, ThroughputStats
from .parallel import CampaignTask, run_campaign_task
from .resilience import (CampaignError, DeployError, FuzzError,
                         ResiliencePolicy, ScanError, faultinject,
                         run_resilient_tasks)
from .scanner import ScanResult, scan_report
from .wasm.module import Module

__all__ = ["run_wasai", "run_eosfuzzer", "run_eosafe", "evaluate_corpus",
            "WasaiRun", "DEFAULT_TIMEOUT_MS"]

# Virtual five minutes would be over-generous for the small generated
# contracts; 30 virtual seconds saturates coverage on them while
# keeping the full corpus runnable in CI.  Benches can raise it.
DEFAULT_TIMEOUT_MS = 30_000.0


@dataclass
class WasaiRun:
    """A completed WASAI campaign and its scan."""

    report: FuzzReport
    scan: ScanResult
    target: FuzzTarget


def _charge_stage(timings: "dict[str, float] | None", stage: str,
                  started: float) -> float:
    """Accumulate a stage's wall-clock; returns a fresh timestamp."""
    now = time.perf_counter()
    if timings is not None:
        timings[stage] = timings.get(stage, 0.0) + now - started
    return now


def _deploy(account: str, module: Module, abi: Abi, limits=None):
    """Chain + instrumented deployment, typed on failure."""
    try:
        chain = setup_chain(limits=limits)
        target = deploy_target(chain, account, module, abi)
    except CampaignError:
        raise
    except Exception as exc:
        raise DeployError.wrap(exc)
    return chain, target


def run_wasai(module: Module, abi: Abi, account: str = "victim",
              timeout_ms: float = DEFAULT_TIMEOUT_MS, rng_seed: int = 1,
              clock: VirtualClock | None = None,
              smt_max_conflicts: int = 20_000,
              address_pool: bool = False,
              feedback: bool = True,
              divergence_check: bool = True,
              limits=None,
              trace_dir: "str | None" = None,
              trace_format: str = "jsonl",
              timings: "dict[str, float] | None" = None,
              oracles=None,
              deadline_epoch_s: float | None = None) -> WasaiRun:
    """Fuzz one contract with WASAI and scan the observations.

    ``timings``, when given, accumulates real per-stage wall-clock
    seconds under the keys "setup", "fuzz" and "scan".  ``feedback``
    toggles the symbolic feedback loop — ``False`` is the black-box
    degradation mode the resilience layer falls back to when the
    symbolic/solver stage is lost.  ``divergence_check`` toggles the
    concolic divergence sentinel (cross-checking the symbolic replay's
    concrete shadow state against the recorded trace); ``limits`` is
    an optional :class:`~repro.wasm.ExecutionLimits` for the chain's
    Wasm interpreter.  ``trace_dir`` redirects every observation's
    trace to its own offline file (§3.3.1) in the given directory,
    encoded per ``trace_format`` ("jsonl" or the columnar "ir").
    ``oracles`` selects the enabled oracle families (any spec
    :func:`repro.semoracle.resolve_oracles` accepts; None = the
    paper's five).  ``deadline_epoch_s`` is the caller's absolute
    wall-clock deadline: the fuzzing loop checks it once per round and
    raises :class:`~repro.resilience.DeadlineExceeded` the moment it
    passes, cutting the campaign short instead of finishing its
    virtual budget for a caller that already gave up.
    """
    started = time.perf_counter()
    chain, target = _deploy(account, module, abi, limits=limits)
    started = _charge_stage(timings, "setup", started)
    faultinject.inject("fuzz")
    fuzzer = WasaiFuzzer(chain, target, rng=random.Random(rng_seed),
                         clock=clock, timeout_ms=timeout_ms,
                         smt_max_conflicts=smt_max_conflicts,
                         address_pool=address_pool,
                         feedback=feedback,
                         trace_dir=trace_dir,
                         trace_format=trace_format,
                         divergence_check=divergence_check,
                         deadline_epoch_s=deadline_epoch_s)
    try:
        report = fuzzer.run()
    except CampaignError:
        raise
    except Exception as exc:
        raise FuzzError.wrap(exc)
    started = _charge_stage(timings, "fuzz", started)
    faultinject.inject("scan")
    try:
        scan = scan_report(report, target, oracles=oracles)
    except CampaignError:
        raise
    except Exception as exc:
        raise ScanError.wrap(exc)
    _charge_stage(timings, "scan", started)
    return WasaiRun(report, scan, target)


def run_eosfuzzer(module: Module, abi: Abi, account: str = "victim",
                  timeout_ms: float = DEFAULT_TIMEOUT_MS,
                  rng_seed: int = 1,
                  clock: VirtualClock | None = None,
                  timings: "dict[str, float] | None" = None) -> WasaiRun:
    """Run the EOSFuzzer baseline on one contract."""
    started = time.perf_counter()
    chain, target = _deploy(account, module, abi)
    started = _charge_stage(timings, "setup", started)
    faultinject.inject("fuzz")
    campaign = EosfuzzerCampaign(chain, target,
                                 rng=random.Random(rng_seed),
                                 clock=clock, timeout_ms=timeout_ms)
    try:
        report = campaign.run()
    except CampaignError:
        raise
    except Exception as exc:
        raise FuzzError.wrap(exc)
    started = _charge_stage(timings, "fuzz", started)
    faultinject.inject("scan")
    try:
        scan = eosfuzzer_scan(report, target)
    except CampaignError:
        raise
    except Exception as exc:
        raise ScanError.wrap(exc)
    _charge_stage(timings, "scan", started)
    return WasaiRun(report, scan, target)


def run_eosafe(module: Module, account: int = 0) -> ScanResult:
    """Run the EOSAFE baseline (static, no chain needed)."""
    faultinject.inject("scan")
    return EosafeAnalyzer().analyze(module).to_scan_result(account)


def evaluate_corpus(samples: list[BenchmarkSample],
                    tools: tuple[str, ...] = ("wasai", "eosfuzzer",
                                              "eosafe"),
                    timeout_ms: float = DEFAULT_TIMEOUT_MS,
                    rng_seed: int = 7,
                    jobs: int = 1,
                    task_timeout_s: float | None = None,
                    perf: ThroughputStats | None = None,
                    policy: ResiliencePolicy | None = None,
                    journal: "str | None" = None,
                    resume: bool = False,
                    divergence_check: bool = True,
                    capture_traces: bool = False,
                    oracles=None,
                    ) -> dict[str, MetricsTable]:
    """Run the selected tools over a labelled corpus; returns one
    metrics table per tool (the Table 4/5/6 rows).

    ``jobs`` > 1 fans the per-sample campaigns out over a worker pool
    (``jobs=0`` means one worker per CPU); results are folded back in
    sample order, so the tables are identical to a serial run with the
    same ``rng_seed``.  ``task_timeout_s`` bounds one sample's real
    wall-clock in the parallel path.

    Failures never skew the tables: a sample whose task crashed or
    timed out is retried under ``policy`` (default
    :class:`~repro.resilience.ResiliencePolicy`), quarantined after
    ``policy.quarantine_after`` failures, and recorded as *skipped* —
    listed in the table, excluded from the confusion counts.  With
    ``journal`` set, completed campaigns are checkpointed as they
    finish; ``resume=True`` reuses journaled results verbatim instead
    of recomputing them.  ``perf``, when given, is filled with
    throughput, failure/retry and cache-hit accounting for the freshly
    computed (non-journaled) campaigns.

    A sample whose campaign tripped the concolic divergence sentinel
    (``divergence_check``, on by default) is reported as *divergent* —
    its verdict is excluded from the confusion counts (the trace the
    detectors scanned is untrustworthy) and the sample is recorded in
    the quarantine ledger.

    ``capture_traces`` distills each finished WASAI campaign into a
    durable trace-IR pack (:mod:`repro.traceir`) carried on the result
    and journaled alongside the verdict, so scanner oracles can later
    be replayed with zero re-fuzzing.
    """
    policy = policy or ResiliencePolicy()
    vuln_types = tuple(sorted({s.vuln_type for s in samples}))
    tables = {tool: MetricsTable(tool, vuln_types) for tool in tools}
    tasks = [CampaignTask(sample.module, sample.contract.abi, tuple(tools),
                          timeout_ms, rng_seed + index, policy=policy,
                          sample_key=f"{sample.vuln_type}[{index}]",
                          divergence_check=divergence_check,
                          capture_traces=capture_traces,
                          oracles=oracles)
             for index, sample in enumerate(samples)]
    wall_started = time.perf_counter()
    run = run_resilient_tasks(run_campaign_task, tasks, jobs=jobs,
                              timeout_s=task_timeout_s, policy=policy,
                              journal=journal, resume=resume)
    wall_s = time.perf_counter() - wall_started
    for index, (sample, result) in enumerate(zip(samples, run.results)):
        skip_reason = run.skip_reason(index)
        if skip_reason is not None:
            for tool in tools:
                tables[tool].skip(sample.vuln_type,
                                  f"{tasks[index].sample_key}: "
                                  f"{skip_reason}")
            continue
        outcome = result.value
        for tool in tools:
            scan = outcome.scans.get(tool)
            if scan is None:
                error = outcome.errors.get(tool, {})
                tables[tool].skip(sample.vuln_type,
                                  f"{tasks[index].sample_key}: "
                                  f"{error.get('message', 'failed')}")
                continue
            if scan.divergences:
                # The sentinel tripped: the recorded trace and the
                # symbolic replay disagree, so neither a positive nor
                # a negative verdict can be credited to this campaign.
                sample_key = tasks[index].sample_key
                reason = f"{sample_key}: {scan.divergences[0]}"
                tables[tool].mark_divergent(sample.vuln_type, reason)
                run.quarantine.record_failure(
                    sample_key, f"divergence: {scan.divergences[0]}")
                continue
            tables[tool].record(sample.vuln_type, sample.label,
                                scan.detected(sample.vuln_type))
    if perf is not None:
        perf.jobs = jobs
        perf.wall_s += wall_s
        perf.failures += run.failed_attempts
        perf.retries += run.retries
        perf.quarantined += len(run.quarantine.quarantined())
        for index, result in enumerate(run.results):
            if not result.ok or index in run.reused_indices:
                continue
            outcome = result.value
            perf.campaigns += len(outcome.scans)
            perf.retries += outcome.retries
            perf.add_stage_seconds(outcome.stage_seconds)
            if result.elapsed_s > 0:
                perf.record_latency("task", result.elapsed_s)
            for stage, seconds in outcome.stage_seconds.items():
                perf.record_latency(stage, seconds)
            perf.add_cache_deltas(outcome.instr_cache_hits,
                                  outcome.instr_cache_misses,
                                  outcome.solver_cache_hits,
                                  outcome.solver_cache_misses,
                                  outcome.instr_disk_hits,
                                  outcome.instr_disk_misses,
                                  outcome.solver_disk_hits,
                                  outcome.solver_disk_misses,
                                  worker_id=outcome.worker_id or None)
    return tables

"""The evaluation harness: run WASAI and the baselines on contracts.

Shared by the example scripts, the test suite and the benchmark
drivers for Tables 4-6, Figure 3 and RQ4.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .baselines.eosafe import EosafeAnalyzer
from .baselines.eosfuzzer import EosfuzzerCampaign, eosfuzzer_scan
from .benchgen.corpus import BenchmarkSample
from .engine import (FuzzReport, FuzzTarget, VirtualClock, WasaiFuzzer,
                     deploy_target, setup_chain)
from .eosio.abi import Abi
from .metrics import MetricsTable
from .scanner import ScanResult, scan_report
from .wasm.module import Module

__all__ = ["run_wasai", "run_eosfuzzer", "run_eosafe", "evaluate_corpus",
            "WasaiRun", "DEFAULT_TIMEOUT_MS"]

# Virtual five minutes would be over-generous for the small generated
# contracts; 30 virtual seconds saturates coverage on them while
# keeping the full corpus runnable in CI.  Benches can raise it.
DEFAULT_TIMEOUT_MS = 30_000.0


@dataclass
class WasaiRun:
    """A completed WASAI campaign and its scan."""

    report: FuzzReport
    scan: ScanResult
    target: FuzzTarget


def run_wasai(module: Module, abi: Abi, account: str = "victim",
              timeout_ms: float = DEFAULT_TIMEOUT_MS, rng_seed: int = 1,
              clock: VirtualClock | None = None,
              smt_max_conflicts: int = 20_000,
              address_pool: bool = False) -> WasaiRun:
    """Fuzz one contract with WASAI and scan the observations."""
    chain = setup_chain()
    target = deploy_target(chain, account, module, abi)
    fuzzer = WasaiFuzzer(chain, target, rng=random.Random(rng_seed),
                         clock=clock, timeout_ms=timeout_ms,
                         smt_max_conflicts=smt_max_conflicts,
                         address_pool=address_pool)
    report = fuzzer.run()
    return WasaiRun(report, scan_report(report, target), target)


def run_eosfuzzer(module: Module, abi: Abi, account: str = "victim",
                  timeout_ms: float = DEFAULT_TIMEOUT_MS,
                  rng_seed: int = 1,
                  clock: VirtualClock | None = None) -> WasaiRun:
    """Run the EOSFuzzer baseline on one contract."""
    chain = setup_chain()
    target = deploy_target(chain, account, module, abi)
    campaign = EosfuzzerCampaign(chain, target,
                                 rng=random.Random(rng_seed),
                                 clock=clock, timeout_ms=timeout_ms)
    report = campaign.run()
    return WasaiRun(report, eosfuzzer_scan(report, target), target)


def run_eosafe(module: Module, account: int = 0) -> ScanResult:
    """Run the EOSAFE baseline (static, no chain needed)."""
    return EosafeAnalyzer().analyze(module).to_scan_result(account)


def evaluate_corpus(samples: list[BenchmarkSample],
                    tools: tuple[str, ...] = ("wasai", "eosfuzzer",
                                              "eosafe"),
                    timeout_ms: float = DEFAULT_TIMEOUT_MS,
                    rng_seed: int = 7,
                    ) -> dict[str, MetricsTable]:
    """Run the selected tools over a labelled corpus; returns one
    metrics table per tool (the Table 4/5/6 rows)."""
    vuln_types = tuple(sorted({s.vuln_type for s in samples}))
    tables = {tool: MetricsTable(tool, vuln_types) for tool in tools}
    for index, sample in enumerate(samples):
        module = sample.module
        abi = sample.contract.abi
        if "wasai" in tools:
            run = run_wasai(module, abi, timeout_ms=timeout_ms,
                            rng_seed=rng_seed + index)
            tables["wasai"].record(sample.vuln_type, sample.label,
                                   run.scan.detected(sample.vuln_type))
        if "eosfuzzer" in tools:
            run = run_eosfuzzer(module, abi, timeout_ms=timeout_ms,
                                rng_seed=rng_seed + index)
            tables["eosfuzzer"].record(sample.vuln_type, sample.label,
                                       run.scan.detected(sample.vuln_type))
        if "eosafe" in tools:
            scan = run_eosafe(module)
            tables["eosafe"].record(sample.vuln_type, sample.label,
                                    scan.detected(sample.vuln_type))
    return tables

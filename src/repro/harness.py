"""The evaluation harness: run WASAI and the baselines on contracts.

Shared by the example scripts, the test suite and the benchmark
drivers for Tables 4-6, Figure 3 and RQ4.

Corpus evaluation fans out over :mod:`repro.parallel`: every sample
becomes one self-contained :class:`~repro.parallel.CampaignTask` with a
deterministic per-sample RNG seed, so ``jobs=1`` (in-process) and
``jobs=N`` (worker pool) produce byte-identical metrics tables.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from .baselines.eosafe import EosafeAnalyzer
from .baselines.eosfuzzer import EosfuzzerCampaign, eosfuzzer_scan
from .benchgen.corpus import BenchmarkSample
from .engine import (FuzzReport, FuzzTarget, VirtualClock, WasaiFuzzer,
                     deploy_target, setup_chain)
from .eosio.abi import Abi
from .metrics import MetricsTable, ThroughputStats
from .parallel import CampaignTask, run_campaign_task, run_tasks
from .scanner import ScanResult, scan_report
from .wasm.module import Module

__all__ = ["run_wasai", "run_eosfuzzer", "run_eosafe", "evaluate_corpus",
            "WasaiRun", "DEFAULT_TIMEOUT_MS"]

# Virtual five minutes would be over-generous for the small generated
# contracts; 30 virtual seconds saturates coverage on them while
# keeping the full corpus runnable in CI.  Benches can raise it.
DEFAULT_TIMEOUT_MS = 30_000.0


@dataclass
class WasaiRun:
    """A completed WASAI campaign and its scan."""

    report: FuzzReport
    scan: ScanResult
    target: FuzzTarget


def _charge_stage(timings: "dict[str, float] | None", stage: str,
                  started: float) -> float:
    """Accumulate a stage's wall-clock; returns a fresh timestamp."""
    now = time.perf_counter()
    if timings is not None:
        timings[stage] = timings.get(stage, 0.0) + now - started
    return now


def run_wasai(module: Module, abi: Abi, account: str = "victim",
              timeout_ms: float = DEFAULT_TIMEOUT_MS, rng_seed: int = 1,
              clock: VirtualClock | None = None,
              smt_max_conflicts: int = 20_000,
              address_pool: bool = False,
              timings: "dict[str, float] | None" = None) -> WasaiRun:
    """Fuzz one contract with WASAI and scan the observations.

    ``timings``, when given, accumulates real per-stage wall-clock
    seconds under the keys "setup", "fuzz" and "scan".
    """
    started = time.perf_counter()
    chain = setup_chain()
    target = deploy_target(chain, account, module, abi)
    started = _charge_stage(timings, "setup", started)
    fuzzer = WasaiFuzzer(chain, target, rng=random.Random(rng_seed),
                         clock=clock, timeout_ms=timeout_ms,
                         smt_max_conflicts=smt_max_conflicts,
                         address_pool=address_pool)
    report = fuzzer.run()
    started = _charge_stage(timings, "fuzz", started)
    scan = scan_report(report, target)
    _charge_stage(timings, "scan", started)
    return WasaiRun(report, scan, target)


def run_eosfuzzer(module: Module, abi: Abi, account: str = "victim",
                  timeout_ms: float = DEFAULT_TIMEOUT_MS,
                  rng_seed: int = 1,
                  clock: VirtualClock | None = None,
                  timings: "dict[str, float] | None" = None) -> WasaiRun:
    """Run the EOSFuzzer baseline on one contract."""
    started = time.perf_counter()
    chain = setup_chain()
    target = deploy_target(chain, account, module, abi)
    started = _charge_stage(timings, "setup", started)
    campaign = EosfuzzerCampaign(chain, target,
                                 rng=random.Random(rng_seed),
                                 clock=clock, timeout_ms=timeout_ms)
    report = campaign.run()
    started = _charge_stage(timings, "fuzz", started)
    scan = eosfuzzer_scan(report, target)
    _charge_stage(timings, "scan", started)
    return WasaiRun(report, scan, target)


def run_eosafe(module: Module, account: int = 0) -> ScanResult:
    """Run the EOSAFE baseline (static, no chain needed)."""
    return EosafeAnalyzer().analyze(module).to_scan_result(account)


def evaluate_corpus(samples: list[BenchmarkSample],
                    tools: tuple[str, ...] = ("wasai", "eosfuzzer",
                                              "eosafe"),
                    timeout_ms: float = DEFAULT_TIMEOUT_MS,
                    rng_seed: int = 7,
                    jobs: int = 1,
                    task_timeout_s: float | None = None,
                    perf: ThroughputStats | None = None,
                    ) -> dict[str, MetricsTable]:
    """Run the selected tools over a labelled corpus; returns one
    metrics table per tool (the Table 4/5/6 rows).

    ``jobs`` > 1 fans the per-sample campaigns out over a worker pool
    (``jobs=0`` means one worker per CPU); results are folded back in
    sample order, so the tables are identical to a serial run with the
    same ``rng_seed``.  ``task_timeout_s`` bounds one sample's real
    wall-clock in the parallel path; a crashed or timed-out sample is
    recorded as "nothing detected" rather than aborting the run.
    ``perf``, when given, is filled with throughput and cache-hit
    accounting.
    """
    vuln_types = tuple(sorted({s.vuln_type for s in samples}))
    tables = {tool: MetricsTable(tool, vuln_types) for tool in tools}
    tasks = [CampaignTask(sample.module, sample.contract.abi, tuple(tools),
                          timeout_ms, rng_seed + index)
             for index, sample in enumerate(samples)]
    wall_started = time.perf_counter()
    results = run_tasks(run_campaign_task, tasks, jobs=jobs,
                        timeout_s=task_timeout_s)
    wall_s = time.perf_counter() - wall_started
    for sample, result in zip(samples, results):
        outcome = result.value if result.ok else None
        for tool in tools:
            detected = (outcome is not None
                        and outcome.scans[tool].detected(sample.vuln_type))
            tables[tool].record(sample.vuln_type, sample.label, detected)
    if perf is not None:
        perf.jobs = jobs
        perf.wall_s += wall_s
        for result in results:
            if not result.ok:
                perf.failures += 1
                continue
            outcome = result.value
            perf.campaigns += len(outcome.scans)
            perf.add_stage_seconds(outcome.stage_seconds)
            perf.add_cache_deltas(outcome.instr_cache_hits,
                                  outcome.instr_cache_misses,
                                  outcome.solver_cache_hits,
                                  outcome.solver_cache_misses)
    return tables

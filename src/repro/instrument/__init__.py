"""repro.instrument — Wasabi-style contract-level instrumentation.

Rewrites contract bytecode so every executed instruction emits a trace
through host-bound hooks (§3.3.1 / Table 1), without modifying the
virtual machine.
"""

from .hooks import (BEGIN_FUNCTION, END_FUNCTION, HOOK_MODULE, HookEvent,
                    hook_func_type, parse_hook_name, post_hook_name,
                    trace_hook_name)
from .instrumenter import Site, SiteTable, instrument_module
from .tracefile import (TraceStore, decode_raw_trace, load_trace_file,
                        read_trace_file, read_trace_ir, write_trace_file,
                        write_trace_ir)

__all__ = [
    "BEGIN_FUNCTION", "END_FUNCTION", "HOOK_MODULE", "HookEvent",
    "hook_func_type", "parse_hook_name", "post_hook_name",
    "trace_hook_name", "Site", "SiteTable", "instrument_module",
    "TraceStore", "decode_raw_trace", "read_trace_file",
    "write_trace_file", "write_trace_ir", "read_trace_ir",
    "load_trace_file",
]

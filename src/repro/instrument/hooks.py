"""Low-level hook definitions (§3.3.1, Table 1).

Hooks are function imports under the ``wasabi`` module namespace that
the instrumented bytecode calls with duplicated runtime operands.  Each
distinct operand-type tuple gets its own import (the generalisation of
the paper's ``logi``/``logsf``/``logdf`` Nodeos extensions, which the
chain binds to the per-action trace buffer).

Hook kinds:

* ``trace[_t1[_t2[_t3]]]`` — fired *before* an instruction, carrying the
  site id and the instruction's operands (this subsumes the paper's
  ``call_pre``: for ``call``/``call_indirect`` the operands are the
  invocation arguments).
* ``post[_t1...]`` — fired *after* a call returns, carrying the returned
  values (the paper's ``call_post``).
* ``begin_function`` / ``end_function`` — function-body labels.
"""

from __future__ import annotations

from ..wasm.types import F32, F64, FuncType, I32, I64, ValType

__all__ = ["HOOK_MODULE", "trace_hook_name", "post_hook_name",
           "BEGIN_FUNCTION", "END_FUNCTION", "hook_func_type",
           "parse_hook_name", "HookEvent"]

HOOK_MODULE = "wasabi"
BEGIN_FUNCTION = "begin_function"
END_FUNCTION = "end_function"

_SUFFIX = {"i32": I32, "i64": I64, "f32": F32, "f64": F64}


def trace_hook_name(operand_types: list[ValType]) -> str:
    if not operand_types:
        return "trace"
    return "trace_" + "_".join(t.name for t in operand_types)


def post_hook_name(result_types: list[ValType]) -> str:
    if not result_types:
        return "post"
    return "post_" + "_".join(t.name for t in result_types)


def hook_func_type(hook_name: str) -> FuncType:
    """The Wasm signature of a hook import."""
    if hook_name in (BEGIN_FUNCTION, END_FUNCTION):
        return FuncType((I32,), ())
    kind, types = parse_hook_name(hook_name)
    return FuncType((I32, *types), ())


# Trace decoding calls this once per event; there are only a handful
# of distinct hook names, so the parse is memoised.
_PARSE_MEMO: dict[str, tuple[str, tuple[ValType, ...]]] = {}


def parse_hook_name(hook_name: str) -> tuple[str, tuple[ValType, ...]]:
    """Split ``"trace_i32_i64"`` into ("trace", (I32, I64))."""
    cached = _PARSE_MEMO.get(hook_name)
    if cached is not None:
        return cached
    if hook_name in (BEGIN_FUNCTION, END_FUNCTION):
        parsed = (hook_name, ())
    else:
        parts = hook_name.split("_")
        kind = parts[0]
        if kind not in ("trace", "post"):
            raise ValueError(f"unknown hook {hook_name!r}")
        parsed = (kind, tuple(_SUFFIX[p] for p in parts[1:]))
    _PARSE_MEMO[hook_name] = parsed
    return parsed


class HookEvent:
    """A decoded trace event: one hook firing.

    ``kind`` is "instr" (pre-instruction trace), "post" (call return),
    "begin" or "end".  For "instr"/"post", ``site_id`` indexes the
    instrumentation site table; for "begin"/"end" ``func_id`` is the
    original function index.
    """

    __slots__ = ("kind", "site_id", "func_id", "operands")

    def __init__(self, kind: str, site_id: int | None,
                 func_id: int | None, operands: tuple):
        self.kind = kind
        self.site_id = site_id
        self.func_id = func_id
        self.operands = operands

    def __repr__(self) -> str:
        target = self.site_id if self.site_id is not None else self.func_id
        return f"HookEvent({self.kind}, {target}, {self.operands})"

    @staticmethod
    def decode(hook_name: str, args: tuple) -> "HookEvent":
        """Decode one raw ``(hook_name, args)`` trace entry."""
        if hook_name == BEGIN_FUNCTION:
            return HookEvent("begin", None, args[0], ())
        if hook_name == END_FUNCTION:
            return HookEvent("end", None, args[0], ())
        kind, _ = parse_hook_name(hook_name)
        label = "instr" if kind == "trace" else "post"
        return HookEvent(label, args[0], None, tuple(args[1:]))

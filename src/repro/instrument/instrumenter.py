"""Contract-level bytecode instrumentation (challenge C1, §3.3.1).

``instrument_module`` rewrites a Wasm module so that every reachable
instruction is preceded by a hook call that duplicates its runtime
operands (spilled through fresh scratch locals), and function bodies
are bracketed with ``begin_function``/``end_function`` labels.  Calls
additionally get a ``post`` hook capturing their return values — the
five invocation hooks of the paper's Table 1.

The rewrite is purely contract-level: the virtual machine is left
untouched, which is exactly the property the paper claims makes WASAI
portable across Wasm blockchains.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..wasm.module import Function, Import, Module
from ..wasm.opcodes import Instr
from ..wasm.types import FuncType, ValType
from ..wasm.validation import InstructionTyping, type_function
from .hooks import (BEGIN_FUNCTION, END_FUNCTION, HOOK_MODULE,
                    hook_func_type, post_hook_name, trace_hook_name)

__all__ = ["Site", "SiteTable", "instrument_module"]


@dataclass(frozen=True)
class Site:
    """One instrumentation site in the *original* module.

    ``func_index`` is the original function index (import space) and
    ``pc`` the instruction offset inside that function's body.
    ``kind`` is "instr" or "post".
    """

    kind: str
    func_index: int
    pc: int
    instr: Instr


class SiteTable:
    """Maps hook site ids back to original-module instructions."""

    def __init__(self) -> None:
        self.sites: list[Site] = []

    def add(self, site: Site) -> int:
        self.sites.append(site)
        return len(self.sites) - 1

    def __getitem__(self, site_id: int) -> Site:
        return self.sites[site_id]

    def __len__(self) -> int:
        return len(self.sites)


class _HookCall(Instr):
    """Placeholder call to a hook import, resolved in the fix-up pass."""

    __slots__ = ("hook_name",)

    def __init__(self, hook_name: str):
        super().__init__("call", 0)
        self.hook_name = hook_name


def instrument_module(module: Module) -> tuple[Module, SiteTable]:
    """Return an instrumented copy of ``module`` plus its site table.

    The input module is not mutated.  Hook imports are appended after
    the existing imports; all function references are shifted
    accordingly.
    """
    site_table = SiteTable()
    hook_names: list[str] = []
    hook_order: dict[str, int] = {}

    def hook_index_of(name: str) -> None:
        if name not in hook_order:
            hook_order[name] = len(hook_names)
            hook_names.append(name)

    import_count = module.num_imported_functions
    new_functions: list[Function] = []
    for local_index, func in enumerate(module.functions):
        func_index = import_count + local_index
        typings = type_function(module, func)
        new_functions.append(
            _instrument_function(module, func, func_index, typings,
                                 site_table, hook_index_of))

    # Assemble the new module: old imports + hook imports + functions.
    out = Module()
    out.types = list(module.types)
    out.imports = list(module.imports)
    hook_base = import_count
    for name in hook_names:
        type_index = out.add_type(hook_func_type(name))
        out.imports.append(Import(HOOK_MODULE, name, "func", type_index))
    shift = len(hook_names)

    def remap(func_index: int) -> int:
        return func_index + shift if func_index >= import_count else func_index

    for func in new_functions:
        body = []
        for instr in func.body:
            if isinstance(instr, _HookCall):
                body.append(Instr("call", hook_base + hook_order[instr.hook_name]))
            elif instr.op == "call":
                body.append(Instr("call", remap(instr.args[0])))
            else:
                body.append(instr)
        out.functions.append(Function(func.type_index, func.locals, body))
    out.tables = list(module.tables)
    out.memories = list(module.memories)
    out.globals = list(module.globals)
    from ..wasm.module import DataSegment, Element, Export
    out.exports = [Export(e.name, e.kind,
                          remap(e.index) if e.kind == "func" else e.index)
                   for e in module.exports]
    out.start = remap(module.start) if module.start is not None else None
    out.elements = [Element(e.table_index, list(e.offset),
                            [remap(i) for i in e.func_indices])
                    for e in module.elements]
    out.data_segments = [DataSegment(d.memory_index, list(d.offset), d.data)
                         for d in module.data_segments]
    return out, site_table


def _instrument_function(module: Module, func: Function, func_index: int,
                         typings: list[InstructionTyping],
                         site_table: SiteTable, declare_hook) -> Function:
    func_type = module.types[func.type_index]
    param_count = len(func_type.params)
    new_locals = list(func.locals)
    scratch: dict[str, list[int]] = {}

    def scratch_locals(types: list[ValType]) -> list[int]:
        """Get per-type scratch local indices for a spill of ``types``."""
        used: dict[str, int] = {}
        indices = []
        for valtype in types:
            pool = scratch.setdefault(valtype.name, [])
            position = used.get(valtype.name, 0)
            while len(pool) <= position:
                pool.append(param_count + len(new_locals))
                new_locals.append(valtype)
            indices.append(pool[position])
            used[valtype.name] = position + 1
        return indices

    body: list[Instr] = []
    declare_hook(BEGIN_FUNCTION)
    declare_hook(END_FUNCTION)

    def emit_label(which: str) -> None:
        body.append(Instr("i32.const", _as_s32(func_index)))
        body.append(_HookCall(which))

    emit_label(BEGIN_FUNCTION)
    for pc, (instr, typing) in enumerate(zip(func.body, typings)):
        if not typing.reachable or instr.op in ("end", "else"):
            # Dead code never fires hooks; end/else are pure markers.
            body.append(instr)
            continue
        if instr.op == "return":
            emit_label(END_FUNCTION)
            body.append(instr)
            continue
        pops = [t for t in typing.pops]
        if any(not isinstance(t, ValType) for t in pops):
            body.append(instr)  # polymorphic in dead code; skip hook
            continue
        site_id = site_table.add(Site("instr", func_index, pc, instr))
        hook_name = trace_hook_name(pops)
        declare_hook(hook_name)
        if pops:
            indices = scratch_locals(pops)
            # Spill: stack top is pops[-1], so set in reverse order.
            for local_index in reversed(indices):
                body.append(Instr("local.set", local_index))
            body.append(Instr("i32.const", _as_s32(site_id)))
            for local_index in indices:
                body.append(Instr("local.get", local_index))
            body.append(_HookCall(hook_name))
            for local_index in indices:
                body.append(Instr("local.get", local_index))
        else:
            body.append(Instr("i32.const", _as_s32(site_id)))
            body.append(_HookCall(hook_name))
        body.append(instr)
        # Post hook after calls: duplicate the returned values.
        if instr.op in ("call", "call_indirect"):
            results = [t for t in typing.pushes]
            post_site = site_table.add(Site("post", func_index, pc, instr))
            post_name = post_hook_name(results)
            declare_hook(post_name)
            if results:
                indices = scratch_locals(results)
                for local_index in reversed(indices):
                    body.append(Instr("local.set", local_index))
                body.append(Instr("i32.const", _as_s32(post_site)))
                for local_index in indices:
                    body.append(Instr("local.get", local_index))
                body.append(_HookCall(post_name))
                for local_index in indices:
                    body.append(Instr("local.get", local_index))
            else:
                body.append(Instr("i32.const", _as_s32(post_site)))
                body.append(_HookCall(post_name))
    emit_label(END_FUNCTION)
    return Function(func.type_index, new_locals, body)


def _as_s32(value: int) -> int:
    """Encode an unsigned id as the signed immediate i32.const wants."""
    return value - (1 << 32) if value >= 1 << 31 else value

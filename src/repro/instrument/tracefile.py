"""Offline trace files (§3.3.1).

The paper redirects traces to offline files once an EOSVM thread
finishes executing (``apply_context::finalize_trace``), so parallel
contract executions never interleave.  :class:`TraceStore` reproduces
that: per-execution buffers keyed by a thread/action token, flushed to
per-token files on finalize, with a loader for Symback.

Two on-disk formats are supported: the paper-faithful JSONL
(one ``[hook_name, args]`` line per event) and the compact columnar
trace IR of :mod:`repro.traceir` (``.tir``).  Both are written
atomically — the bytes land in a temp file in the same directory and
are published with ``os.replace`` — so a crash mid-flush can never
leave a half-written trace that a later read parses as a
short-but-valid stream.  Both loaders lift every defect to a typed
:class:`~repro.resilience.errors.TraceCorruption` carrying the path
(and, for JSONL, the 1-based line number).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from ..resilience.errors import TraceCorruption
from .hooks import HookEvent

__all__ = ["TraceStore", "decode_raw_trace", "write_trace_file",
           "read_trace_file", "write_trace_ir", "read_trace_ir",
           "load_trace_file"]


def decode_raw_trace(raw: list[tuple]) -> list[HookEvent]:
    """Decode the chain's raw ``(hook_name, args)`` buffer into events."""
    return [HookEvent.decode(name, args) for name, args in raw]


def _atomic_write(path: Path, data: bytes) -> None:
    """Publish ``data`` at ``path`` via temp-file + ``os.replace``."""
    fd, tmp = tempfile.mkstemp(dir=str(path.parent),
                               prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def write_trace_file(path: "str | Path", raw: list[tuple]) -> None:
    """Persist one execution's trace (one JSON line per event).

    Atomic: a reader either sees the previous complete file or the new
    complete file, never a prefix.
    """
    path = Path(path)
    lines = [json.dumps([name, list(args)]) for name, args in raw]
    data = ("\n".join(lines) + "\n" if lines else "").encode("utf-8")
    _atomic_write(path, data)


def read_trace_file(path: "str | Path") -> list[HookEvent]:
    events = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                name, args = json.loads(line)
                events.append(HookEvent.decode(name, tuple(args)))
            except (ValueError, TypeError, KeyError, IndexError) as exc:
                # json.JSONDecodeError is a ValueError; the rest cover
                # well-formed JSON that is not a [hook_name, args]
                # pair or names an unknown hook.
                raise TraceCorruption(
                    f"malformed trace line: {exc}",
                    path=str(path), line=lineno) from exc
    return events


def write_trace_ir(path: "str | Path", raw: list[tuple]) -> None:
    """Persist one execution's trace as a columnar ``.tir`` blob."""
    from ..traceir.codec import EventStreamEncoder
    encoder = EventStreamEncoder()
    for name, args in raw:
        encoder.add_raw(name, args)
    _atomic_write(Path(path), encoder.finish())


def read_trace_ir(path: "str | Path") -> list[HookEvent]:
    from ..traceir.codec import decode_events
    try:
        blob = Path(path).read_bytes()
    except OSError as exc:
        raise TraceCorruption(f"unreadable trace file: {exc}",
                              path=str(path)) from exc
    try:
        return decode_events(blob)
    except TraceCorruption as exc:
        if exc.path is None:
            exc.path = str(path)
        raise


def load_trace_file(path: "str | Path") -> list[HookEvent]:
    """Load a trace file of either format, dispatching on extension."""
    if str(path).endswith(".tir"):
        return read_trace_ir(path)
    return read_trace_file(path)


class TraceStore:
    """Per-thread trace buffers with offline redirect on finalize.

    ``fmt`` picks the on-disk encoding: ``"jsonl"`` (default, the
    paper's line-per-event layout) or ``"ir"`` (the columnar,
    CRC-guarded trace IR).
    """

    def __init__(self, directory: "str | Path", fmt: str = "jsonl"):
        if fmt not in ("jsonl", "ir"):
            raise ValueError(f"unknown trace format {fmt!r}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fmt = fmt
        self._buffers: dict[str, list[tuple]] = {}
        self._sequence = 0

    def append(self, token: str, hook_name: str, args: tuple) -> None:
        self._buffers.setdefault(token, []).append((hook_name, args))

    def finalize(self, token: str) -> Path:
        """Flush one thread's buffer to its own offline file."""
        raw = self._buffers.pop(token, [])
        self._sequence += 1
        suffix = "tir" if self.fmt == "ir" else "jsonl"
        path = self.directory \
            / f"trace-{self._sequence:06d}-{token}.{suffix}"
        if self.fmt == "ir":
            write_trace_ir(path, raw)
        else:
            write_trace_file(path, raw)
        return path

    def pending_tokens(self) -> list[str]:
        return sorted(self._buffers)

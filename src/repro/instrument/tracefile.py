"""Offline trace files (§3.3.1).

The paper redirects traces to offline files once an EOSVM thread
finishes executing (``apply_context::finalize_trace``), so parallel
contract executions never interleave.  :class:`TraceStore` reproduces
that: per-execution buffers keyed by a thread/action token, flushed to
per-token files on finalize, with a loader for Symback.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from .hooks import HookEvent

__all__ = ["TraceStore", "decode_raw_trace", "write_trace_file",
           "read_trace_file"]


def decode_raw_trace(raw: list[tuple]) -> list[HookEvent]:
    """Decode the chain's raw ``(hook_name, args)`` buffer into events."""
    return [HookEvent.decode(name, args) for name, args in raw]


def write_trace_file(path: "str | Path", raw: list[tuple]) -> None:
    """Persist one execution's trace (one JSON line per event)."""
    with open(path, "w") as handle:
        for name, args in raw:
            handle.write(json.dumps([name, list(args)]) + "\n")


def read_trace_file(path: "str | Path") -> list[HookEvent]:
    events = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            name, args = json.loads(line)
            events.append(HookEvent.decode(name, tuple(args)))
    return events


class TraceStore:
    """Per-thread trace buffers with offline redirect on finalize."""

    def __init__(self, directory: "str | Path"):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._buffers: dict[str, list[tuple]] = {}
        self._sequence = 0

    def append(self, token: str, hook_name: str, args: tuple) -> None:
        self._buffers.setdefault(token, []).append((hook_name, args))

    def finalize(self, token: str) -> Path:
        """Flush one thread's buffer to its own offline file."""
        raw = self._buffers.pop(token, [])
        self._sequence += 1
        path = self.directory / f"trace-{self._sequence:06d}-{token}.jsonl"
        write_trace_file(path, raw)
        return path

    def pending_tokens(self) -> list[str]:
        return sorted(self._buffers)

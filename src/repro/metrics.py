"""Detection metrics: confusion counts, precision / recall / F1.

Used by the Table 4-6 benches to print the same rows the paper
reports.  Also home to :class:`ThroughputStats`, the timing and
cache-efficiency ledger the corpus-scale evaluation fills in so the
perf trajectory (campaigns/sec, cache hit rates, per-stage wall-clock)
is tracked across PRs via ``BENCH_throughput.json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Confusion", "MetricsTable", "ThroughputStats", "percentile"]


def percentile(samples: "list[float]", q: float) -> float:
    """The ``q``-th percentile (0-100) of ``samples`` by linear
    interpolation between closest ranks; 0.0 for an empty list."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


@dataclass
class Confusion:
    """A binary confusion matrix with the paper's P/R/F1 definitions."""

    tp: int = 0
    fp: int = 0
    tn: int = 0
    fn: int = 0

    def record(self, label: bool, predicted: bool) -> None:
        if label and predicted:
            self.tp += 1
        elif label and not predicted:
            self.fn += 1
        elif not label and predicted:
            self.fp += 1
        else:
            self.tn += 1

    @property
    def total(self) -> int:
        return self.tp + self.fp + self.tn + self.fn

    @property
    def precision(self) -> float:
        denominator = self.tp + self.fp
        return self.tp / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        denominator = self.tp + self.fn
        return self.tp / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if p + r else 0.0

    def merged(self, other: "Confusion") -> "Confusion":
        return Confusion(self.tp + other.tp, self.fp + other.fp,
                         self.tn + other.tn, self.fn + other.fn)

    def row(self) -> str:
        return (f"P={self.precision:6.1%} R={self.recall:6.1%} "
                f"F1={self.f1:6.1%}")

    def counts_row(self) -> str:
        return f"TP={self.tp:<4} FP={self.fp:<4} FN={self.fn:<4}"


@dataclass
class ThroughputStats:
    """Wall-clock accounting for one corpus-scale evaluation.

    ``campaigns`` counts completed tool runs (one fuzzing campaign or
    static scan per sample per tool); ``failures`` counts tasks whose
    worker crashed or timed out.  ``stage_seconds`` sums the per-stage
    wall-clock reported by the campaign workers ("setup" = chain +
    instrumented deploy, "fuzz", "scan").  Cache counters are the
    summed per-task deltas, so they stay correct when workers run in
    separate processes with private caches.
    """

    jobs: int = 1
    campaigns: int = 0
    failures: int = 0
    retries: int = 0
    quarantined: int = 0
    wall_s: float = 0.0
    stage_seconds: dict[str, float] = field(default_factory=dict)
    instr_cache_hits: int = 0
    instr_cache_misses: int = 0
    solver_cache_hits: int = 0
    solver_cache_misses: int = 0
    # Shared on-disk cache tier (repro.sharedcache): summed per-task
    # deltas, zero when no cache dir is configured.
    instr_disk_hits: int = 0
    instr_disk_misses: int = 0
    solver_disk_hits: int = 0
    solver_disk_misses: int = 0
    # Per-worker cache efficiency, keyed by worker process id.  One
    # cold worker in an otherwise warm pool is invisible in the summed
    # counters but obvious here.
    per_worker: dict[int, dict[str, int]] = field(default_factory=dict)
    # Self-healing ledger (scan-service daemon): how often the runtime
    # had to repair itself.  Non-zero values are not errors — they are
    # the healing machinery *working* — but a climbing rate is the
    # operator's early-warning signal.
    worker_restarts: int = 0       # watchdog reaps (died + hung)
    breaker_trips: int = 0         # circuit breakers tripped open
    breaker_recoveries: int = 0    # breakers closed again via a probe
    integrity_repairs: int = 0     # store quarantine-and-rebuild runs
    journal_compactions: int = 0   # journal compaction passes
    # Trace-IR / re-verdict ledger (repro.traceir): durable trace packs
    # written, scanner replays over them, and what those replays found.
    traces_stored: int = 0         # trace-IR packs persisted
    reverdicts: int = 0            # stored traces replayed by oracles
    trace_corruptions: int = 0     # undecodable packs quarantined
    verdict_drift: int = 0         # replay verdict != stored verdict
    insufficient_surface: int = 0  # packs lacking a family's surface
    # Per-task wall-clock samples, keyed by stage ("task" = whole
    # campaign task; "setup"/"fuzz"/"scan" = pipeline stages; the scan
    # service adds "job" for end-to-end job latency).  Samples feed the
    # p50/p95/max percentiles in ``wasai bench`` output and the
    # daemon's ``GET /stats``.
    latency_samples: dict[str, list[float]] = field(default_factory=dict)
    # Overload ledger (scan-service daemon): every refusal and cut-off
    # counted by *why* — "queue" / "inflight" / "deadline" / "quota" /
    # "disk" / "brownout" / "draining" — plus the brownout pressure
    # level active right now.  The per-kind split is what makes a 429
    # storm diagnosable: a wall of "quota" sheds is a hot tenant, a
    # wall of "brownout" sheds is the daemon protecting its SLO.
    shed_by_kind: dict[str, int] = field(default_factory=dict)
    pressure: str = "normal"

    @property
    def campaigns_per_sec(self) -> float:
        return self.campaigns / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def instr_cache_hit_rate(self) -> float:
        total = self.instr_cache_hits + self.instr_cache_misses
        return self.instr_cache_hits / total if total else 0.0

    @property
    def solver_cache_hit_rate(self) -> float:
        total = self.solver_cache_hits + self.solver_cache_misses
        return self.solver_cache_hits / total if total else 0.0

    # -- aggregation (driven by the harness) ------------------------------
    def add_stage_seconds(self, stage_seconds: dict[str, float]) -> None:
        for stage, seconds in stage_seconds.items():
            self.stage_seconds[stage] = \
                self.stage_seconds.get(stage, 0.0) + seconds

    def add_cache_deltas(self, instr_hits: int = 0, instr_misses: int = 0,
                         solver_hits: int = 0,
                         solver_misses: int = 0,
                         instr_disk_hits: int = 0,
                         instr_disk_misses: int = 0,
                         solver_disk_hits: int = 0,
                         solver_disk_misses: int = 0,
                         worker_id: int | None = None) -> None:
        self.instr_cache_hits += instr_hits
        self.instr_cache_misses += instr_misses
        self.solver_cache_hits += solver_hits
        self.solver_cache_misses += solver_misses
        self.instr_disk_hits += instr_disk_hits
        self.instr_disk_misses += instr_disk_misses
        self.solver_disk_hits += solver_disk_hits
        self.solver_disk_misses += solver_disk_misses
        if worker_id is not None:
            per = self.per_worker.setdefault(worker_id, {
                "tasks": 0, "instr_hits": 0, "instr_misses": 0,
                "solver_hits": 0, "solver_misses": 0})
            per["tasks"] += 1
            per["instr_hits"] += instr_hits
            per["instr_misses"] += instr_misses
            per["solver_hits"] += solver_hits
            per["solver_misses"] += solver_misses

    def per_worker_hit_rates(self) -> dict[int, dict[str, float]]:
        """Combined (instr + solver) cache hit rate per worker."""
        out: dict[int, dict[str, float]] = {}
        for worker_id, per in self.per_worker.items():
            hits = per["instr_hits"] + per["solver_hits"]
            total = hits + per["instr_misses"] + per["solver_misses"]
            out[worker_id] = {
                "tasks": per["tasks"],
                "hit_rate": hits / total if total else 0.0,
            }
        return out

    def record_latency(self, stage: str, seconds: float) -> None:
        """Add one per-task wall-clock sample for ``stage``."""
        self.latency_samples.setdefault(stage, []).append(seconds)

    def record_shed(self, kind: str) -> None:
        """Count one shed/cut-off of the given kind."""
        self.shed_by_kind[kind] = self.shed_by_kind.get(kind, 0) + 1

    def shed_total(self) -> int:
        return sum(self.shed_by_kind.values())

    def latency_percentiles(self) -> dict[str, dict[str, float]]:
        """p50/p95/max (plus sample count) per recorded stage."""
        out: dict[str, dict[str, float]] = {}
        for stage, samples in self.latency_samples.items():
            if not samples:
                continue
            out[stage] = {
                "n": len(samples),
                "p50_s": percentile(samples, 50),
                "p95_s": percentile(samples, 95),
                "max_s": max(samples),
            }
        return out

    def as_dict(self) -> dict:
        return {
            "jobs": self.jobs,
            "campaigns": self.campaigns,
            "failures": self.failures,
            "retries": self.retries,
            "quarantined": self.quarantined,
            "wall_s": self.wall_s,
            "campaigns_per_sec": self.campaigns_per_sec,
            "stage_seconds": dict(self.stage_seconds),
            "instr_cache": {
                "hits": self.instr_cache_hits,
                "misses": self.instr_cache_misses,
                "hit_rate": self.instr_cache_hit_rate,
            },
            "solver_cache": {
                "hits": self.solver_cache_hits,
                "misses": self.solver_cache_misses,
                "hit_rate": self.solver_cache_hit_rate,
            },
            "shared_disk_cache": {
                "instr_hits": self.instr_disk_hits,
                "instr_misses": self.instr_disk_misses,
                "solver_hits": self.solver_disk_hits,
                "solver_misses": self.solver_disk_misses,
            },
            "per_worker": {
                str(worker_id): stats for worker_id, stats
                in sorted(self.per_worker_hit_rates().items())
            },
            "latency": self.latency_percentiles(),
            "resilience": {
                "worker_restarts": self.worker_restarts,
                "breaker_trips": self.breaker_trips,
                "breaker_recoveries": self.breaker_recoveries,
                "integrity_repairs": self.integrity_repairs,
                "journal_compactions": self.journal_compactions,
            },
            "traceir": {
                "traces_stored": self.traces_stored,
                "reverdicts": self.reverdicts,
                "trace_corruptions": self.trace_corruptions,
                "verdict_drift": self.verdict_drift,
                "insufficient_surface": self.insufficient_surface,
            },
            "overload": {
                "pressure": self.pressure,
                "shed_by_kind": dict(sorted(self.shed_by_kind.items())),
                "shed_total": self.shed_total(),
            },
        }

    def format(self) -> str:
        extras = "".join(
            f", {count} {label}" for count, label in
            ((self.failures, "failed"), (self.retries, "retried"),
             (self.quarantined, "quarantined")) if count)
        lines = [
            f"--- throughput (jobs={self.jobs}) ---",
            f"  campaigns     {self.campaigns} "
            f"({self.campaigns_per_sec:.2f}/s over {self.wall_s:.2f}s"
            f"{extras})",
            f"  instr cache   {self.instr_cache_hits} hits / "
            f"{self.instr_cache_misses} misses "
            f"({self.instr_cache_hit_rate:.1%})",
            f"  solver cache  {self.solver_cache_hits} hits / "
            f"{self.solver_cache_misses} misses "
            f"({self.solver_cache_hit_rate:.1%})",
        ]
        disk_total = (self.instr_disk_hits + self.instr_disk_misses
                      + self.solver_disk_hits + self.solver_disk_misses)
        if disk_total:
            lines.append(
                f"  disk cache    instr {self.instr_disk_hits}/"
                f"{self.instr_disk_hits + self.instr_disk_misses} hits, "
                f"solver {self.solver_disk_hits}/"
                f"{self.solver_disk_hits + self.solver_disk_misses} hits")
        for worker_id, stats in sorted(self.per_worker_hit_rates().items()):
            lines.append(
                f"  worker {worker_id:<7} {stats['tasks']} tasks, "
                f"cache hit rate {stats['hit_rate']:.1%}")
        healing = "".join(
            f", {count} {label}" for count, label in
            ((self.worker_restarts, "worker restarts"),
             (self.breaker_trips, "breaker trips"),
             (self.breaker_recoveries, "breaker recoveries"),
             (self.integrity_repairs, "integrity repairs"),
             (self.journal_compactions, "journal compactions"))
            if count)
        if healing:
            lines.append(f"  self-healing  {healing.lstrip(', ')}")
        traceir = "".join(
            f", {count} {label}" for count, label in
            ((self.traces_stored, "traces stored"),
             (self.reverdicts, "reverdicts"),
             (self.trace_corruptions, "trace corruptions"),
             (self.verdict_drift, "verdict drift"),
             (self.insufficient_surface, "insufficient surface"))
            if count)
        if traceir:
            lines.append(f"  trace IR      {traceir.lstrip(', ')}")
        if self.shed_by_kind or self.pressure != "normal":
            sheds = ", ".join(
                f"{count} {kind}" for kind, count in
                sorted(self.shed_by_kind.items()) if count)
            lines.append(f"  overload      pressure={self.pressure}"
                         + (f", shed: {sheds}" if sheds else ""))
        for stage in sorted(self.stage_seconds):
            lines.append(f"  stage {stage:<8} "
                         f"{self.stage_seconds[stage]:8.2f}s")
        for stage, stats in sorted(self.latency_percentiles().items()):
            lines.append(
                f"  latency {stage:<8} p50={stats['p50_s']:.3f}s "
                f"p95={stats['p95_s']:.3f}s max={stats['max_s']:.3f}s "
                f"(n={stats['n']})")
        return "\n".join(lines)


class MetricsTable:
    """Per-type confusion matrices for one tool, Table 4 style.

    Samples with no usable result (worker crash, timeout, quarantine)
    are *skipped*: excluded from the confusion counts — folding them
    in as "nothing detected" would silently skew recall — but listed
    in the formatted table with their failure reason, so a lossy run
    is visibly lossy.

    Samples whose campaign tripped the concolic divergence sentinel
    are *divergent*: also excluded from the confusion counts (the
    observation log is untrustworthy, so neither the positive nor the
    negative verdict can be credited), but reported as their own row
    class because the failure mode — trace/replay disagreement — is
    a different kind of loss than a crashed worker.
    """

    def __init__(self, tool: str, vuln_types: tuple[str, ...]):
        self.tool = tool
        self.per_type: dict[str, Confusion] = {t: Confusion()
                                               for t in vuln_types}
        self.skipped: dict[str, list[str]] = {}
        self.divergent: dict[str, list[str]] = {}

    def record(self, vuln_type: str, label: bool, predicted: bool) -> None:
        self.per_type[vuln_type].record(label, predicted)

    def skip(self, vuln_type: str, reason: str) -> None:
        """Report one sample excluded from the confusion counts."""
        self.skipped.setdefault(vuln_type, []).append(reason)

    def skipped_count(self) -> int:
        return sum(len(reasons) for reasons in self.skipped.values())

    def mark_divergent(self, vuln_type: str, reason: str) -> None:
        """Report one sample whose campaign tripped the sentinel."""
        self.divergent.setdefault(vuln_type, []).append(reason)

    def divergent_count(self) -> int:
        return sum(len(reasons) for reasons in self.divergent.values())

    def total(self) -> Confusion:
        out = Confusion()
        for confusion in self.per_type.values():
            out = out.merged(confusion)
        return out

    def false_positives(self, vuln_types=None) -> dict[str, int]:
        """Per-type false-positive counts, non-zero entries only.

        ``vuln_types`` restricts the query (e.g. to the enabled
        semantic oracle families); None means every recorded type.
        Backs the ``--fail-on-family-fp`` bench gate: any non-empty
        result is a family flagging a clean variant.
        """
        if vuln_types is None:
            selected = self.per_type.items()
        else:
            wanted = set(vuln_types)
            selected = ((t, c) for t, c in self.per_type.items()
                        if t in wanted)
        return {t: c.fp for t, c in selected if c.fp}

    def format(self) -> str:
        lines = [f"--- {self.tool} ---"]
        for vuln_type, confusion in self.per_type.items():
            lines.append(f"  {vuln_type:<13} n={confusion.total:<5} "
                         f"{confusion.counts_row()} {confusion.row()}")
        total = self.total()
        lines.append(f"  {'Total':<13} n={total.total:<5} "
                     f"{total.counts_row()} {total.row()}")
        if self.skipped:
            lines.append(f"  skipped       {self.skipped_count()} "
                         "(excluded from the counts above)")
            for vuln_type in sorted(self.skipped):
                for reason in self.skipped[vuln_type]:
                    lines.append(f"    {reason}")
        if self.divergent:
            lines.append(f"  divergent     {self.divergent_count()} "
                         "(sentinel tripped; excluded from the counts "
                         "above)")
            for vuln_type in sorted(self.divergent):
                for reason in self.divergent[vuln_type]:
                    lines.append(f"    {reason}")
        return "\n".join(lines)

"""Detection metrics: confusion counts, precision / recall / F1.

Used by the Table 4-6 benches to print the same rows the paper
reports.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Confusion", "MetricsTable"]


@dataclass
class Confusion:
    """A binary confusion matrix with the paper's P/R/F1 definitions."""

    tp: int = 0
    fp: int = 0
    tn: int = 0
    fn: int = 0

    def record(self, label: bool, predicted: bool) -> None:
        if label and predicted:
            self.tp += 1
        elif label and not predicted:
            self.fn += 1
        elif not label and predicted:
            self.fp += 1
        else:
            self.tn += 1

    @property
    def total(self) -> int:
        return self.tp + self.fp + self.tn + self.fn

    @property
    def precision(self) -> float:
        denominator = self.tp + self.fp
        return self.tp / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        denominator = self.tp + self.fn
        return self.tp / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if p + r else 0.0

    def merged(self, other: "Confusion") -> "Confusion":
        return Confusion(self.tp + other.tp, self.fp + other.fp,
                         self.tn + other.tn, self.fn + other.fn)

    def row(self) -> str:
        return (f"P={self.precision:6.1%} R={self.recall:6.1%} "
                f"F1={self.f1:6.1%}")


class MetricsTable:
    """Per-type confusion matrices for one tool, Table 4 style."""

    def __init__(self, tool: str, vuln_types: tuple[str, ...]):
        self.tool = tool
        self.per_type: dict[str, Confusion] = {t: Confusion()
                                               for t in vuln_types}

    def record(self, vuln_type: str, label: bool, predicted: bool) -> None:
        self.per_type[vuln_type].record(label, predicted)

    def total(self) -> Confusion:
        out = Confusion()
        for confusion in self.per_type.values():
            out = out.merged(confusion)
        return out

    def format(self) -> str:
        lines = [f"--- {self.tool} ---"]
        for vuln_type, confusion in self.per_type.items():
            lines.append(f"  {vuln_type:<13} n={confusion.total:<5} "
                         f"{confusion.row()}")
        total = self.total()
        lines.append(f"  {'Total':<13} n={total.total:<5} {total.row()}")
        return "\n".join(lines)

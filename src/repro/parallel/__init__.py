"""repro.parallel — fan independent campaigns out over worker processes.

The evaluation pipelines (``harness.evaluate_corpus``,
``study.run_wild_study``, the benchmark drivers and ``wasai bench
--jobs N``) all sit on this package:

* :mod:`repro.parallel.executor` — a supervised worker pool with
  ordered result collection, per-task timeout/crash isolation and a
  deterministic serial fallback for ``jobs=1``;
* :mod:`repro.parallel.campaigns` — the picklable campaign task/result
  payloads and the module-level worker function.
"""

from .campaigns import CampaignResult, CampaignTask, run_campaign_task
from .executor import TaskResult, default_jobs, run_tasks

__all__ = [
    "CampaignResult", "CampaignTask", "run_campaign_task",
    "TaskResult", "default_jobs", "run_tasks",
]

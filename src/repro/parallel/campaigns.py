"""Campaign task payloads for the parallel executor.

One :class:`CampaignTask` bundles everything a worker needs to run the
selected tools against one contract: the module, its ABI, the virtual
fuzzing budget and — crucially for determinism — the campaign's own RNG
seed.  Serial and parallel evaluation build the *same* task list with
the same per-sample seeds, so scheduling order can never leak into the
results; the harness folds worker outputs back in task order.

Workers also report per-stage wall-clock and the per-task cache-counter
deltas (instrumentation + solver).  Deltas, not absolute counters: each
worker process owns private caches, so only differences can be summed
meaningfully in the parent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..eosio.abi import Abi
from ..scanner import ScanResult
from ..wasm.module import Module

__all__ = ["CampaignTask", "CampaignResult", "run_campaign_task"]


@dataclass
class CampaignTask:
    """One sample's worth of tool runs, self-contained and picklable."""

    module: Module
    abi: Abi
    tools: tuple[str, ...]
    timeout_ms: float
    rng_seed: int
    address_pool: bool = False


@dataclass
class CampaignResult:
    """What a worker sends back: scans plus perf accounting."""

    scans: dict[str, ScanResult]
    stage_seconds: dict[str, float] = field(default_factory=dict)
    instr_cache_hits: int = 0
    instr_cache_misses: int = 0
    solver_cache_hits: int = 0
    solver_cache_misses: int = 0


def _cache_counters() -> tuple[int, int, int, int]:
    from ..engine.deploy import instrumentation_cache
    from ..smt.solver import solver_cache
    instr = instrumentation_cache()
    solver = solver_cache()
    return (instr.hits if instr else 0, instr.misses if instr else 0,
            solver.hits if solver else 0, solver.misses if solver else 0)


def run_campaign_task(task: CampaignTask) -> CampaignResult:
    """Run every requested tool on the task's contract.

    Module-level so it is importable under any multiprocessing start
    method.  The harness import is deferred to break the
    harness -> parallel -> harness cycle.
    """
    from .. import harness

    before = _cache_counters()
    stage_seconds: dict[str, float] = {}
    scans: dict[str, ScanResult] = {}
    for tool in task.tools:
        if tool == "wasai":
            run = harness.run_wasai(task.module, task.abi,
                                    timeout_ms=task.timeout_ms,
                                    rng_seed=task.rng_seed,
                                    address_pool=task.address_pool,
                                    timings=stage_seconds)
            scans[tool] = run.scan
        elif tool == "eosfuzzer":
            run = harness.run_eosfuzzer(task.module, task.abi,
                                        timeout_ms=task.timeout_ms,
                                        rng_seed=task.rng_seed,
                                        timings=stage_seconds)
            scans[tool] = run.scan
        elif tool == "eosafe":
            started = time.perf_counter()
            scans[tool] = harness.run_eosafe(task.module)
            stage_seconds["scan"] = stage_seconds.get("scan", 0.0) \
                + time.perf_counter() - started
        else:
            raise ValueError(f"unknown tool {tool!r}")
    after = _cache_counters()
    return CampaignResult(
        scans=scans,
        stage_seconds=stage_seconds,
        instr_cache_hits=after[0] - before[0],
        instr_cache_misses=after[1] - before[1],
        solver_cache_hits=after[2] - before[2],
        solver_cache_misses=after[3] - before[3],
    )

"""Campaign task payloads for the parallel executor.

One :class:`CampaignTask` bundles everything a worker needs to run the
selected tools against one contract: the module, its ABI, the virtual
fuzzing budget and — crucially for determinism — the campaign's own RNG
seed.  Serial and parallel evaluation build the *same* task list with
the same per-sample seeds, so scheduling order can never leak into the
results; the harness folds worker outputs back in task order.

Workers also report per-stage wall-clock and the per-task cache-counter
deltas (instrumentation + solver).  Deltas, not absolute counters: each
worker process owns private caches, so only differences can be summed
meaningfully in the parent.

Containment happens here, inside the worker: every tool run executes
under the task's :class:`~repro.resilience.ResiliencePolicy` — typed
:class:`~repro.resilience.CampaignError` failures are retried when
transient, a WASAI run that lost its symbolic/solver stage is re-run
as a pure black-box mutation campaign instead of failing the sample,
and whatever still fails is carried in ``CampaignResult.errors`` (with
the child traceback) rather than aborting the whole task.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from ..eosio.abi import Abi
from ..resilience import faultinject
from ..resilience.errors import (CampaignError, DeadlineExceeded,
                                 ScanError)
from ..resilience.policy import ResiliencePolicy, run_with_retry
from ..scanner import ScanResult
from ..wasm.module import Module

__all__ = ["CampaignTask", "CampaignResult", "run_campaign_task"]


@dataclass
class CampaignTask:
    """One sample's worth of tool runs, self-contained and picklable."""

    module: Module
    abi: Abi
    tools: tuple[str, ...]
    timeout_ms: float
    rng_seed: int
    address_pool: bool = False
    policy: ResiliencePolicy | None = None
    sample_key: str = ""      # human-readable sample id (fault scope)
    divergence_check: bool = True  # concolic divergence sentinel
    # Forced black-box mode: skip the symbolic/solver side entirely
    # and run WASAI as a pure mutation campaign.  Set by the scan
    # service while a circuit breaker on a degradable stage is open —
    # the stage is known-bad, so don't even attempt it.
    blackbox: bool = False
    # Opt-in trace capture: distill the finished campaign into a
    # durable trace-IR pack (repro.traceir) shipped alongside the
    # verdict, so scanner oracles can be replayed later with zero
    # re-fuzzing.  Does not alter the verdict or the task key.
    capture_traces: bool = False
    # Enabled oracle families (any spec repro.semoracle.resolve_oracles
    # accepts).  None — the default — means exactly the paper's five,
    # and keeps the task key byte-compatible with pre-semantic
    # journals and stores.
    oracles: "tuple | str | None" = None
    # Caller wall-clock deadline (absolute epoch seconds), propagated
    # end-to-end from the ``X-Deadline-Ms`` header.  Checked before
    # each tool run and once per fuzzing round, so an expired campaign
    # is cut short with a typed DeadlineExceeded instead of burning
    # the rest of its budget into the void.  Execution policy only —
    # never task-key material (campaign_task_key ignores it).
    deadline_epoch_s: float | None = None


@dataclass
class CampaignResult:
    """What a worker sends back: scans plus perf accounting.

    A tool that failed irrecoverably has no entry in ``scans`` and a
    serialized :class:`CampaignError` doc in ``errors`` instead; tools
    listed in ``degraded`` completed through the black-box fallback.
    """

    scans: dict[str, ScanResult]
    stage_seconds: dict[str, float] = field(default_factory=dict)
    instr_cache_hits: int = 0
    instr_cache_misses: int = 0
    solver_cache_hits: int = 0
    solver_cache_misses: int = 0
    # Shared on-disk tier deltas (repro.sharedcache): how much of this
    # task's work a sibling worker (or an earlier run) had already done.
    instr_disk_hits: int = 0
    instr_disk_misses: int = 0
    solver_disk_hits: int = 0
    solver_disk_misses: int = 0
    # The worker process that ran the task; lets the harness attribute
    # cache efficiency per worker (a cold worker shows up immediately).
    worker_id: int = 0
    errors: dict[str, dict] = field(default_factory=dict)
    degraded: tuple[str, ...] = ()
    retries: int = 0
    # tool -> coverage summary: the campaign's (virtual-time, covered
    # branch count) timeline plus totals, persisted by the scan
    # service's artifact store alongside the verdict.
    coverage: dict[str, dict] = field(default_factory=dict)
    # tool -> encoded trace-IR pack (only when the task opted in).
    traces: dict[str, bytes] = field(default_factory=dict)
    # How the verdict came to be: oracle + trace-IR versions and
    # whether it was produced fresh or replayed from a stored trace.
    provenance: "dict | None" = None


def _cache_counters() -> tuple[int, ...]:
    from ..engine.deploy import instrumentation_cache
    from ..smt.solver import solver_cache
    instr = instrumentation_cache()
    solver = solver_cache()
    return (instr.hits if instr else 0, instr.misses if instr else 0,
            solver.hits if solver else 0, solver.misses if solver else 0,
            instr.disk.hits if instr else 0,
            instr.disk.misses if instr else 0,
            solver.disk.hits if solver else 0,
            solver.disk.misses if solver else 0)


def _coverage_summary(report) -> dict:
    return {
        "iterations": report.iterations,
        "covered": len(report.covered),
        "timeline": [[t, n] for t, n in report.coverage_timeline],
    }


def _fresh_provenance(oracles=None) -> dict:
    """Provenance stamp for a verdict produced by actually fuzzing."""
    from ..scanner.oracles import ORACLE_VERSION
    from ..semoracle.registry import resolve_oracles
    from ..traceir.codec import TRACEIR_VERSION
    return {"oracle_version": ORACLE_VERSION,
            "traceir_version": TRACEIR_VERSION,
            "oracles": list(resolve_oracles(oracles)),
            "source": "fresh"}


def _tool_runner(tool: str, task: CampaignTask,
                 stage_seconds: dict[str, float], harness,
                 feedback: bool = True,
                 coverage: "dict[str, dict] | None" = None,
                 report_cell: "dict | None" = None):
    """A zero-argument closure running one tool once."""
    def run():
        if tool == "wasai":
            run_ = harness.run_wasai(
                task.module, task.abi,
                timeout_ms=task.timeout_ms,
                rng_seed=task.rng_seed,
                address_pool=task.address_pool,
                timings=stage_seconds,
                feedback=feedback,
                divergence_check=task.divergence_check,
                oracles=task.oracles,
                deadline_epoch_s=task.deadline_epoch_s)
            if coverage is not None:
                coverage[tool] = _coverage_summary(run_.report)
            if report_cell is not None:
                report_cell["report"] = run_.report
                report_cell["target"] = run_.target
            return run_.scan
        if tool == "eosfuzzer":
            run_ = harness.run_eosfuzzer(task.module, task.abi,
                                         timeout_ms=task.timeout_ms,
                                         rng_seed=task.rng_seed,
                                         timings=stage_seconds)
            if coverage is not None:
                coverage[tool] = _coverage_summary(run_.report)
            return run_.scan
        if tool == "eosafe":
            started = time.perf_counter()
            try:
                scan = harness.run_eosafe(task.module)
            except CampaignError:
                raise
            except Exception as exc:
                raise ScanError.wrap(exc, sample_id=task.sample_key
                                     or None)
            finally:
                stage_seconds["scan"] = stage_seconds.get("scan", 0.0) \
                    + time.perf_counter() - started
            return scan
        raise ValueError(f"unknown tool {tool!r}")
    return run


def run_campaign_task(task: CampaignTask) -> CampaignResult:
    """Run every requested tool on the task's contract, contained.

    Module-level so it is importable under any multiprocessing start
    method.  The harness import is deferred to break the
    harness -> parallel -> harness cycle.
    """
    from .. import harness

    policy = task.policy or ResiliencePolicy()
    faultinject.set_fault_scope(task.sample_key)
    try:
        before = _cache_counters()
        stage_seconds: dict[str, float] = {}
        scans: dict[str, ScanResult] = {}
        errors: dict[str, dict] = {}
        coverage: dict[str, dict] = {}
        degraded: list[str] = []
        retries = 0
        traces: dict[str, bytes] = {}
        for tool in task.tools:
            if task.deadline_epoch_s is not None \
                    and time.time() >= task.deadline_epoch_s:
                # The caller's deadline passed between tools (or the
                # job was dispatched already-expired): record the
                # typed cut-off instead of spending a fresh budget on
                # an answer nobody is waiting for.
                errors[tool] = DeadlineExceeded(
                    "caller deadline passed before the tool ran",
                    sample_id=task.sample_key or None,
                    deadline_epoch_s=task.deadline_epoch_s).to_doc()
                continue
            forced_blackbox = task.blackbox and tool == "wasai"
            report_cell: dict = {}
            runner = _tool_runner(tool, task, stage_seconds, harness,
                                  feedback=not forced_blackbox,
                                  coverage=coverage,
                                  report_cell=report_cell)
            scan, error, attempts = run_with_retry(runner, policy)
            if forced_blackbox and error is None:
                degraded.append(tool)
            retries += attempts - 1
            if error is not None and tool == "wasai" \
                    and policy.should_degrade(error):
                # The symbolic side is gone; the black-box mutation
                # loop (what EOSFuzzer always runs) still works —
                # degrade instead of dropping the sample.
                fallback = _tool_runner(tool, task, stage_seconds,
                                        harness, feedback=False,
                                        coverage=coverage)
                scan, fb_error, fb_attempts = run_with_retry(fallback,
                                                             policy)
                retries += fb_attempts - 1
                if fb_error is None:
                    degraded.append(tool)
                    errors[tool] = error.to_doc() | {"degraded": True}
                    error = None
                else:
                    error = fb_error
            if error is not None:
                errors[tool] = error.to_doc()
                continue
            fuzz_report = report_cell.get("report")
            if tool == "wasai" and tool not in degraded \
                    and fuzz_report is not None and fuzz_report.degraded:
                # The fuzzer absorbed repeated symbolic-feedback
                # failures and fell back to black-box mid-campaign.
                # Containment keeps the sample alive, but the failing
                # stage must still be visible at the campaign level —
                # the scan service's circuit breakers key off it.
                stages = fuzz_report.feedback_failure_stages
                stage = max(stages, key=stages.get) if stages \
                    else "symback"
                degraded.append(tool)
                errors[tool] = {
                    "type": ("SolverError" if stage == "solve"
                             else "SymbackError"),
                    "stage": stage,
                    "message": ("campaign degraded to black-box after "
                                f"{sum(stages.values())} contained "
                                f"{stage} failures"),
                    "sample_id": task.sample_key or None,
                    "retryable": False,
                    "degraded": True,
                }
            scans[tool] = scan
            if task.capture_traces and tool == "wasai" \
                    and tool not in degraded \
                    and report_cell.get("report") is not None \
                    and report_cell.get("target") is not None:
                # Degraded campaigns are excluded on purpose: their
                # verdicts are never cached, so a replay pack for
                # them would only ever disagree with a fresh scan.
                from ..traceir import build_trace_pack, encode_pack
                traces[tool] = encode_pack(build_trace_pack(
                    report_cell["report"], report_cell["target"]))
        after = _cache_counters()
        return CampaignResult(
            scans=scans,
            stage_seconds=stage_seconds,
            instr_cache_hits=after[0] - before[0],
            instr_cache_misses=after[1] - before[1],
            solver_cache_hits=after[2] - before[2],
            solver_cache_misses=after[3] - before[3],
            instr_disk_hits=after[4] - before[4],
            instr_disk_misses=after[5] - before[5],
            solver_disk_hits=after[6] - before[6],
            solver_disk_misses=after[7] - before[7],
            worker_id=os.getpid(),
            errors=errors,
            degraded=tuple(degraded),
            retries=retries,
            coverage=coverage,
            traces=traces,
            provenance=_fresh_provenance(task.oracles),
        )
    finally:
        faultinject.set_fault_scope("")

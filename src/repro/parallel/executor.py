"""A supervised worker-pool executor for independent campaigns.

WASAI's evaluation is embarrassingly parallel: every fuzzing campaign
owns a private chain, RNG and solver, so campaigns only meet again when
their results are folded into a metrics table.  :func:`run_tasks` fans a
list of task payloads out over ``jobs`` worker processes and returns one
:class:`TaskResult` per task, **in task order**, regardless of the order
in which workers finish.

Fault model
-----------

* A task that raises is reported as a failed :class:`TaskResult`; the
  worker survives and picks up the next task.
* A worker process that dies (segfault, ``os._exit``, OOM kill) takes
  down only the task it was running: the supervisor marks that task
  failed, spawns a replacement worker and carries on.
* ``timeout_s`` bounds the real wall-clock of a single task; an
  overrunning worker is terminated and replaced.
* With ``jobs=1`` (the default) everything runs serially in-process —
  no forking, no pickling — which doubles as the deterministic
  reference path the parallel tests compare against.

The supervisor assigns tasks over one duplex pipe per worker and hands
a worker its next index only after consuming the previous result.
``Connection.send`` writes synchronously (unlike ``Queue.put``, which
buffers in a feeder thread a crashing process silently kills), so a
completed task's result can never be lost to a later crash.  Task
payloads travel via the process start arguments (copy-on-write under
the ``fork`` start method); only indices and results cross the pipes.
Worker callables must be module-level functions and results must be
picklable.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
import traceback as _tb
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait as connection_wait
from typing import Any, Callable, Sequence

__all__ = ["TaskResult", "run_tasks", "default_jobs"]

# How long one supervisor poll waits for worker results (seconds).
_POLL_S = 0.05


@dataclass
class TaskResult:
    """Outcome of one task, successful or not.

    ``error_type`` is the failure's type name — the exception class
    for a task that raised, ``"TaskTimeout"`` for a worker killed by
    the wall-clock cap, ``"WorkerCrash"`` for a worker that died —
    so callers can dispatch on failure kind without string matching
    (``repro.resilience.task_result_error`` lifts it back into the
    typed taxonomy).  ``traceback`` carries the child's formatted
    traceback across the process boundary for raised exceptions.
    """

    index: int
    ok: bool
    value: Any = None
    error: str | None = None
    elapsed_s: float = 0.0
    error_type: str | None = None
    traceback: str | None = None

    def unwrap(self) -> Any:
        if not self.ok:
            raise RuntimeError(f"task {self.index} failed: {self.error}")
        return self.value


def default_jobs() -> int:
    """A sensible worker count for this machine (`--jobs 0` resolves
    here)."""
    return max(os.cpu_count() or 1, 1)


def _worker_loop(worker: Callable[[Any], Any], tasks: Sequence[Any],
                 conn) -> None:
    """Serve task indices from ``conn`` until the ``None`` sentinel."""
    while True:
        index = conn.recv()
        if index is None:
            return
        started = time.perf_counter()
        try:
            value = worker(tasks[index])
            # Surface an unpicklable result as an ordinary task failure
            # instead of blowing up inside Connection.send.
            pickle.dumps(value)
            message = (index, True, value, None, None, None,
                       time.perf_counter() - started)
        except BaseException as exc:  # noqa: BLE001 - isolate the task
            message = (index, False, None,
                       f"{type(exc).__name__}: {exc}",
                       type(exc).__name__, _tb.format_exc(),
                       time.perf_counter() - started)
        conn.send(message)


def _run_serial(worker: Callable[[Any], Any], tasks: Sequence[Any],
                on_result: Callable[[TaskResult], None] | None = None,
                ) -> list[TaskResult]:
    results = []
    for index, task in enumerate(tasks):
        started = time.perf_counter()
        try:
            value = worker(task)
            results.append(TaskResult(index, True, value,
                                      elapsed_s=time.perf_counter() - started))
        except Exception as exc:  # noqa: BLE001 - isolate the task
            results.append(TaskResult(index, False, None,
                                      f"{type(exc).__name__}: {exc}",
                                      time.perf_counter() - started,
                                      type(exc).__name__,
                                      _tb.format_exc()))
        if on_result is not None:
            on_result(results[-1])
    return results


class _Worker:
    """One pooled process plus its command/result pipe."""

    def __init__(self, context, worker, tasks):
        self.conn, child_conn = context.Pipe(duplex=True)
        self.proc = context.Process(target=_worker_loop,
                                    args=(worker, tasks, child_conn),
                                    daemon=True)
        self.proc.start()
        child_conn.close()
        self.current: tuple[int, float] | None = None  # (index, started)

    @property
    def idle(self) -> bool:
        return self.current is None

    def assign(self, index: int) -> bool:
        try:
            self.conn.send(index)
        except (BrokenPipeError, OSError):
            return False
        self.current = (index, time.monotonic())
        return True

    def retire(self) -> None:
        """Politely ask an idle worker to exit."""
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass

    def kill(self) -> None:
        if self.proc.is_alive():
            self.proc.terminate()
        self.proc.join()
        self.conn.close()


class _Supervisor:
    """The parent-side state machine behind :func:`run_tasks`."""

    def __init__(self, worker, tasks, jobs, timeout_s, on_result=None):
        self.worker = worker
        self.tasks = tasks
        self.jobs = jobs
        self.timeout_s = timeout_s
        self.on_result = on_result
        self.context = multiprocessing.get_context()
        self.pending: deque[int] = deque(range(len(tasks)))
        self.results: dict[int, TaskResult] = {}
        self.workers: list[_Worker] = []
        self.respawns = 0
        # A crash-looping worker function must not respawn forever.
        self.max_respawns = len(tasks) + jobs

    def _record(self, result: TaskResult) -> None:
        """Accept one task's outcome exactly once (first wins)."""
        if result.index in self.results:
            return
        self.results[result.index] = result
        if self.on_result is not None:
            self.on_result(result)

    def run(self) -> list[TaskResult]:
        try:
            self.workers = [self._spawn() for _ in range(self.jobs)]
            while len(self.results) < len(self.tasks):
                self._assign_work()
                self._pump_results()
                self._reap_dead()
                self._enforce_timeouts()
                self._maybe_refill()
        finally:
            self._shutdown()
        return [self.results[i] for i in range(len(self.tasks))]

    # -- pool management ---------------------------------------------------
    def _spawn(self) -> _Worker:
        return _Worker(self.context, self.worker, self.tasks)

    def _respawn_if_useful(self) -> None:
        if self.pending and self.respawns < self.max_respawns:
            self.respawns += 1
            self.workers.append(self._spawn())

    def _maybe_refill(self) -> None:
        """Keep the run alive if every worker died with tasks pending;
        fail whatever is left once the respawn budget is spent."""
        if self.workers or len(self.results) >= len(self.tasks):
            return
        self._respawn_if_useful()
        if not self.workers:
            unfinished = [i for i in range(len(self.tasks))
                          if i not in self.results]
            for index in unfinished:
                self._record(TaskResult(
                    index, False, None,
                    "worker pool died before the task completed",
                    error_type="WorkerCrash"))

    # -- scheduling --------------------------------------------------------
    def _assign_work(self) -> None:
        for worker in self.workers:
            if not self.pending:
                return
            if not worker.idle:
                continue
            if worker.assign(self.pending[0]):
                self.pending.popleft()
            # else: dead pipe — the reaper replaces the worker and the
            # index stays pending for someone else.

    def _pump_results(self) -> None:
        conns = [w.conn for w in self.workers]
        if not conns:
            time.sleep(_POLL_S)
            return
        for conn in connection_wait(conns, timeout=_POLL_S):
            worker = next(w for w in self.workers if w.conn is conn)
            try:
                index, ok, value, error, error_type, tb, elapsed \
                    = conn.recv()
            except (EOFError, OSError):
                continue  # worker died; the reaper handles it
            self._record(TaskResult(index, ok, value, error, elapsed,
                                    error_type, tb))
            worker.current = None

    def _reap_dead(self) -> None:
        for worker in list(self.workers):
            if worker.proc.is_alive():
                continue
            self.workers.remove(worker)
            worker.conn.close()
            if worker.current is not None:
                index = worker.current[0]
                self._record(TaskResult(
                    index, False, None,
                    f"worker died (exit code {worker.proc.exitcode})",
                    error_type="WorkerCrash"))
                self._respawn_if_useful()

    def _enforce_timeouts(self) -> None:
        if self.timeout_s is None:
            return
        now = time.monotonic()
        for worker in list(self.workers):
            if worker.current is None \
                    or now - worker.current[1] <= self.timeout_s:
                continue
            index, started = worker.current
            self.workers.remove(worker)
            worker.kill()
            self._record(TaskResult(
                index, False, None,
                f"timeout after {self.timeout_s:g}s",
                elapsed_s=now - started, error_type="TaskTimeout"))
            self._respawn_if_useful()

    def _shutdown(self) -> None:
        for worker in self.workers:
            if worker.idle:
                worker.retire()
        deadline = time.monotonic() + 1.0
        for worker in self.workers:
            worker.proc.join(max(0.0, deadline - time.monotonic()))
        for worker in self.workers:
            worker.kill()


def run_tasks(worker: Callable[[Any], Any], tasks: Sequence[Any],
              jobs: int = 1,
              timeout_s: float | None = None,
              on_result: Callable[[TaskResult], None] | None = None,
              ) -> list[TaskResult]:
    """Run ``worker(task)`` for every task; return ordered results.

    ``jobs`` <= 1 runs serially in-process.  ``jobs=0`` means "one per
    CPU" (see :func:`default_jobs`).  ``timeout_s`` bounds each task's
    wall-clock in the parallel path.  ``on_result``, when given, is
    invoked in the supervising process exactly once per task as its
    result lands (completion order, not task order) — the hook the
    checkpoint journal uses, so an interrupted run keeps everything
    that finished before the interruption.
    """
    tasks = list(tasks)
    if jobs == 0:
        jobs = default_jobs()
    if not tasks:
        return []
    if jobs <= 1:
        return _run_serial(worker, tasks, on_result)
    # Asking for parallelism buys process isolation (and timeout
    # enforcement) even when fewer tasks than workers remain — retry
    # rounds re-running a single crashing task must not fall back to
    # in-process execution.
    jobs = min(jobs, len(tasks))
    return _Supervisor(worker, tasks, jobs, timeout_s, on_result).run()

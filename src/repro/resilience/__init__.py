"""repro.resilience — the fault-tolerant campaign layer.

At the scale the evaluation targets (hour-long wild studies, thousands
of independent campaigns) a single crashing contract, hung solver or
killed worker must neither sink the run nor silently skew the tables.
This package makes every corpus-scale pipeline survivable:

* :mod:`repro.resilience.errors` — the structured
  :class:`CampaignError` taxonomy (stage, sample, retryability,
  captured traceback) the whole pipeline raises instead of ad-hoc
  exceptions;
* :mod:`repro.resilience.policy` — :class:`ResiliencePolicy` (bounded
  retry with deterministic backoff, black-box degradation,
  quarantine thresholds) and the :class:`Quarantine` ledger;
* :mod:`repro.resilience.journal` — the append-only JSONL
  checkpoint/resume journal keyed by sample + config hash;
* :mod:`repro.resilience.runner` — :func:`run_resilient_tasks`, the
  containment wrapper around the parallel executor;
* :mod:`repro.resilience.faultinject` — the deterministic
  fault-injection harness ``tests/resilience`` uses to prove every
  containment path.
"""

from .errors import (CampaignError, DEGRADABLE_STAGES, DeadlineExceeded,
                     DeployError, DivergenceError, FuzzError,
                     InstrumentError, MalformedModule, STAGES, ScanError,
                     SolverError, SymbackError, TaskTimeout,
                     TraceCorruption, TrapStorm, WorkerCrash,
                     task_result_error)
from .faultinject import (Fault, FaultPlan, WorkerKill,
                          clear_fault_plan, fault_plan, fault_scope,
                          inject, install_fault_plan, set_fault_scope)
from .journal import (CampaignJournal, campaign_result_from_doc,
                      campaign_result_to_doc, campaign_task_key)
from .policy import Quarantine, ResiliencePolicy, run_with_retry
from .runner import ResilientRun, run_resilient_tasks

__all__ = [
    "CampaignError", "MalformedModule", "InstrumentError", "DeployError",
    "FuzzError", "TrapStorm", "SymbackError", "SolverError",
    "DivergenceError", "ScanError", "TraceCorruption", "TaskTimeout",
    "WorkerCrash", "DeadlineExceeded", "STAGES", "DEGRADABLE_STAGES",
    "task_result_error",
    "Fault", "FaultPlan", "WorkerKill", "install_fault_plan",
    "clear_fault_plan",
    "fault_plan", "set_fault_scope", "fault_scope", "inject",
    "CampaignJournal", "campaign_task_key", "campaign_result_to_doc",
    "campaign_result_from_doc",
    "ResiliencePolicy", "Quarantine", "run_with_retry",
    "ResilientRun", "run_resilient_tasks",
]

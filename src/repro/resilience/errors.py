"""The structured campaign error taxonomy.

Every failure inside an evaluation campaign is represented as a
:class:`CampaignError`: a typed exception carrying the pipeline
*stage* it arose in, the *sample* it belongs to, whether a retry can
plausibly help, and the captured traceback of the original exception.
The harness, the parallel executor, the solver and Symback all raise
(or wrap into) these instead of ad-hoc exceptions, so containment
policy decisions — retry, degrade to black-box fuzzing, quarantine —
can be made on structure rather than on string matching.

Stages mirror the pipeline: ``instrument`` -> ``deploy`` -> ``fuzz``
(-> ``symback`` -> ``solve`` per iteration) -> ``scan``; ``task`` is
the executor-level envelope (worker crash / wall-clock timeout).
"""

from __future__ import annotations

import traceback as _tb

__all__ = [
    "CampaignError", "InstrumentError", "DeployError", "FuzzError",
    "TrapStorm", "SymbackError", "SolverError", "ScanError",
    "TaskTimeout", "WorkerCrash", "STAGES", "DEGRADABLE_STAGES",
    "task_result_error",
]

# Pipeline stages, in execution order, plus the executor envelope.
STAGES = ("instrument", "deploy", "fuzz", "symback", "solve", "scan",
          "task")

# Stages whose failure leaves the black-box mutation loop intact: a
# campaign that cannot replay or solve can still fuzz (ConFuzzius-style
# graceful degradation; EOSFuzzer *is* that loop).
DEGRADABLE_STAGES = frozenset({"symback", "solve"})


class CampaignError(Exception):
    """Base of the taxonomy; subclasses pin ``stage`` / ``retryable``."""

    stage: str = "campaign"
    retryable: bool = False

    def __init__(self, message: str = "", *, stage: str | None = None,
                 sample_id: str | None = None,
                 retryable: bool | None = None,
                 traceback_str: str | None = None):
        super().__init__(message)
        if stage is not None:
            self.stage = stage
        if retryable is not None:
            self.retryable = retryable
        self.sample_id = sample_id
        self.traceback_str = traceback_str

    @classmethod
    def wrap(cls, exc: BaseException, *, sample_id: str | None = None,
             retryable: bool | None = None) -> "CampaignError":
        """Lift an in-flight exception into the taxonomy.

        An exception that already is a :class:`CampaignError` passes
        through unchanged (its stage is more precise than the
        wrapper's); anything else is captured together with its
        formatted traceback.  Call only from an ``except`` block.
        """
        if isinstance(exc, CampaignError):
            if sample_id is not None and exc.sample_id is None:
                exc.sample_id = sample_id
            return exc
        return cls(f"{type(exc).__name__}: {exc}", sample_id=sample_id,
                   retryable=retryable, traceback_str=_tb.format_exc())

    # -- serialization (journal / cross-process reporting) -----------------
    def to_doc(self) -> dict:
        return {
            "type": type(self).__name__,
            "stage": self.stage,
            "message": str(self),
            "sample_id": self.sample_id,
            "retryable": self.retryable,
            "traceback": self.traceback_str,
        }

    @staticmethod
    def from_doc(doc: dict) -> "CampaignError":
        cls = _REGISTRY.get(doc.get("type", ""), CampaignError)
        return cls(doc.get("message", ""), stage=doc.get("stage"),
                   sample_id=doc.get("sample_id"),
                   retryable=doc.get("retryable"),
                   traceback_str=doc.get("traceback"))

    def __str__(self) -> str:
        base = super().__str__()
        where = f"[{self.stage}"
        if self.sample_id:
            where += f" {self.sample_id}"
        return f"{where}] {base}"


class InstrumentError(CampaignError):
    """The bin -> bin' rewrite failed for this module."""

    stage = "instrument"


class DeployError(CampaignError):
    """Chain setup or contract deployment failed."""

    stage = "deploy"


class FuzzError(CampaignError):
    """The fuzzing loop itself failed (not one contained iteration)."""

    stage = "fuzz"


class TrapStorm(FuzzError):
    """A victim execution trapped in a way the loop must contain."""


class SymbackError(CampaignError):
    """Symbolic trace replay failed; black-box fuzzing still works."""

    stage = "symback"


class SolverError(CampaignError):
    """The constraint solver failed; black-box fuzzing still works."""

    stage = "solve"


class ScanError(CampaignError):
    """The vulnerability scan over the observation log failed."""

    stage = "scan"


class TaskTimeout(CampaignError):
    """The executor killed an overrunning worker (real wall-clock)."""

    stage = "task"
    retryable = True

    def __init__(self, message: str = "", *, elapsed_s: float = 0.0,
                 **kwargs):
        super().__init__(message, **kwargs)
        self.elapsed_s = elapsed_s

    def to_doc(self) -> dict:
        doc = super().to_doc()
        doc["elapsed_s"] = self.elapsed_s
        return doc


class WorkerCrash(CampaignError):
    """A worker process died (segfault, ``os._exit``, OOM kill)."""

    stage = "task"
    retryable = True

    def __init__(self, message: str = "", *, exitcode: int | None = None,
                 **kwargs):
        super().__init__(message, **kwargs)
        self.exitcode = exitcode

    def to_doc(self) -> dict:
        doc = super().to_doc()
        doc["exitcode"] = self.exitcode
        return doc


_REGISTRY = {cls.__name__: cls for cls in (
    CampaignError, InstrumentError, DeployError, FuzzError, TrapStorm,
    SymbackError, SolverError, ScanError, TaskTimeout, WorkerCrash)}


def task_result_error(result) -> CampaignError | None:
    """Materialise the typed error of a failed ``TaskResult``.

    The executor stays layer-agnostic (it reports ``error_type`` as a
    string); this is where those strings come back to the taxonomy.
    Returns None for a successful result.
    """
    if result.ok:
        return None
    kind = result.error_type or ""
    message = result.error or "task failed"
    if kind == "TaskTimeout":
        return TaskTimeout(message, elapsed_s=result.elapsed_s,
                           traceback_str=result.traceback)
    if kind == "WorkerCrash":
        return WorkerCrash(message, traceback_str=result.traceback)
    cls = _REGISTRY.get(kind, CampaignError)
    return cls(message, traceback_str=result.traceback)

"""The structured campaign error taxonomy.

Every failure inside an evaluation campaign is represented as a
:class:`CampaignError`: a typed exception carrying the pipeline
*stage* it arose in, the *sample* it belongs to, whether a retry can
plausibly help, and the captured traceback of the original exception.
The harness, the parallel executor, the solver and Symback all raise
(or wrap into) these instead of ad-hoc exceptions, so containment
policy decisions — retry, degrade to black-box fuzzing, quarantine —
can be made on structure rather than on string matching.

Stages mirror the pipeline: ``instrument`` -> ``deploy`` -> ``fuzz``
(-> ``symback`` -> ``solve`` per iteration) -> ``scan``; ``task`` is
the executor-level envelope (worker crash / wall-clock timeout).
"""

from __future__ import annotations

import traceback as _tb

__all__ = [
    "CampaignError", "MalformedModule", "InstrumentError", "DeployError",
    "FuzzError", "TrapStorm", "SymbackError", "SolverError",
    "DivergenceError", "ScanError", "TraceCorruption", "TaskTimeout",
    "WorkerCrash", "DeadlineExceeded", "STAGES", "DEGRADABLE_STAGES",
    "task_result_error",
]

# Pipeline stages, in execution order, plus the executor envelope.
# ``ingest`` precedes instrumentation: it is where untrusted bytes are
# parsed and validated under budget.  ``divergence`` is raised out of
# symbolic replay but is policed separately from ``symback`` because it
# must never be degraded away (a diverged replay means the *oracles*
# would lie, not that replay is merely unavailable).  ``trace`` is the
# durable trace IR layer: decoding a stored/offline trace back into
# events, which can fail independently of the run that produced it.
STAGES = ("ingest", "instrument", "deploy", "fuzz", "symback", "solve",
          "divergence", "trace", "scan", "deadline", "task")

# Stages whose failure leaves the black-box mutation loop intact: a
# campaign that cannot replay or solve can still fuzz (ConFuzzius-style
# graceful degradation; EOSFuzzer *is* that loop).
DEGRADABLE_STAGES = frozenset({"symback", "solve"})


class CampaignError(Exception):
    """Base of the taxonomy; subclasses pin ``stage`` / ``retryable``."""

    stage: str = "campaign"
    retryable: bool = False

    def __init__(self, message: str = "", *, stage: str | None = None,
                 sample_id: str | None = None,
                 retryable: bool | None = None,
                 traceback_str: str | None = None):
        super().__init__(message)
        if stage is not None:
            self.stage = stage
        if retryable is not None:
            self.retryable = retryable
        self.sample_id = sample_id
        self.traceback_str = traceback_str

    @classmethod
    def wrap(cls, exc: BaseException, *, sample_id: str | None = None,
             retryable: bool | None = None) -> "CampaignError":
        """Lift an in-flight exception into the taxonomy.

        An exception that already is a :class:`CampaignError` passes
        through unchanged (its stage is more precise than the
        wrapper's); anything else is captured together with its
        formatted traceback.  Call only from an ``except`` block.
        """
        if isinstance(exc, CampaignError):
            if sample_id is not None and exc.sample_id is None:
                exc.sample_id = sample_id
            return exc
        return cls(f"{type(exc).__name__}: {exc}", sample_id=sample_id,
                   retryable=retryable, traceback_str=_tb.format_exc())

    # -- serialization (journal / cross-process reporting) -----------------
    def to_doc(self) -> dict:
        return {
            "type": type(self).__name__,
            "stage": self.stage,
            "message": str(self),
            "sample_id": self.sample_id,
            "retryable": self.retryable,
            "traceback": self.traceback_str,
        }

    @staticmethod
    def from_doc(doc: dict) -> "CampaignError":
        cls = _REGISTRY.get(doc.get("type", ""), CampaignError)
        error = cls(doc.get("message", ""), stage=doc.get("stage"),
                    sample_id=doc.get("sample_id"),
                    retryable=doc.get("retryable"),
                    traceback_str=doc.get("traceback"))
        # Subclass payload fields (offset/section, pc/opcode, ...)
        # round-trip without each subclass writing its own from_doc.
        for extra in ("offset", "section", "func_index", "pc", "opcode",
                      "shadow", "traced", "elapsed_s", "exitcode",
                      "path", "line", "deadline_epoch_s"):
            if extra in doc and hasattr(error, extra):
                setattr(error, extra, doc[extra])
        return error

    def __str__(self) -> str:
        base = super().__str__()
        where = f"[{self.stage}"
        if self.sample_id:
            where += f" {self.sample_id}"
        return f"{where}] {base}"


class MalformedModule(CampaignError):
    """Untrusted bytes were rejected during sandboxed ingestion.

    Raised by :func:`repro.wasm.hardening.load_untrusted_module` for
    every way a hostile binary can fail to become a budgeted, validated
    :class:`~repro.wasm.module.Module`: parse errors, budget
    violations, validation failures, and any raw Python exception
    (``IndexError``, ``RecursionError``, ``MemoryError``, ...) escaping
    those layers.  Never retryable — the bytes will not improve.
    ``offset`` is the absolute byte offset of the defect when known;
    ``section`` names the section being decoded.
    """

    stage = "ingest"
    retryable = False

    def __init__(self, message: str = "", *, offset: int | None = None,
                 section: str | None = None, **kwargs):
        super().__init__(message, **kwargs)
        self.offset = offset
        self.section = section

    def to_doc(self) -> dict:
        doc = super().to_doc()
        doc["offset"] = self.offset
        doc["section"] = self.section
        return doc

    def __str__(self) -> str:
        base = super().__str__()
        context = []
        if self.section is not None:
            context.append(f"section={self.section}")
        if self.offset is not None:
            context.append(f"byte={self.offset}")
        return f"{base} ({', '.join(context)})" if context else base


class InstrumentError(CampaignError):
    """The bin -> bin' rewrite failed for this module."""

    stage = "instrument"


class DeployError(CampaignError):
    """Chain setup or contract deployment failed."""

    stage = "deploy"


class FuzzError(CampaignError):
    """The fuzzing loop itself failed (not one contained iteration)."""

    stage = "fuzz"


class TrapStorm(FuzzError):
    """A victim execution trapped in a way the loop must contain."""


class SymbackError(CampaignError):
    """Symbolic trace replay failed; black-box fuzzing still works."""

    stage = "symback"


class SolverError(CampaignError):
    """The constraint solver failed; black-box fuzzing still works."""

    stage = "solve"


class DivergenceError(CampaignError):
    """Symbolic replay's concrete shadow disagreed with the trace.

    The divergence sentinel cross-checks fully-concrete symbolic
    values against the recorded concrete operands at branch, memory-op
    and host-call checkpoints.  A mismatch means the symbolic machine
    is no longer simulating the execution the interpreter actually
    ran, so every oracle verdict derived from that trace would be
    unsound.  The trace is quarantined, never degraded to black-box
    (``divergence`` is deliberately absent from
    :data:`DEGRADABLE_STAGES`) and never retried.  ``func_index`` /
    ``pc`` / ``opcode`` locate the first diverging checkpoint;
    ``shadow`` / ``traced`` are the disagreeing concrete values.
    """

    stage = "divergence"
    retryable = False

    def __init__(self, message: str = "", *, func_index: int | None = None,
                 pc: int | None = None, opcode: str | None = None,
                 shadow: int | None = None, traced: int | None = None,
                 **kwargs):
        super().__init__(message, **kwargs)
        self.func_index = func_index
        self.pc = pc
        self.opcode = opcode
        self.shadow = shadow
        self.traced = traced

    def to_doc(self) -> dict:
        doc = super().to_doc()
        doc["func_index"] = self.func_index
        doc["pc"] = self.pc
        doc["opcode"] = self.opcode
        doc["shadow"] = self.shadow
        doc["traced"] = self.traced
        return doc

    def __str__(self) -> str:
        base = super().__str__()
        if self.opcode is not None:
            base += (f" at func {self.func_index} pc {self.pc} "
                     f"({self.opcode})")
        return base


class ScanError(CampaignError):
    """The vulnerability scan over the observation log failed."""

    stage = "scan"


class TraceCorruption(CampaignError):
    """A stored trace failed to decode losslessly back into events.

    Raised by the trace IR codec (:mod:`repro.traceir`) and the
    offline trace-file loaders for every way a durable trace can rot:
    truncation, a flipped bit caught by a section CRC, an unknown
    ``TRACEIR_VERSION``, a malformed JSONL line, framing that runs
    past the blob.  Never retryable — the bytes on disk will not
    improve — and never degradable: a trace that cannot be decoded
    must be quarantined and its module re-scanned, because *any*
    events recovered from it could make the oracles lie.  ``path`` /
    ``line`` locate the defect in an offline trace file; ``section``
    / ``offset`` locate it inside an IR blob.
    """

    stage = "trace"
    retryable = False

    def __init__(self, message: str = "", *, path: str | None = None,
                 line: int | None = None, section: str | None = None,
                 offset: int | None = None, **kwargs):
        super().__init__(message, **kwargs)
        self.path = path
        self.line = line
        self.section = section
        self.offset = offset

    def to_doc(self) -> dict:
        doc = super().to_doc()
        doc["path"] = self.path
        doc["line"] = self.line
        doc["section"] = self.section
        doc["offset"] = self.offset
        return doc

    def __str__(self) -> str:
        base = super().__str__()
        context = []
        if self.path is not None:
            context.append(f"path={self.path}")
        if self.line is not None:
            context.append(f"line={self.line}")
        if self.section is not None:
            context.append(f"section={self.section}")
        if self.offset is not None:
            context.append(f"byte={self.offset}")
        return f"{base} ({', '.join(context)})" if context else base


class TaskTimeout(CampaignError):
    """The executor killed an overrunning worker (real wall-clock)."""

    stage = "task"
    retryable = True

    def __init__(self, message: str = "", *, elapsed_s: float = 0.0,
                 **kwargs):
        super().__init__(message, **kwargs)
        self.elapsed_s = elapsed_s

    def to_doc(self) -> dict:
        doc = super().to_doc()
        doc["elapsed_s"] = self.elapsed_s
        return doc


class DeadlineExceeded(CampaignError):
    """The caller's wall-clock deadline passed before the work finished.

    Unlike :class:`TaskTimeout` (the service's own per-task watchdog,
    which retries because the *next* attempt may fit the budget), a
    caller deadline is absolute: once it has passed nobody is waiting
    for the answer, so the job must terminate with a typed
    ``deadline_exceeded`` doc and never consume a fresh campaign
    budget.  Never retryable, never degradable, and ``deadline`` is
    deliberately absent from the circuit-breaker stages — an impatient
    caller is not a pipeline fault.  ``deadline_epoch_s`` is the
    absolute wall-clock deadline; ``elapsed_s`` is how much work (if
    any) was burned before the cut-off was noticed.
    """

    stage = "deadline"
    retryable = False

    def __init__(self, message: str = "", *,
                 deadline_epoch_s: float | None = None,
                 elapsed_s: float = 0.0, **kwargs):
        super().__init__(message, **kwargs)
        self.deadline_epoch_s = deadline_epoch_s
        self.elapsed_s = elapsed_s

    def to_doc(self) -> dict:
        doc = super().to_doc()
        doc["deadline_epoch_s"] = self.deadline_epoch_s
        doc["elapsed_s"] = self.elapsed_s
        return doc


class WorkerCrash(CampaignError):
    """A worker process died (segfault, ``os._exit``, OOM kill)."""

    stage = "task"
    retryable = True

    def __init__(self, message: str = "", *, exitcode: int | None = None,
                 **kwargs):
        super().__init__(message, **kwargs)
        self.exitcode = exitcode

    def to_doc(self) -> dict:
        doc = super().to_doc()
        doc["exitcode"] = self.exitcode
        return doc


_REGISTRY = {cls.__name__: cls for cls in (
    CampaignError, MalformedModule, InstrumentError, DeployError,
    FuzzError, TrapStorm, SymbackError, SolverError, DivergenceError,
    ScanError, TraceCorruption, TaskTimeout, WorkerCrash,
    DeadlineExceeded)}


def task_result_error(result) -> CampaignError | None:
    """Materialise the typed error of a failed ``TaskResult``.

    The executor stays layer-agnostic (it reports ``error_type`` as a
    string); this is where those strings come back to the taxonomy.
    Returns None for a successful result.
    """
    if result.ok:
        return None
    kind = result.error_type or ""
    message = result.error or "task failed"
    if kind == "TaskTimeout":
        return TaskTimeout(message, elapsed_s=result.elapsed_s,
                           traceback_str=result.traceback)
    if kind == "WorkerCrash":
        return WorkerCrash(message, traceback_str=result.traceback)
    cls = _REGISTRY.get(kind, CampaignError)
    return cls(message, traceback_str=result.traceback)

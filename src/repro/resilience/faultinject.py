"""Deterministic fault injection for the evaluation pipeline.

The pipeline calls :func:`inject` at its chokepoints (instrumentation,
deployment, the fuzz loop, victim execution, symbolic replay, solver
checks, scanning).  With no plan installed — the production default —
``inject`` is a single global load and a return.  Tests install a
:class:`FaultPlan` to force failures at chosen points:

``Fault(stage="solve", kind="error")``
    every solver check raises :class:`~repro.resilience.errors.SolverError`;
``Fault(stage="fuzz", kind="crash", match="fake_eos[3]")``
    the worker running that sample dies with ``os._exit``;
``Fault(stage="fuzz", kind="abort", after=4)``
    the fifth fuzz stage raises ``KeyboardInterrupt`` (a simulated ^C,
    for checkpoint/resume tests);
``Fault(stage="fuzz", kind="count")``
    never fails — counts hits, so tests can assert "no recomputation".

Determinism: faults trigger on exact per-fault hit counters within the
installing process (worker processes inherit the plan through ``fork``
and count their own hits), and ``match`` selects samples through the
fault *scope* — a process-local key the campaign runner sets to the
sample id before running each task.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from .errors import (CampaignError, DeployError, DivergenceError,
                     FuzzError, InstrumentError, MalformedModule,
                     ScanError, SolverError, SymbackError, TrapStorm)

__all__ = ["Fault", "FaultPlan", "WorkerKill", "install_fault_plan",
           "clear_fault_plan", "fault_plan", "set_fault_scope",
           "fault_scope", "inject", "should_corrupt"]


class WorkerKill(BaseException):
    """Simulated in-thread worker death (service-scope chaos fault).

    Deliberately a ``BaseException``: it must sail past every
    ``except Exception`` containment layer, exactly like a real
    thread-killing condition would, so the supervisor's watchdog — not
    a try block — is what saves the job.
    """

_STAGE_ERRORS = {
    "ingest": MalformedModule,
    "instrument": InstrumentError,
    "deploy": DeployError,
    "fuzz": FuzzError,
    "symback": SymbackError,
    "solve": SolverError,
    "divergence": DivergenceError,
    "scan": ScanError,
    "trap": TrapStorm,
}

# "corrupt" is acted on by data-plane chokepoints (should_corrupt),
# not by inject(): the caller flips recorded data instead of raising,
# so the seeded defect travels the same path a real divergence would.
# "kill" raises WorkerKill (a BaseException) — the service-scope
# worker-death fault the chaos harness fires at the worker-loop
# chokepoint ("worker"); other service-scope chokepoints are "disk"
# (store disk-budget guard), "journal" (checkpoint writes) and the
# data-plane "store" corruption seed.
FAULT_KINDS = ("error", "transient", "trap_storm", "hang", "crash",
               "abort", "count", "corrupt", "kill")


@dataclass(frozen=True)
class Fault:
    """One injection rule: *where* (stage + scope match) and *what*."""

    stage: str
    kind: str = "error"        # see FAULT_KINDS
    match: str | None = None   # substring of the fault scope; None = any
    times: int | None = None   # trigger only the first N matches
    after: int = 0             # skip the first `after` matches
    hang_s: float = 30.0       # sleep length for kind="hang"
    message: str = "injected fault"

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")


class FaultPlan:
    """An installed set of faults plus their deterministic counters."""

    def __init__(self, faults: tuple[Fault, ...]):
        self.faults = faults
        self._hits: dict[int, int] = {}
        self.stage_hits: dict[str, int] = {}

    def fire(self, stage: str, scope: str) -> Fault | None:
        """Count this chokepoint hit; return the fault to act on."""
        self.stage_hits[stage] = self.stage_hits.get(stage, 0) + 1
        for i, fault in enumerate(self.faults):
            if fault.stage != stage:
                continue
            if fault.match is not None and fault.match not in scope:
                continue
            seen = self._hits.get(i, 0)
            self._hits[i] = seen + 1
            if seen < fault.after:
                continue
            if fault.times is not None \
                    and seen >= fault.after + fault.times:
                continue
            return fault
        return None

    def hits(self, stage: str) -> int:
        """How many times a pipeline stage was reached (any fault)."""
        return self.stage_hits.get(stage, 0)


_PLAN: FaultPlan | None = None
_SCOPE: str = ""


def install_fault_plan(*faults: Fault) -> FaultPlan:
    """Install (replacing) the process-wide fault plan."""
    global _PLAN
    _PLAN = FaultPlan(tuple(faults))
    return _PLAN


def clear_fault_plan() -> None:
    global _PLAN
    _PLAN = None


def fault_plan() -> FaultPlan | None:
    return _PLAN


def set_fault_scope(key: str) -> None:
    """Name the sample the current code is working on behalf of."""
    global _SCOPE
    _SCOPE = key


class fault_scope:
    """Context-manager form of :func:`set_fault_scope`."""

    def __init__(self, key: str):
        self.key = key

    def __enter__(self):
        global _SCOPE
        self.previous = _SCOPE
        _SCOPE = self.key
        return self

    def __exit__(self, *exc_info):
        global _SCOPE
        _SCOPE = self.previous
        return False


def should_corrupt(stage: str) -> bool:
    """Data-plane chokepoint: should the caller corrupt its payload?

    Used to seed trace corruption for divergence-sentinel tests: the
    fuzzer asks before decoding each recorded trace and, when a
    ``kind="corrupt"`` fault matches, flips recorded operands so the
    sentinel has a real mismatch to catch.
    """
    plan = _PLAN
    if plan is None:
        return False
    fault = plan.fire(stage, _SCOPE)
    return fault is not None and fault.kind == "corrupt"


def inject(stage: str) -> None:
    """Pipeline chokepoint: act on the installed plan, if any."""
    plan = _PLAN
    if plan is None:
        return
    fault = plan.fire(stage, _SCOPE)
    if fault is None or fault.kind in ("count", "corrupt"):
        return
    if fault.kind == "hang":
        time.sleep(fault.hang_s)
        return
    if fault.kind == "crash":
        os._exit(86)
    if fault.kind == "kill":
        raise WorkerKill(f"injected worker kill at {stage}")
    if fault.kind == "abort":
        raise KeyboardInterrupt(f"injected abort at {stage}")
    error_cls = _STAGE_ERRORS.get(stage, CampaignError)
    if fault.kind == "trap_storm":
        error_cls = TrapStorm
    raise error_cls(fault.message, stage=None if stage in _STAGE_ERRORS
                    else stage, sample_id=_SCOPE or None,
                    retryable=fault.kind == "transient")

"""Checkpoint/resume journal for corpus-scale evaluations.

An append-only JSONL file: one line per *completed* campaign task,
keyed by a hash of everything that determines the task's result (the
module's content fingerprint, the tool set, the virtual budget, the
RNG seed, the address-pool flag).  Because campaigns are deterministic
in that key, a journaled result can be reused verbatim: a resumed run
skips the journaled samples and still produces tables byte-identical
to an uninterrupted run.

The format is crash-tolerant by construction — a run killed mid-write
leaves at most one truncated final line, which :meth:`load` skips.
Unknown versions and malformed lines are ignored rather than fatal, so
a journal can survive format evolution across PRs.

This module deliberately imports nothing from the rest of the package
at import time (the campaign layer imports :mod:`repro.resilience`).
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
from pathlib import Path

__all__ = ["CampaignJournal", "campaign_task_key",
           "campaign_result_to_doc", "campaign_result_from_doc"]

_VERSION = 1


class CampaignJournal:
    """Append-only JSONL of completed campaign results."""

    def __init__(self, path: "str | Path"):
        self.path = Path(path)

    def load(self) -> dict[str, dict]:
        """All readable entries, last-wins per key."""
        entries: dict[str, dict] = {}
        if not self.path.exists():
            return entries
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                except ValueError:
                    continue  # truncated tail from a killed run
                if not isinstance(doc, dict) or doc.get("v") != _VERSION:
                    continue
                key = doc.get("key")
                if isinstance(key, str):
                    entries[key] = doc
        return entries

    def record(self, key: str, result_doc: dict) -> None:
        """Append one completed result (flushed line-atomically).

        The write passes the ``journal`` fault-injection chokepoint so
        chaos schedules can simulate a full disk / failing fsync; a
        real ``OSError`` propagates typed to the caller the same way.
        """
        from .faultinject import inject
        inject("journal")
        doc = {"v": _VERSION, "key": key, "result": result_doc}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(doc, sort_keys=True) + "\n")
            handle.flush()

    def compact(self) -> int:
        """Rewrite the journal keeping only the last-wins line per key.

        An append-only journal under a long-lived service grows without
        bound (every retry checkpoint, claim tombstone and verdict
        record appends a line, even when it supersedes an earlier one).
        Compaction is crash-safe: the survivors are written to a
        sibling temp file which atomically replaces the journal, so a
        kill mid-compaction leaves either the old file or the new one,
        never a mix.  Returns the number of superseded lines removed.
        """
        if not self.path.exists():
            return 0
        entries = self.load()
        with open(self.path, "r", encoding="utf-8") as handle:
            before = sum(1 for line in handle if line.strip())
        tmp = self.path.with_suffix(self.path.suffix + ".compact")
        with open(tmp, "w", encoding="utf-8") as handle:
            for doc in entries.values():
                handle.write(json.dumps(doc, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        return max(0, before - len(entries))


def campaign_task_key(task) -> str:
    """The resume key of one :class:`~repro.parallel.CampaignTask`.

    The enabled oracle-family set is key material only when it differs
    from the default paper-five — a task that never asked for semantic
    families hashes byte-identically to a pre-semantic build, so
    existing journals and artifact stores keep deduplicating.
    """
    from ..engine.deploy import module_content_hash
    parts = [
        module_content_hash(task.module),
        ",".join(task.tools),
        f"{task.timeout_ms:g}",
        str(task.rng_seed),
        str(bool(task.address_pool)),
        str(bool(getattr(task, "divergence_check", True))),
    ]
    oracles = getattr(task, "oracles", None)
    if oracles is not None:
        from ..semoracle.registry import PAPER5, resolve_oracles
        resolved = resolve_oracles(oracles)
        if resolved != PAPER5:
            parts.append("oracles=" + ",".join(resolved))
    material = "|".join(parts)
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


# -- CampaignResult <-> JSON -------------------------------------------------

def _scan_to_doc(scan) -> dict:
    doc = {
        "account": scan.target_account,
        "findings": {
            vuln_type: {"detected": finding.detected,
                        "evidence": finding.evidence}
            for vuln_type, finding in scan.findings.items()
        },
    }
    if scan.divergences:
        doc["divergences"] = list(scan.divergences)
    return doc


def _scan_from_doc(doc: dict):
    from ..scanner.detectors import ScanResult, VulnerabilityFinding
    scan = ScanResult(target_account=doc["account"])
    scan.divergences = list(doc.get("divergences", ()))
    for vuln_type, finding in doc.get("findings", {}).items():
        scan.findings[vuln_type] = VulnerabilityFinding(
            vuln_type, bool(finding.get("detected")),
            finding.get("evidence", ""))
    return scan


def campaign_result_to_doc(result) -> dict:
    return {
        "scans": {tool: _scan_to_doc(scan)
                  for tool, scan in result.scans.items()},
        "stage_seconds": dict(result.stage_seconds),
        "instr_cache_hits": result.instr_cache_hits,
        "instr_cache_misses": result.instr_cache_misses,
        "solver_cache_hits": result.solver_cache_hits,
        "solver_cache_misses": result.solver_cache_misses,
        "instr_disk_hits": result.instr_disk_hits,
        "instr_disk_misses": result.instr_disk_misses,
        "solver_disk_hits": result.solver_disk_hits,
        "solver_disk_misses": result.solver_disk_misses,
        "worker_id": result.worker_id,
        "errors": dict(result.errors),
        "degraded": list(result.degraded),
        "retries": result.retries,
        "coverage": {tool: dict(summary)
                     for tool, summary in result.coverage.items()},
    } | ({"traces": {tool: base64.b64encode(blob).decode("ascii")
                     for tool, blob in result.traces.items()}}
         if getattr(result, "traces", None) else {}) \
      | ({"provenance": dict(result.provenance)}
         if getattr(result, "provenance", None) else {})


def campaign_result_from_doc(doc: dict):
    from ..parallel.campaigns import CampaignResult
    return CampaignResult(
        scans={tool: _scan_from_doc(scan)
               for tool, scan in doc.get("scans", {}).items()},
        stage_seconds=dict(doc.get("stage_seconds", {})),
        instr_cache_hits=doc.get("instr_cache_hits", 0),
        instr_cache_misses=doc.get("instr_cache_misses", 0),
        solver_cache_hits=doc.get("solver_cache_hits", 0),
        solver_cache_misses=doc.get("solver_cache_misses", 0),
        instr_disk_hits=doc.get("instr_disk_hits", 0),
        instr_disk_misses=doc.get("instr_disk_misses", 0),
        solver_disk_hits=doc.get("solver_disk_hits", 0),
        solver_disk_misses=doc.get("solver_disk_misses", 0),
        worker_id=doc.get("worker_id", 0),
        errors=dict(doc.get("errors", {})),
        degraded=tuple(doc.get("degraded", ())),
        retries=doc.get("retries", 0),
        coverage=dict(doc.get("coverage", {})),
        traces={tool: base64.b64decode(text)
                for tool, text in doc.get("traces", {}).items()},
        provenance=(dict(doc["provenance"])
                    if doc.get("provenance") else None),
    )

"""Containment policies: bounded retry, degradation, quarantine.

:class:`ResiliencePolicy` is the single knob bundle threaded through
the evaluation pipeline (and surfaced on the CLI as ``--max-retries``
/ ``--quarantine-after``).  Backoff is *deterministic* — a fixed
exponential schedule with no jitter — so retried runs reproduce
byte-for-byte; the default base of 0 s means "retry immediately",
which is right for the in-process deterministic workloads here.

:class:`Quarantine` tracks repeatedly failing samples across retry
rounds.  A quarantined sample is never dropped silently: it is carried
into the metrics table as a *skipped* entry with its failure history.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

from .errors import DEGRADABLE_STAGES, CampaignError

__all__ = ["ResiliencePolicy", "Quarantine", "run_with_retry"]

# Module-level so tests can monkeypatch sleeping away entirely.
_sleep = time.sleep


@dataclass(frozen=True)
class ResiliencePolicy:
    """Per-stage containment knobs for one evaluation run."""

    max_retries: int = 1          # extra attempts after the first
    backoff_base_s: float = 0.0   # base of the 1x/2x/4x... schedule
    quarantine_after: int = 3     # failures before a sample is benched
    degrade: bool = True          # fall back to black-box on symbolic loss

    def backoff_s(self, attempt: int) -> float:
        """Deterministic exponential backoff before retry ``attempt``
        (1-based): base * 2**(attempt-1)."""
        if attempt <= 0:
            return 0.0
        return self.backoff_base_s * (2 ** (attempt - 1))

    def should_degrade(self, error: CampaignError) -> bool:
        return self.degrade and error.stage in DEGRADABLE_STAGES


class Quarantine:
    """Failure ledger: samples that keep crashing get benched."""

    def __init__(self, threshold: int = 3):
        self.threshold = threshold
        self._failures: dict[str, list[str]] = {}

    def record_failure(self, key: str, reason: str) -> bool:
        """Note one failure; returns True when ``key`` just crossed
        the quarantine threshold."""
        reasons = self._failures.setdefault(key, [])
        reasons.append(reason)
        return len(reasons) == self.threshold

    def failure_count(self, key: str) -> int:
        return len(self._failures.get(key, ()))

    def is_quarantined(self, key: str) -> bool:
        return self.failure_count(key) >= self.threshold

    def quarantined(self) -> dict[str, list[str]]:
        """key -> failure reasons, for every benched sample."""
        return {key: list(reasons)
                for key, reasons in self._failures.items()
                if len(reasons) >= self.threshold}


def run_with_retry(fn: Callable[[], Any], policy: ResiliencePolicy,
                   *, sleep: Callable[[float], None] | None = None,
                   ) -> tuple[Any, CampaignError | None, int]:
    """Run ``fn`` under the policy's bounded-retry rule.

    Returns ``(value, error, attempts)``: on success ``error`` is None;
    after exhausting retries (or on a non-retryable error) ``value`` is
    None and ``error`` is the last :class:`CampaignError`.  Exceptions
    outside the taxonomy propagate — the executor's process isolation
    is the containment of last resort for those.
    """
    do_sleep = sleep or _sleep
    attempts = 0
    while True:
        attempts += 1
        try:
            return fn(), None, attempts
        except CampaignError as exc:
            if exc.retryable and attempts <= policy.max_retries:
                delay = policy.backoff_s(attempts)
                if delay > 0:
                    do_sleep(delay)
                continue
            return None, exc, attempts

"""The fault-tolerant task runner shared by the evaluation pipelines.

:func:`run_resilient_tasks` wraps :func:`repro.parallel.run_tasks`
with the campaign-level containment the corpus drivers need:

* **checkpointing** — every completed result is appended to the
  journal as it arrives, so an interrupted run loses at most the
  in-flight samples;
* **resume** — with ``resume=True`` journaled results are reused
  verbatim (no recomputation) before any worker starts;
* **bounded retry** — samples whose *task* failed (worker crash,
  wall-clock timeout, an exception that escaped the taxonomy) are
  re-run up to ``policy.max_retries`` times with deterministic
  backoff;
* **quarantine** — a sample that keeps failing is benched after
  ``policy.quarantine_after`` failures and reported, never silently
  dropped.

Determinism: retry rounds re-run the *same* task payloads (same RNG
seeds), results are keyed by global task index, and reused journal
entries are byte-equivalent to fresh computations, so the folded
tables never depend on scheduling, interruption or retry history.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import policy as _policy_mod
from .journal import (CampaignJournal, campaign_result_from_doc,
                      campaign_result_to_doc, campaign_task_key)
from .policy import Quarantine, ResiliencePolicy

__all__ = ["ResilientRun", "run_resilient_tasks"]


@dataclass
class ResilientRun:
    """Everything a corpus driver needs to fold results into tables."""

    results: list              # one TaskResult per task, in task order
    quarantine: Quarantine
    reused: int = 0            # results served from the journal
    retries: int = 0           # task-level re-runs performed
    failed_attempts: int = 0   # task attempts that did not complete
    sample_keys: list = field(default_factory=list)
    reused_indices: set = field(default_factory=set)

    def skip_reason(self, index: int) -> str | None:
        """Why task ``index`` has no usable result (None = it has one)."""
        result = self.results[index]
        if result.ok:
            return None
        key = self.sample_keys[index]
        if self.quarantine.is_quarantined(key):
            count = self.quarantine.failure_count(key)
            return f"quarantined after {count} failures ({result.error})"
        return result.error or "task failed"


def run_resilient_tasks(worker, tasks, *, jobs: int = 1,
                        timeout_s: float | None = None,
                        policy: ResiliencePolicy | None = None,
                        journal: "CampaignJournal | str | None" = None,
                        resume: bool = False) -> ResilientRun:
    """Run campaign tasks with checkpointing, retry and quarantine."""
    from ..parallel import TaskResult, run_tasks

    policy = policy or ResiliencePolicy()
    tasks = list(tasks)
    keys = [getattr(task, "sample_key", None) or str(index)
            for index, task in enumerate(tasks)]
    run = ResilientRun(results=[None] * len(tasks),
                       quarantine=Quarantine(policy.quarantine_after),
                       sample_keys=keys)

    if isinstance(journal, CampaignJournal):
        journal_obj = journal
    else:
        journal_obj = CampaignJournal(journal) if journal else None
    journal_keys = ([campaign_task_key(task) for task in tasks]
                    if journal_obj else None)
    if journal_obj is not None and resume:
        entries = journal_obj.load()
        for index, journal_key in enumerate(journal_keys):
            doc = entries.get(journal_key)
            if doc is None:
                continue
            run.results[index] = TaskResult(
                index, True, campaign_result_from_doc(doc["result"]))
            run.reused_indices.add(index)
        run.reused = len(run.reused_indices)

    pending = [i for i in range(len(tasks)) if run.results[i] is None]
    attempt = 0
    while pending:
        batch_indices = list(pending)
        on_result = None
        if journal_obj is not None:
            def on_result(result, _indices=batch_indices):
                if result.ok:
                    global_index = _indices[result.index]
                    journal_obj.record(
                        journal_keys[global_index],
                        campaign_result_to_doc(result.value))
        batch = run_tasks(worker, [tasks[i] for i in batch_indices],
                          jobs=jobs, timeout_s=timeout_s,
                          on_result=on_result)
        pending = []
        for local_index, result in enumerate(batch):
            global_index = batch_indices[local_index]
            rebased = TaskResult(global_index, result.ok, result.value,
                                 result.error, result.elapsed_s,
                                 result.error_type, result.traceback)
            if result.ok:
                run.results[global_index] = rebased
                continue
            run.failed_attempts += 1
            key = keys[global_index]
            run.quarantine.record_failure(
                key, result.error or "task failed")
            if (run.quarantine.is_quarantined(key)
                    or attempt >= policy.max_retries):
                run.results[global_index] = rebased
            else:
                pending.append(global_index)
        if pending:
            attempt += 1
            run.retries += len(pending)
            delay = policy.backoff_s(attempt)
            if delay > 0:
                _policy_mod._sleep(delay)
    return run

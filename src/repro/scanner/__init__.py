"""repro.scanner — adversary oracles and vulnerability detectors (§3.5)."""

from .exploit import ExploitPayload, synthesize_exploits, verify_exploit
from .detectors import (AUTH_APIS, BLOCKINFO_APIS, Detector, EFFECT_APIS, ScanResult,
                        VulnerabilityFinding, scan_report)
from .oracles import (AdversarySetup, ForwardingAgent, ORACLE_VERSION,
                      PAYLOAD_KINDS, build_payload, setup_adversaries)
from .report import VULN_TITLES, format_report, report_to_json

__all__ = [
    "ExploitPayload", "synthesize_exploits", "verify_exploit",
    "AUTH_APIS", "BLOCKINFO_APIS", "Detector", "EFFECT_APIS", "ScanResult",
    "VulnerabilityFinding", "scan_report", "AdversarySetup",
    "ForwardingAgent", "ORACLE_VERSION", "PAYLOAD_KINDS", "build_payload",
    "setup_adversaries", "VULN_TITLES", "format_report",
    "report_to_json",
]

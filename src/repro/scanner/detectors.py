"""The vulnerability scanner: the five detectors of §3.5.

Detectors run over the fuzzing campaign's observation log.  The
function-call chain id⃗ comes from the ``begin_function`` labels of the
instrumented traces; library-API invocations come from the chain's
host-call journal (the call_pre/call_post view of Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..eosio.name import N
from ..symbolic import locate_action_call

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..engine.fuzzer import FuzzReport, Observation

__all__ = ["scan_report", "VulnerabilityFinding", "ScanResult",
           "AUTH_APIS", "EFFECT_APIS", "BLOCKINFO_APIS"]

AUTH_APIS = ("require_auth", "require_auth2", "has_auth")
EFFECT_APIS = ("send_inline", "send_deferred", "db_store_i64",
               "db_update_i64", "db_remove_i64")
BLOCKINFO_APIS = ("tapos_block_num", "tapos_block_prefix")


@dataclass
class VulnerabilityFinding:
    vuln_type: str
    detected: bool
    evidence: str = ""


@dataclass
class ScanResult:
    """vul(τ⃗) for the five oracles, plus the exploit evidence.

    ``divergences`` carries the campaign's divergence-sentinel alarms
    (concrete shadow state disagreeing with the recorded trace).  A
    non-empty list means the observation log is not trustworthy; the
    corpus harness reports such samples as their own row class instead
    of folding the findings into the confusion counts.
    """

    target_account: int
    findings: dict[str, VulnerabilityFinding] = field(default_factory=dict)
    divergences: list[str] = field(default_factory=list)

    def detected(self, vuln_type: str) -> bool:
        finding = self.findings.get(vuln_type)
        return bool(finding and finding.detected)

    def detected_types(self) -> list[str]:
        return sorted(t for t, f in self.findings.items() if f.detected)

    def is_vulnerable(self) -> bool:
        return any(f.detected for f in self.findings.values())


class Detector:
    """Base class for pluggable detectors (the §5 extension recipe:
    "adding oracles and constructing the payload templates … analyzing
    traces to confirm the exploit events").

    Subclasses set ``vuln_type`` and implement :meth:`detect`, which
    receives the campaign's observation log plus the resolved
    eosponser id and returns a :class:`VulnerabilityFinding`.
    """

    vuln_type: str = "custom"

    def detect(self, report: "FuzzReport", target,
               eosponser_id: int | None) -> VulnerabilityFinding:
        raise NotImplementedError


def scan_report(report: "FuzzReport", target,
                extra_detectors: list[Detector] = (),
                oracles=None) -> ScanResult:
    """Run the enabled detectors (plus any extras) over a finished
    campaign.

    ``oracles`` selects the oracle families by name (any spec
    :func:`repro.semoracle.resolve_oracles` accepts).  None — the
    default everywhere — runs exactly the paper's five, producing a
    byte-identical result to the pre-semantic scanner so stored
    verdicts stay replay-stable.  Semantic family names evaluate over
    the report's semantic surface (built on the fly for fresh
    campaigns, carried by the pack for replays).
    """
    result = ScanResult(target_account=report.target_account)
    result.divergences = list(getattr(report, "divergences", ()))
    eosponser_id = _resolve_eosponser(report, target)
    paper = {
        "fake_eos": lambda: _detect_fake_eos(report, eosponser_id),
        "fake_notif": lambda: _detect_fake_notif(report, target,
                                                 eosponser_id),
        "missauth": lambda: _detect_missauth(report),
        "blockinfodep": lambda: _detect_blockinfodep(report),
        "rollback": lambda: _detect_rollback(report),
    }
    if oracles is None:
        for name, detect in paper.items():
            result.findings[name] = detect()
    else:
        from ..semoracle.registry import (FAMILIES, resolve_oracles,
                                          semantic_names)
        names = resolve_oracles(oracles)
        for name in names:
            if name in paper:
                result.findings[name] = paper[name]()
        semantic = semantic_names(names)
        if semantic:
            surface = getattr(report, "semantic_surface", None)
            if surface is None:
                from ..semoracle.surface import build_semantic_surface
                surface = build_semantic_surface(report)
            for name in semantic:
                result.findings[name] = FAMILIES[name].evaluate(
                    report, target, surface)
    for detector in extra_detectors:
        result.findings[detector.vuln_type] = detector.detect(
            report, target, eosponser_id)
    return result


def _resolve_eosponser(report: "FuzzReport", target) -> int | None:
    """id_e: located from a valid EOS transaction's traces (§3.5)."""
    if report.eosponser_id is not None:
        return report.eosponser_id
    for obs in report.observations:
        if obs.action_name != "transfer":
            continue
        located = locate_action_call(obs.events, target.site_table,
                                     target.apply_index)
        if located is not None:
            return located[1]
    return None


def _eosponser_invoked(obs: "Observation", eosponser_id: int | None) -> bool:
    """id_e ∈ id⃗ for one observation."""
    if eosponser_id is None:
        return False
    return any(e.kind == "begin" and e.func_id == eosponser_id
               for e in obs.events)


def _detect_fake_eos(report: "FuzzReport",
                     eosponser_id: int | None) -> VulnerabilityFinding:
    """vul := id_e ∈ id⃗ after transferring fake EOS (§2.3.1)."""
    for kind in ("direct", "fake_token"):
        for obs in report.observations_of(kind):
            if _eosponser_invoked(obs, eosponser_id):
                return VulnerabilityFinding(
                    "fake_eos", True,
                    f"eosponser executed under the {kind} payload "
                    f"(params {obs.executed_params})")
    return VulnerabilityFinding("fake_eos", False)


def _detect_fake_notif(report: "FuzzReport", target,
                       eosponser_id: int | None) -> VulnerabilityFinding:
    """vul := id_e ∈ id⃗ ∧ τ⃗ ∌ (i64.eq|i64.ne, (fake.notif, _self))."""
    triggered = any(_eosponser_invoked(obs, eosponser_id)
                    for obs in report.observations_of("fake_notif"))
    if not triggered:
        return VulnerabilityFinding("fake_notif", False)
    # The guard comparison materialises while handling the forged
    # notification itself: there `to` is fake.notif and `_self` the
    # victim, so the operand pair is unambiguous.
    guard_operands = {N("fake.notif"), report.target_account}
    for obs in report.observations_of("fake_notif"):
        for event in obs.events:
            if event.kind != "instr" or len(event.operands) != 2:
                continue
            site = target.site_table[event.site_id]
            if site.instr.op not in ("i64.eq", "i64.ne"):
                continue
            if set(event.operands) == guard_operands:
                return VulnerabilityFinding(
                    "fake_notif", False,
                    "guard code executed: "
                    f"{site.instr.op} at f{site.func_index}+{site.pc}")
    return VulnerabilityFinding(
        "fake_notif", True,
        "eosponser executed on a forwarded notification and no "
        "(i64.eq|i64.ne)(fake.notif, _self) guard was ever observed")


def _detect_missauth(report: "FuzzReport") -> VulnerabilityFinding:
    """vul := any(id⃗_{0→i} ∩ Auths = ∅ ∧ id_i ∈ Effects) over the
    directly-invoked (non-eosponser) actions."""
    for obs in report.observations:
        if obs.action_name == "transfer" or obs.payload_kind != "direct":
            continue
        seen_auth = False
        for call in obs.record.host_calls:
            if call.api in AUTH_APIS:
                seen_auth = True
            elif call.api in EFFECT_APIS and not seen_auth:
                return VulnerabilityFinding(
                    "missauth", True,
                    f"{call.api} reached in {obs.action_name} with no "
                    "prior permission check")
    return VulnerabilityFinding("missauth", False)


def _detect_blockinfodep(report: "FuzzReport") -> VulnerabilityFinding:
    """vul := id⃗ ∩ {#tapos_block_prefix, #tapos_block_num} ≠ ∅."""
    for obs in report.observations:
        for call in obs.record.host_calls:
            if call.api in BLOCKINFO_APIS:
                return VulnerabilityFinding(
                    "blockinfodep", True,
                    f"{call.api} used as a randomness source in "
                    f"{obs.action_name}")
    return VulnerabilityFinding("blockinfodep", False)


def _detect_rollback(report: "FuzzReport") -> VulnerabilityFinding:
    """vul := #send_inline ∈ id⃗ on the profitable (eosponser) path."""
    for obs in report.observations:
        if obs.action_name != "transfer":
            continue
        if any(call.api == "send_inline"
               for call in obs.record.host_calls):
            return VulnerabilityFinding(
                "rollback", True,
                "the eosponser answers payments with an inline action "
                "the caller can revert")
    return VulnerabilityFinding("rollback", False)

"""Adversary oracles: agent contracts and payload templates (§2.3, §3.5).

The Engine initiates the local blockchain with the auxiliary contracts
these oracles need (Algorithm 1 L2):

* ``fake.token`` — a second :class:`TokenContract` issuing counterfeit
  "EOS" under its own code (Fake EOS method 2),
* ``fake.notif`` — an agent that forwards ``eosio.token`` notifications
  to the victim unchanged, preserving ``code`` (Fake Notif).

``build_payload`` turns a seed into the concrete transaction for each
payload kind, together with the parameter values the victim's
eosponser actually observes (needed to initialise the symbolic layout
truthfully).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..eosio.asset import Asset, EOS_SYMBOL

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..engine.seeds import Seed
from ..eosio.chain import Action, Chain, NativeContract
from ..eosio.name import N, Name, name_to_string
from ..eosio.serialize import Encoder
from ..eosio.token import TokenContract, deploy_token, issue_to

__all__ = ["ORACLE_VERSION", "PAYLOAD_KINDS", "AdversarySetup",
           "setup_adversaries", "build_payload", "ForwardingAgent"]

# Version of the registered scanner-oracle set (the five detectors of
# §3.5 plus their payload templates, and since v2 the semantic oracle
# families of repro.semoracle).  Bump whenever a detector's verdict
# logic or an oracle's payload changes — stored verdicts carry it as
# provenance, so a re-verdict sweep (`wasai reverdict`) can tell
# which verdicts predate a fix and the drift auditor can distinguish
# "oracle evolved" from "verdict rotted".
ORACLE_VERSION = 2

PAYLOAD_KINDS = ("legit", "direct", "fake_token", "fake_notif")

PLAYER = "player"
ATTACKER = "attacker"
FAKE_TOKEN = "fake.token"
FAKE_NOTIF = "fake.notif"


class ForwardingAgent(NativeContract):
    """The fake.notif agent: re-targets eosio.token notifications at
    the victim while the original ``code`` survives (§2.3.2)."""

    def __init__(self, victim: int):
        self.victim = victim

    def apply(self, chain: Chain, ctx) -> None:
        if ctx.code == N("eosio.token") and ctx.is_notification:
            ctx.add_recipient(self.victim)


@dataclass
class AdversarySetup:
    """Account names of the adversary infrastructure."""

    victim: int
    player: int
    attacker: int
    fake_token: int
    fake_notif: int


def setup_adversaries(chain: Chain, victim: "int | str") -> AdversarySetup:
    """Deploy the agent contracts and fund the adversary accounts."""
    victim_name = int(Name(victim))
    player = chain.create_account(PLAYER)
    attacker = chain.create_account(ATTACKER)
    if chain.get_contract(FAKE_TOKEN) is None:
        deploy_token(chain, FAKE_TOKEN)
        issue_to(chain, FAKE_TOKEN, ATTACKER, "100000.0000 EOS")
    fake_notif = chain.set_contract(FAKE_NOTIF, ForwardingAgent(victim_name))
    return AdversarySetup(victim_name, player, attacker,
                          int(Name(FAKE_TOKEN)), fake_notif)


def _transfer_data(from_, to, quantity: Asset, memo: str) -> bytes:
    return (Encoder().name(from_).name(to).asset(quantity)
            .string(memo).bytes())


def _payment_quantity(seed_asset) -> Asset:
    """Clamp a seed asset into a valid payment (positive EOS)."""
    if isinstance(seed_asset, Asset) and seed_asset.symbol == EOS_SYMBOL:
        amount = seed_asset.amount
    else:
        amount = 10_000
    if amount <= 0:
        amount = 10_000
    return Asset(min(amount, 10_000_000_000), EOS_SYMBOL)


def build_payload(kind: str, setup: AdversarySetup, seed: "Seed",
                  abi_action, payer: int | None = None,
                  ) -> tuple[list[Action], list]:
    """Build the transaction for a payload kind.

    Returns ``(actions, executed_params)`` where ``executed_params``
    are the eosponser parameter values the victim will observe (used
    as the symbolic layout's concrete seed); for non-transfer seeds it
    is the seed values themselves.  ``payer`` overrides the paying
    identity of the ``legit`` payload (the address-pool extension).
    """
    if seed.action_name != "transfer":
        data = abi_action.pack(seed.values)
        return ([Action(setup.victim, seed.action_name,
                        [setup.attacker], data)], list(seed.values))
    from_, to, quantity, memo = seed.values
    if not isinstance(memo, (str, bytes)):
        memo = str(memo)
    if kind == "direct":
        # Method 1 of §2.3.1: invoke the eosponser directly.
        data = _transfer_data(from_, to, _as_asset(quantity), memo)
        return ([Action(setup.victim, "transfer", [setup.attacker], data)],
                [Name(from_), Name(to), _as_asset(quantity), memo])
    paid = _payment_quantity(quantity)
    if kind == "legit":
        who = payer if payer is not None else setup.player
        data = _transfer_data(who, setup.victim, paid, memo)
        return ([Action(N("eosio.token"), "transfer", [who], data)],
                [Name(who), Name(setup.victim), paid, memo])
    if kind == "fake_token":
        # Method 2 of §2.3.1: pay with counterfeit EOS.
        data = _transfer_data(setup.attacker, setup.victim, paid, memo)
        return ([Action(setup.fake_token, "transfer", [setup.attacker],
                        data)],
                [Name(setup.attacker), Name(setup.victim), paid, memo])
    if kind == "fake_notif":
        # §2.3.2: real EOS to the agent, notification forwarded.
        data = _transfer_data(setup.attacker, FAKE_NOTIF, paid, memo)
        return ([Action(N("eosio.token"), "transfer", [setup.attacker],
                        data)],
                [Name(setup.attacker), Name(FAKE_NOTIF), paid, memo])
    raise ValueError(f"unknown payload kind {kind!r}")


def _as_asset(value) -> Asset:
    if isinstance(value, Asset):
        return value
    return Asset.from_string(str(value))

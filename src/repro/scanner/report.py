"""Human-readable and JSON vulnerability reports."""

from __future__ import annotations

import json

from ..eosio.name import name_to_string
from .detectors import ScanResult

__all__ = ["format_report", "report_to_json", "VULN_TITLES"]

VULN_TITLES = {
    "fake_eos": "Fake EOS (§2.3.1)",
    "fake_notif": "Fake Notification (§2.3.2)",
    "missauth": "Missing Authorization Verification (§2.3.3)",
    "blockinfodep": "Blockinfo Dependency (§2.3.4)",
    "rollback": "Rollback (§2.3.5)",
    # Semantic oracle families (repro.semoracle).
    "token_arith": "Token Arithmetic (semantic)",
    "permission": "Permission Misuse (semantic)",
    "notif_chain": "Notification-Chain Abuse (semantic)",
    "data_consistency": "On-Chain Data Consistency (semantic)",
}


def format_report(result: ScanResult) -> str:
    """Render a scan result the way the CLI prints it."""
    account = name_to_string(result.target_account)
    lines = [f"WASAI vulnerability report for {account}",
             "=" * (32 + len(account))]
    for vuln_type, title in VULN_TITLES.items():
        finding = result.findings.get(vuln_type)
        if finding is None:
            continue
        status = "VULNERABLE" if finding.detected else "ok"
        lines.append(f"  [{status:>10}] {title}")
        if finding.evidence:
            lines.append(f"               {finding.evidence}")
    if result.divergences:
        lines.append(f"  [{'DIVERGENT':>10}] concolic divergence sentinel "
                     f"({len(result.divergences)} alarms)")
        for alarm in result.divergences:
            lines.append(f"               {alarm}")
        lines.append("  The observation log disagrees with the symbolic "
                     "replay; findings above are unreliable.")
    verdict = ("VULNERABLE" if result.is_vulnerable()
               else "no issues found")
    lines.append(f"Overall: {verdict}")
    return "\n".join(lines)


def report_to_json(result: ScanResult) -> str:
    """Machine-readable report (the CLI's ``--json`` output)."""
    doc = {
        "account": name_to_string(result.target_account),
        "vulnerable": result.is_vulnerable(),
        "divergences": list(result.divergences),
        "findings": {
            vuln_type: {
                "detected": finding.detected,
                "title": VULN_TITLES.get(vuln_type, vuln_type),
                "evidence": finding.evidence,
            }
            for vuln_type, finding in result.findings.items()
        },
    }
    return json.dumps(doc, indent=2, sort_keys=True)

"""repro.semoracle — the pluggable semantic-oracle subsystem.

The paper's scanner ships five *general* oracles; the majority of
exploitable contract bugs are functional and invisible to them.  This
package grows the scanner with registered **oracle families** that
evaluate the campaign's trace events *and* chain-DB read/write
surface:

* ``token_arith`` — integer overflow/truncation in balance updates;
* ``permission`` — state-mutating actions reachable without any auth
  check on the writer path;
* ``notif_chain`` — forwarded notifications triggering state writes
  with the original ``code`` unchecked;
* ``data_consistency`` — end-of-campaign DB invariants (supply vs
  sum of balances).

Families declare the pack surface they require
(:class:`OracleFamily.required_surface`); stored trace packs that
cannot satisfy an enabled family raise the typed
:class:`InsufficientSurface` on replay so re-verdict sweeps count
them ``insufficient`` and re-queue a fresh scan instead of reporting
phantom drift.
"""

from .families import (evaluate_data_consistency, evaluate_notif_chain,
                       evaluate_permission, evaluate_token_arith)
from .registry import (ALL_FAMILIES, FAMILIES, InsufficientSurface,
                       OracleFamily, PAPER5, SEMANTIC_FAMILIES,
                       UnknownOracleFamily, required_surfaces,
                       resolve_oracles, semantic_names)
from .surface import (BASE_SURFACES, DbWrite, HostArgCall,
                      SEMANTIC_SURFACES, SemanticSurface, SurfaceRecord,
                      build_semantic_surface)

__all__ = [
    "OracleFamily", "FAMILIES", "PAPER5", "SEMANTIC_FAMILIES",
    "ALL_FAMILIES", "UnknownOracleFamily", "InsufficientSurface",
    "resolve_oracles", "required_surfaces", "semantic_names",
    "BASE_SURFACES", "SEMANTIC_SURFACES", "SemanticSurface",
    "SurfaceRecord", "DbWrite", "HostArgCall",
    "build_semantic_surface",
    "evaluate_token_arith", "evaluate_permission",
    "evaluate_notif_chain", "evaluate_data_consistency",
]

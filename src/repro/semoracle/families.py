"""The four initial semantic oracle families.

Each family is a pure function over ``(report, target, surface)``
returning a :class:`~repro.scanner.detectors.VulnerabilityFinding` —
the same currency the paper's five detectors deal in, so family
verdicts flow through :class:`ScanResult`, the verdict docs and the
metrics tables without a parallel reporting path.

Unlike the paper's oracles, which key off *which* host APIs ran, the
families reason about what the contract **did to state**: the i64
values written into balance rows, the auth-check results guarding
writer paths, the notification provenance of the record that wrote,
and the database's end-of-campaign invariants.  All four are written
to be conservative — they only fire on concrete evidence shapes
(asset-sized rows, falsy ``has_auth`` results, counterfeit payload
kinds) so clean contracts cannot trip them.
"""

from __future__ import annotations

from ..eosio.name import N, name_to_string
from ..scanner.detectors import VulnerabilityFinding

__all__ = ["evaluate_token_arith", "evaluate_permission",
           "evaluate_notif_chain", "evaluate_data_consistency"]

# EOSIO asset layout: i64 amount (LE) followed by a u64 symbol.
_ASSET_BYTES = 16
# token.stat row: asset supply + asset max_supply + name issuer.
_STAT_BYTES = 40

_WRITE_APIS = ("db_store_i64", "db_update_i64", "db_remove_i64")
_REQUIRE_APIS = ("require_auth", "require_auth2")

_ACCOUNTS_TABLE = N("accounts")
_STAT_TABLE = N("stat")
_EOSIO_TOKEN = N("eosio.token")


def _amount(data: bytes) -> int:
    return int.from_bytes(data[:8], "little", signed=True)


def _symbol(data: bytes) -> int:
    return int.from_bytes(data[8:16], "little", signed=False)


def _action_of(report, index: int) -> str:
    observations = report.observations
    if 0 <= index < len(observations):
        return observations[index].action_name
    return "?"


def evaluate_token_arith(report, target, surface) -> VulnerabilityFinding:
    """Integer wrap in balance updates.

    A balance row is an asset (16 bytes, signed i64 amount first).  No
    legitimate sequence of credits/debits drives an amount negative —
    the reference token contract sub-asserts before subtracting — so a
    write that leaves a *negative* amount in an asset-sized row of the
    victim's own tables is arithmetic that wrapped (``0 - x``,
    truncation, or an unchecked debit).
    """
    victim = report.target_account
    for index, record in enumerate(surface.records):
        if record is None:
            continue
        for write in record.writes:
            if write.code != victim or write.after is None:
                continue
            if len(write.after) != _ASSET_BYTES:
                continue
            amount = _amount(write.after)
            if amount < 0:
                return VulnerabilityFinding(
                    "token_arith", True,
                    f"{_action_of(report, index)} wrote a negative "
                    f"balance amount {amount} into an asset row of "
                    f"table {name_to_string(write.table)} — wrapped "
                    "arithmetic on an unsigned quantity")
    return VulnerabilityFinding("token_arith", False)


def _result_value(result) -> int | None:
    if result is None:
        return None
    if isinstance(result, (list, tuple)):
        return _result_value(result[0]) if result else None
    try:
        return int(result)
    except (TypeError, ValueError):
        return None


def evaluate_permission(report, target, surface) -> VulnerabilityFinding:
    """Role-mined permission misuse on a writer path.

    ``require_auth`` never returns on failure (a failing call aborts
    the record and is not journalled), so any ``require_auth`` in the
    call log *succeeded* and authorises what follows.  ``has_auth``
    merely reports: a record where ``has_auth`` returned 0 and a DB
    write still happened — with no successful ``require_auth``
    anywhere before that write — mutated state on a path the contract
    itself observed to be unauthorised.
    """
    for index, calls in enumerate(surface.calls):
        auth_denied = False
        require_seen = False
        for call in calls:
            if call.api in _REQUIRE_APIS:
                require_seen = True
            elif call.api == "has_auth" and _result_value(call.result) == 0:
                auth_denied = True
            elif call.api in _WRITE_APIS and auth_denied \
                    and not require_seen:
                return VulnerabilityFinding(
                    "permission", True,
                    f"{_action_of(report, index)} reached {call.api} "
                    "after has_auth reported no authority and no "
                    "require_auth guarded the writer path")
    return VulnerabilityFinding("permission", False)


def evaluate_notif_chain(report, target, surface) -> VulnerabilityFinding:
    """Notification-chain abuse: a *forwarded* notification writes.

    Under the ``fake_notif`` payload the forwarding agent re-targets a
    genuine eosio.token notification at the victim, preserving
    ``code == eosio.token`` while ``to`` names the agent, not the
    victim.  A victim record that is a notification and still performs
    a DB write under that payload credited a deposit it never
    received — the ``code`` check alone is not sufficient provenance.
    """
    victim = report.target_account
    for index, obs in enumerate(report.observations):
        if obs.payload_kind != "fake_notif":
            continue
        record = surface.records[index] \
            if index < len(surface.records) else None
        if record is None or not record.is_notification:
            continue
        if record.receiver != victim:
            continue
        for write in record.writes:
            if write.code == victim:
                return VulnerabilityFinding(
                    "notif_chain", True,
                    "a forwarded eosio.token notification (to != "
                    "_self) still triggered a state write in "
                    f"table {name_to_string(write.table)}")
    return VulnerabilityFinding("notif_chain", False)


def evaluate_data_consistency(report, target, surface) -> VulnerabilityFinding:
    """On-chain data invariants over the end-of-campaign DB state.

    For every currency statistics row the victim maintains, the
    recorded supply must equal the sum of all balance rows of the same
    symbol across the victim's scopes.  Contracts that keep no stat
    table are skipped — the invariant only exists once the contract
    claims to track a supply.
    """
    victim = report.target_account
    supplies: dict[int, int] = {}
    for (code, scope, table), rows in surface.db_state.items():
        if code != victim or table != _STAT_TABLE:
            continue
        for data in rows.values():
            if len(data) == _STAT_BYTES:
                supplies[_symbol(data)] = _amount(data)
    if not supplies:
        return VulnerabilityFinding("data_consistency", False)
    balances: dict[int, int] = {}
    for (code, scope, table), rows in surface.db_state.items():
        if code != victim or table != _ACCOUNTS_TABLE:
            continue
        for data in rows.values():
            if len(data) == _ASSET_BYTES:
                symbol = _symbol(data)
                balances[symbol] = balances.get(symbol, 0) \
                    + _amount(data)
    for symbol, supply in supplies.items():
        total = balances.get(symbol, 0)
        if total != supply:
            return VulnerabilityFinding(
                "data_consistency", True,
                f"recorded supply {supply} disagrees with the sum of "
                f"balances {total} for the same symbol — the ledger "
                "and the statistics row have diverged")
    return VulnerabilityFinding("data_consistency", False)

"""The oracle-family registry: names, surfaces, resolution.

Oracles are addressed by family name everywhere a user or a config
doc can reach — ``--oracles token_arith,permission``, the service's
scan config, verdict provenance, reverdict requests.  This module
owns that namespace:

* the paper's five general oracles (:data:`PAPER5`) — always
  satisfiable by any pack, since they read only events + host-call
  names;
* the semantic families (:data:`SEMANTIC_FAMILIES`), each registered
  as an :class:`OracleFamily` with the surface capabilities it
  *requires* from a pack before it can replay
  (``required_surface``);
* :func:`resolve_oracles`, the single resolver every entry point
  funnels through, raising the typed :class:`UnknownOracleFamily` so
  CLIs can turn a typo into a usage error instead of a stack trace.

:class:`InsufficientSurface` is the replay-side counterpart: raised
by :func:`repro.traceir.pack.replay_scan` when a stored pack cannot
satisfy the enabled families, so re-verdict sweeps can count the pack
``insufficient`` and re-queue a fresh scan instead of reporting
phantom drift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .families import (evaluate_data_consistency, evaluate_notif_chain,
                       evaluate_permission, evaluate_token_arith)
from .surface import BASE_SURFACES

__all__ = ["OracleFamily", "PAPER5", "SEMANTIC_FAMILIES",
           "ALL_FAMILIES", "FAMILIES", "UnknownOracleFamily",
           "InsufficientSurface", "resolve_oracles",
           "required_surfaces", "semantic_names"]

PAPER5 = ("fake_eos", "fake_notif", "missauth", "blockinfodep",
          "rollback")
SEMANTIC_FAMILIES = ("token_arith", "permission", "notif_chain",
                     "data_consistency")
ALL_FAMILIES = PAPER5 + SEMANTIC_FAMILIES

# Spelled-out set aliases accepted wherever family names are.
_ALIASES = {"paper5": PAPER5, "semantic": SEMANTIC_FAMILIES,
            "all": ALL_FAMILIES}


class UnknownOracleFamily(ValueError):
    """A family name outside the registry (typo or version skew)."""

    def __init__(self, family: str):
        self.family = family
        known = ", ".join(ALL_FAMILIES + tuple(sorted(_ALIASES)))
        super().__init__(f"unknown oracle family {family!r} "
                         f"(known: {known})")


class InsufficientSurface(Exception):
    """A stored pack lacks surface the enabled families require.

    Not a corruption: the pack is intact, it simply predates the
    richer capture.  Carries the missing capability names so sweeps
    can report *why* a fresh scan is needed.
    """

    def __init__(self, missing):
        self.missing = frozenset(missing)
        super().__init__("stored pack lacks required surface: "
                         + ", ".join(sorted(self.missing)))


@dataclass(frozen=True)
class OracleFamily:
    """One registered semantic family."""

    name: str
    title: str
    required_surface: frozenset
    evaluate: Callable  # (report, target, surface) -> VulnerabilityFinding


FAMILIES = {
    "token_arith": OracleFamily(
        name="token_arith",
        title="Token Arithmetic (overflow/truncation in balances)",
        required_surface=frozenset({"db_writes"}),
        evaluate=evaluate_token_arith),
    "permission": OracleFamily(
        name="permission",
        title="Permission Misuse (unauthorised writer path)",
        required_surface=frozenset({"host_args"}),
        evaluate=evaluate_permission),
    "notif_chain": OracleFamily(
        name="notif_chain",
        title="Notification-Chain Abuse (forwarded code unchecked)",
        required_surface=frozenset({"record_chain", "db_writes"}),
        evaluate=evaluate_notif_chain),
    "data_consistency": OracleFamily(
        name="data_consistency",
        title="On-Chain Data Consistency (supply vs balances)",
        required_surface=frozenset({"db_state"}),
        evaluate=evaluate_data_consistency),
}


def resolve_oracles(spec) -> tuple:
    """Normalise any oracle spec to an ordered, deduplicated tuple.

    ``spec`` may be None (the paper's five), a comma-separated string,
    or an iterable of names; the aliases ``paper5``, ``semantic`` and
    ``all`` expand in place.  Unknown names raise the typed
    :class:`UnknownOracleFamily`.
    """
    if spec is None:
        return PAPER5
    if isinstance(spec, str):
        tokens = [t.strip() for t in spec.split(",") if t.strip()]
    else:
        tokens = [str(t).strip() for t in spec]
    if not tokens:
        return PAPER5
    resolved: list = []
    for token in tokens:
        expansion = _ALIASES.get(token)
        if expansion is None:
            if token not in ALL_FAMILIES:
                raise UnknownOracleFamily(token)
            expansion = (token,)
        for name in expansion:
            if name not in resolved:
                resolved.append(name)
    return tuple(resolved)


def semantic_names(names) -> tuple:
    """The subset of ``names`` that are semantic families, in order."""
    return tuple(n for n in names if n in FAMILIES)


def required_surfaces(names) -> frozenset:
    """Union of the surfaces the given family names need from a pack."""
    needed = set(BASE_SURFACES)
    for name in names:
        family = FAMILIES.get(name)
        if family is not None:
            needed |= family.required_surface
    return frozenset(needed)

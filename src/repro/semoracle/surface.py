"""The semantic read surface: what the oracle families consume.

The paper's five oracles read payload outcomes — which functions ran,
which host APIs were invoked.  The semantic families of
:mod:`repro.semoracle.families` need strictly more: host-call
*arguments and results*, the DB writes each record performed
(primary key plus before/after row images), whether the victim's
record arrived as a notification and under which ``code``, and the
chain database's end-of-campaign state.  :class:`SemanticSurface`
bundles exactly that, per observation, in a shape that can be built
live from a finished campaign (:func:`build_semantic_surface`) or
decoded back out of a stored trace pack — the two must agree, since
re-verdicting replays the same families over the stored surface.

Surface capability names (``required_surface`` declarations):

* ``events`` / ``host_calls`` — the classic pack payload, always there;
* ``host_args`` — host-call argument/result values per observation;
* ``db_writes`` — per-record DB writes with row images;
* ``record_chain`` — the victim record's (receiver, code,
  is_notification) provenance;
* ``db_state`` — the end-of-campaign database snapshot.

This module deliberately imports nothing from the scanner or the
engine so the trace IR can serialise surfaces without import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..resilience.errors import TraceCorruption
from ..traceir.codec import Reader, write_svarint, write_uvarint

__all__ = ["BASE_SURFACES", "SEMANTIC_SURFACES", "DbWrite",
           "SurfaceRecord", "HostArgCall", "SemanticSurface",
           "build_semantic_surface", "encode_semantic_section",
           "decode_semantic_section"]

# What every pack offers, with or without a semantic section.
BASE_SURFACES = frozenset({"events", "host_calls"})
# What the semantic section adds (all-or-nothing: one section).
SEMANTIC_SURFACES = frozenset({"host_args", "db_writes", "record_chain",
                               "db_state"})

_MAX_ROW_BYTES = 1 << 20


@dataclass(frozen=True)
class DbWrite:
    """One journalled DB write with its row images."""

    code: int
    scope: int
    table: int
    pkey: int | None
    before: bytes | None        # row image prior to the write (None: insert)
    after: bytes | None         # row image after the write (None: delete)


@dataclass(frozen=True)
class HostArgCall:
    """One host-API invocation with its concrete arguments/result."""

    api: str
    args: tuple
    result: object = None


@dataclass
class SurfaceRecord:
    """The victim record's provenance plus its write set."""

    receiver: int
    code: int
    is_notification: bool
    writes: list = field(default_factory=list)


@dataclass
class SemanticSurface:
    """Per-observation semantic data plus the end-of-campaign DB state.

    ``calls[i]`` and ``records[i]`` align with ``observations[i]`` of
    the report (or pack) the surface belongs to; ``records[i]`` is
    None when the victim never executed under that observation.
    ``db_state`` maps ``(code, scope, table)`` to ``{pkey: row bytes}``.
    """

    calls: list = field(default_factory=list)       # list[list[HostArgCall]]
    records: list = field(default_factory=list)     # list[SurfaceRecord|None]
    db_state: dict = field(default_factory=dict)


def _writes_of(record) -> list:
    writes = []
    for op in getattr(record, "db_ops", ()):
        if op.kind != "write":
            continue
        writes.append(DbWrite(code=op.code, scope=op.scope,
                              table=op.table,
                              pkey=getattr(op, "pkey", None),
                              before=getattr(op, "before", None),
                              after=getattr(op, "after", None)))
    return writes


def build_semantic_surface(report) -> SemanticSurface:
    """Distill a finished campaign's semantic surface.

    Tolerates reports predating the enriched capture (missing
    ``db_ops`` row images, missing ``db_state``): the surface is then
    simply emptier, and families that need the missing parts see no
    evidence rather than wrong evidence.
    """
    surface = SemanticSurface()
    for obs in report.observations:
        record = obs.record
        calls = [HostArgCall(api=call.api,
                             args=tuple(getattr(call, "args", ())),
                             result=getattr(call, "result", None))
                 for call in getattr(record, "host_calls", ())] \
            if record is not None else []
        surface.calls.append(calls)
        if record is None:
            surface.records.append(None)
        else:
            surface.records.append(SurfaceRecord(
                receiver=int(getattr(record, "receiver", 0)),
                code=int(getattr(record, "code", 0)),
                is_notification=bool(getattr(record, "is_notification",
                                             False)),
                writes=_writes_of(record)))
    state = getattr(report, "db_state", None) or {}
    surface.db_state = {
        tuple(table_key): {int(k): bytes(v) for k, v in rows.items()}
        for table_key, rows in state.items()}
    return surface


# -- serialisation (rides the trace IR container as one section) -----------

_RESULT_NONE = 0
_RESULT_INT = 1
_RESULT_FLOAT = 2


def encode_semantic_section(surface: SemanticSurface,
                            intern) -> bytes:
    """Encode a surface into one section payload.

    ``intern`` is the enclosing pack's string-interning callable, so
    API names share the pack-wide string table.  Deterministic: table
    and row keys are emitted sorted.
    """
    import struct

    out = bytearray()
    write_uvarint(out, len(surface.calls))
    for calls in surface.calls:
        write_uvarint(out, len(calls))
        for call in calls:
            write_uvarint(out, intern(call.api))
            write_uvarint(out, len(call.args))
            for arg in call.args:
                write_svarint(out, int(arg))
            result = call.result
            if result is None:
                out.append(_RESULT_NONE)
            elif isinstance(result, float):
                out.append(_RESULT_FLOAT)
                out += struct.pack("<d", result)
            else:
                out.append(_RESULT_INT)
                write_svarint(out, int(result))
    for record in surface.records:
        if record is None:
            out.append(0)
            continue
        out.append(1)
        write_uvarint(out, record.receiver)
        write_uvarint(out, record.code)
        out.append(1 if record.is_notification else 0)
        write_uvarint(out, len(record.writes))
        for write in record.writes:
            write_uvarint(out, write.code)
            write_uvarint(out, write.scope)
            write_uvarint(out, write.table)
            if write.pkey is None:
                out.append(0)
            else:
                out.append(1)
                write_uvarint(out, write.pkey)
            for image in (write.before, write.after):
                if image is None:
                    out.append(0)
                else:
                    out.append(1)
                    write_uvarint(out, len(image))
                    out += image
    write_uvarint(out, len(surface.db_state))
    for table_key in sorted(surface.db_state):
        code, scope, table = table_key
        rows = surface.db_state[table_key]
        write_uvarint(out, code)
        write_uvarint(out, scope)
        write_uvarint(out, table)
        write_uvarint(out, len(rows))
        for key in sorted(rows):
            write_uvarint(out, key)
            data = rows[key]
            write_uvarint(out, len(data))
            out += data
    return bytes(out)


def _read_flag(reader: Reader) -> bool:
    flag = reader.u8()
    if flag > 1:
        reader.fail(f"flag byte {flag} is not boolean")
    return bool(flag)


def _read_image(reader: Reader) -> bytes | None:
    if not _read_flag(reader):
        return None
    length = reader.uvarint()
    if length > _MAX_ROW_BYTES:
        reader.fail(f"absurd row image length {length}")
    return reader.raw(length)


def decode_semantic_section(payload: bytes, lookup,
                            obs_count: int) -> SemanticSurface:
    """Decode one semantic section, or raise ``TraceCorruption``.

    ``lookup(ident)`` resolves string ids against the pack's string
    table; ``obs_count`` is the observation count the pack's meta
    section declared — a disagreeing surface is corruption.
    """
    reader = Reader(payload, "semantic")
    surface = SemanticSurface()
    count = reader.uvarint()
    if count != obs_count:
        raise TraceCorruption(
            f"semantic surface covers {count} observations but the "
            f"pack holds {obs_count}", section="semantic")
    for _ in range(count):
        calls = []
        for _ in range(reader.uvarint()):
            api = lookup(reader.uvarint())
            args = tuple(reader.svarint()
                         for _ in range(reader.uvarint()))
            tag = reader.u8()
            if tag == _RESULT_NONE:
                result = None
            elif tag == _RESULT_INT:
                result = reader.svarint()
            elif tag == _RESULT_FLOAT:
                result = reader.f64()
            else:
                reader.fail(f"unknown result tag {tag}")
            calls.append(HostArgCall(api=api, args=args, result=result))
        surface.calls.append(calls)
    for _ in range(count):
        if not _read_flag(reader):
            surface.records.append(None)
            continue
        receiver = reader.uvarint()
        code = reader.uvarint()
        is_notification = _read_flag(reader)
        writes = []
        for _ in range(reader.uvarint()):
            w_code = reader.uvarint()
            w_scope = reader.uvarint()
            w_table = reader.uvarint()
            pkey = reader.uvarint() if _read_flag(reader) else None
            before = _read_image(reader)
            after = _read_image(reader)
            writes.append(DbWrite(code=w_code, scope=w_scope,
                                  table=w_table, pkey=pkey,
                                  before=before, after=after))
        surface.records.append(SurfaceRecord(
            receiver=receiver, code=code,
            is_notification=is_notification, writes=writes))
    for _ in range(reader.uvarint()):
        code = reader.uvarint()
        scope = reader.uvarint()
        table = reader.uvarint()
        rows = {}
        for _ in range(reader.uvarint()):
            key = reader.uvarint()
            length = reader.uvarint()
            if length > _MAX_ROW_BYTES:
                reader.fail(f"absurd row length {length}")
            rows[key] = reader.raw(length)
        surface.db_state[(code, scope, table)] = rows
    reader.done()
    return surface

"""repro.service — WASAI as a long-lived, self-healing scan service.

The serving layer the ROADMAP's "heavy traffic" north star needs on
top of the batch pipeline: instead of one-shot ``wasai scan``
processes whose results die with them, a daemon that continuously
ingests untrusted modules, answers queries about them, never re-fuzzes
work it has already done — and heals itself when workers die, pipeline
stages fail in a loop, or its own storage corrupts.

* :mod:`repro.service.store` — SQLite content-addressed artifact
  store (modules, verdicts, coverage timelines, quarantine records)
  with per-row content checksums and a disk-budget guard;
* :mod:`repro.service.integrity` — the typed storage-integrity errors
  (:class:`StoreCorruption`, :class:`StoreBudgetExceeded`) and the
  checksum primitive;
* :mod:`repro.service.queue` — bounded priority queue with per-client
  fair scheduling, anti-starvation promotion, per-job TTLs and typed
  backpressure (:class:`QueueFull`);
* :mod:`repro.service.supervisor` — the worker watchdog
  (heartbeats, hung/dead detection, restart-storm guard);
* :mod:`repro.service.health` — per-stage circuit breakers
  (:class:`CircuitBreaker`, :class:`BreakerBoard`);
* :mod:`repro.service.scheduler` — :class:`ScanService`: admission
  (sandboxed ingest), store-level dedup, single-flight coalescing,
  supervised workers with claim tokens, retry/quarantine, breaker
  gating, storage quarantine-and-rebuild, drain/resume checkpoints;
* :mod:`repro.service.api` + :mod:`repro.service.server` — the JSON
  HTTP surface (``POST /scans``, ``GET /scans/{id}``, ``/healthz``,
  ``/stats``, ``/integrity``) on a stdlib ``ThreadingHTTPServer``;
* :mod:`repro.service.client` — the urllib client behind
  ``wasai submit`` / ``wasai status`` (retries 429s and connection
  failures with capped, deterministically-jittered backoff);
* :mod:`repro.service.chaos` — the ``wasai chaos`` drill: a live
  daemon run under a deterministic fault schedule, asserting the
  liveness invariants above;
* :mod:`repro.service.backend` — the coordinator/worker seam
  (:class:`CoordinatorBackend`) with in-process, child-process and
  remote-HTTP node implementations plus the consistent-hash
  :class:`HashRing`;
* :mod:`repro.service.fleet` — :class:`ScanFleet`: consistent-hash
  sharding, work stealing, journal-shipped read replicas,
  exactly-once failover on node death, partition control;
* :mod:`repro.service.tenants` — per-tenant API keys with
  admission-time rate limits and quotas (:class:`TenantBook`);
* :mod:`repro.service.reverdict` — oracle replay over stored trace-IR
  packs (``POST /reverdict`` / ``wasai reverdict``) and the rotating
  drift auditor, with corrupt-trace quarantine.
"""

from .api import ServiceApi
from .backend import (BackendUnavailable, CoordinatorBackend, HashRing,
                      InProcessBackend, ProcessBackend, RemoteBackend,
                      module_hash_of)
from .chaos import CHAOS_SCHEDULES, ChaosReport, run_chaos_drill
from .client import ServiceClient, ServiceError
from .fleet import FleetConfig, FleetJob, ScanFleet
from .health import (BLACKBOX_GATED_STAGES, BREAKER_STAGES, BreakerBoard,
                     CircuitBreaker)
from .integrity import (StoreBudgetExceeded, StoreCorruption,
                        content_checksum)
from .queue import JOB_STATES, Job, JobQueue, QueueFull
from .reverdict import ReverdictReport, audit_traces, reverdict_store
from .scheduler import (DEFAULT_SCAN_CONFIG, NodePartitioned,
                        ScanService, ScanServiceConfig, Submission)
from .server import ScanServer, make_server, serve_forever
from .store import ArtifactStore
from .supervisor import WorkerRecord, WorkerSupervisor
from .tenants import QuotaExceeded, TenantBook, TenantQuota, UnknownApiKey

__all__ = [
    "ArtifactStore",
    "StoreCorruption", "StoreBudgetExceeded", "content_checksum",
    "Job", "JobQueue", "QueueFull", "JOB_STATES",
    "WorkerRecord", "WorkerSupervisor",
    "CircuitBreaker", "BreakerBoard", "BREAKER_STAGES",
    "BLACKBOX_GATED_STAGES",
    "ScanService", "ScanServiceConfig", "Submission",
    "DEFAULT_SCAN_CONFIG", "NodePartitioned",
    "ServiceApi", "ScanServer", "make_server", "serve_forever",
    "ServiceClient", "ServiceError",
    "ChaosReport", "run_chaos_drill", "CHAOS_SCHEDULES",
    "BackendUnavailable", "CoordinatorBackend", "HashRing",
    "InProcessBackend", "ProcessBackend", "RemoteBackend",
    "module_hash_of",
    "ScanFleet", "FleetConfig", "FleetJob",
    "TenantBook", "TenantQuota", "QuotaExceeded", "UnknownApiKey",
    "ReverdictReport", "reverdict_store", "audit_traces",
]

"""repro.service — WASAI as a long-lived scan service.

The serving layer the ROADMAP's "heavy traffic" north star needs on
top of the batch pipeline: instead of one-shot ``wasai scan``
processes whose results die with them, a daemon that continuously
ingests untrusted modules, answers queries about them and never
re-fuzzes work it has already done.

* :mod:`repro.service.store` — SQLite content-addressed artifact
  store (modules, verdicts, coverage timelines, quarantine records),
  keyed by the same content hash as the instrumentation cache and the
  checkpoint journal;
* :mod:`repro.service.queue` — bounded priority queue with per-client
  fair scheduling and typed backpressure (:class:`QueueFull`);
* :mod:`repro.service.scheduler` — :class:`ScanService`: admission
  (sandboxed ingest), store-level dedup, single-flight coalescing,
  worker threads, retry/quarantine, drain/resume checkpoints;
* :mod:`repro.service.api` + :mod:`repro.service.server` — the JSON
  HTTP surface (``POST /scans``, ``GET /scans/{id}``, ``/healthz``,
  ``/stats``) on a stdlib ``ThreadingHTTPServer``;
* :mod:`repro.service.client` — the urllib client behind
  ``wasai submit`` / ``wasai status``.
"""

from .api import ServiceApi
from .client import ServiceClient, ServiceError
from .queue import JOB_STATES, Job, JobQueue, QueueFull
from .scheduler import (DEFAULT_SCAN_CONFIG, ScanService,
                        ScanServiceConfig, Submission)
from .server import ScanServer, make_server, serve_forever
from .store import ArtifactStore

__all__ = [
    "ArtifactStore",
    "Job", "JobQueue", "QueueFull", "JOB_STATES",
    "ScanService", "ScanServiceConfig", "Submission",
    "DEFAULT_SCAN_CONFIG",
    "ServiceApi", "ScanServer", "make_server", "serve_forever",
    "ServiceClient", "ServiceError",
]

"""Transport-free HTTP API: (method, path, body) -> (status, doc).

The routing and response-shaping logic lives here, decoupled from the
socket layer in :mod:`repro.service.server`, so the full request
surface is unit-testable without binding a port.

Endpoints
---------

``POST /scans``
    JSON body ``{"module_b64": ..., "abi": ..., "config": {...},
    "client": ..., "priority": ...}``.  Responses:

    * ``200`` — dedup hit: an identical module+config was already
      scanned; the cached verdict is returned immediately
      (``outcome: "cached"``);
    * ``202`` — admitted: ``outcome`` is ``"queued"`` (a new job) or
      ``"coalesced"`` (attached single-flight to an in-flight twin);
    * ``400`` — the upload failed sandboxed ingestion
      (``error: "malformed_module"``) or the request itself is bad;
    * ``429`` — typed backpressure shed (``error: "queue_full"``,
      with the saturated bound in ``kind``/``limit`` and a
      ``retry_after_s`` hint the HTTP layer mirrors as a
      ``Retry-After`` header).

    Optional body field ``ttl_s`` bounds how long the job may wait in
    the queue before expiring with the terminal state ``expired``.

    An ``X-Deadline-Ms`` header (or body field ``deadline_epoch_ms``)
    carries the caller's absolute wall-clock deadline in epoch
    milliseconds.  It propagates end-to-end: checked at admission, at
    dequeue, at claim and once per fuzzing round, so an expired
    request is cut short with the typed terminal state
    ``deadline_exceeded`` instead of burning a full campaign budget.
    An already-expired deadline answers ``200`` with that terminal doc
    immediately (never a 429 — there is nothing to retry).  Under
    brownout pressure a submission may also come back ``200`` with
    ``outcome: "replayed"``: the verdict was re-derived from a stored
    trace pack by pure oracle replay, with honest ``source: "replay"``
    provenance.

``GET /scans/{id}``
    Job lifecycle doc (``queued | running | done | failed |
    quarantined | expired``); terminal jobs include the verdict /
    error.

``GET /healthz``
    Readiness + health: ``status`` is ``ok`` (accepting, breakers
    closed), ``degraded`` (serving, but some pipeline-stage breaker is
    open — affected scans run black-box-only) or ``draining`` (not
    accepting: graceful drain or a worker restart storm), plus the
    supervisor's worker counts and the open breaker list.

``GET /stats``
    Queue depth, in-flight, dedup hit rates, shed counts, p50/p95 job
    latency, per-stage breaker snapshots and the self-healing counters
    (worker restarts, breaker trips, integrity repairs, journal
    compactions).

``GET /integrity``
    On-demand storage integrity sweep: recomputes every stored row's
    checksum and reports (and by default repairs) corruption.

``POST /reverdict``
    Queue a fleet-wide oracle replay over the stored trace-IR packs
    (zero re-fuzzing).  JSON body ``{"oracle_version": N}`` (optional);
    replies ``202`` with a job whose ``result`` is the sweep report —
    replayed / rewritten / matched / drift / corrupt counts plus the
    itemised ``verdict_drift`` / ``trace_corruption`` incidents.

Fleet surface
-------------

When the daemon is part of a fleet, four more endpoints carry the
coordinator verbs on the wire — ``POST /fleet/steal`` (donate
unclaimed queue entries as base64 recipes), ``GET
/fleet/journal?cursor=N`` (ship verdict-journal entries past a byte
cursor), ``POST /fleet/replicate`` (apply shipped verdicts
idempotently) and ``POST /fleet/partition`` (chaos/topology control).
Submissions gain three admission outcomes: ``401 unauthorized`` (a
required/unknown API key when a :class:`~repro.service.tenants.
TenantBook` is installed), ``429`` with ``kind: "quota"`` (a known
tenant over its rate limit or absolute quota), and ``307
wrong_shard`` with a ``Location`` header when a shard router says a
different node owns this module's hash arc.  A partitioned minority
node answers every write ``503 partitioned`` with ``stale: true``
while reads keep flowing (stale-marked).
"""

from __future__ import annotations

import base64
import binascii
import json
from urllib.parse import parse_qs

from ..resilience import MalformedModule
from ..resilience.journal import campaign_result_from_doc
from ..scanner.report import report_to_json
from .queue import QueueFull
from .scheduler import NodePartitioned, ScanService
from .tenants import QuotaExceeded, TenantBook, UnknownApiKey

__all__ = ["ServiceApi"]


class ServiceApi:
    """Route one parsed request against a :class:`ScanService`.

    ``tenants`` (optional) gates submissions behind API keys and
    quotas; ``router`` (optional) is a callable mapping a module
    content hash to the owning node's base URL, or ``None`` when this
    node owns the shard — non-``None`` turns the submission into a
    307 redirect.
    """

    def __init__(self, service: ScanService,
                 tenants: TenantBook | None = None,
                 router=None):
        self.service = service
        self.tenants = tenants
        self.router = router

    def handle(self, method: str, path: str, body: bytes = b"",
               headers: dict | None = None) -> tuple[int, dict]:
        raw_path = path
        path = path.split("?", 1)[0].rstrip("/") or "/"
        if method == "GET" and path == "/healthz":
            return 200, self.service.health()
        if method == "GET" and path == "/stats":
            return 200, self.service.stats()
        if method == "GET" and path == "/integrity":
            return 200, self.service.integrity_sweep()
        if method == "POST" and path == "/scans":
            return self._submit(body, headers or {})
        if method == "POST" and path == "/reverdict":
            return self._reverdict(body)
        if method == "GET" and path.startswith("/scans/"):
            return self._status(path[len("/scans/"):])
        if method == "POST" and path == "/fleet/steal":
            return self._fleet_steal(body)
        if method == "GET" and path == "/fleet/journal":
            return self._fleet_journal(raw_path)
        if method == "POST" and path == "/fleet/replicate":
            return self._fleet_replicate(body)
        if method == "POST" and path == "/fleet/partition":
            return self._fleet_partition(body)
        return 404, {"error": "not_found", "path": path}

    # -- POST /scans -------------------------------------------------------
    @staticmethod
    def _api_key(doc: dict, headers: dict) -> str | None:
        for name, value in headers.items():
            if name.lower() == "x-api-key":
                return str(value)
        key = doc.get("api_key")
        return str(key) if key is not None else None

    @staticmethod
    def _deadline_epoch_s(doc: dict, headers: dict) -> float | None:
        """The caller's absolute deadline in epoch *seconds*, from the
        ``X-Deadline-Ms`` header (epoch milliseconds on the wire —
        integral, proxy-safe) or the ``deadline_epoch_ms`` body field.
        Raises ValueError when present but unparseable."""
        raw = None
        for name, value in headers.items():
            if name.lower() == "x-deadline-ms":
                raw = value
                break
        if raw is None:
            raw = doc.get("deadline_epoch_ms")
        if raw is None:
            return None
        return float(raw) / 1000.0

    def _submit(self, body: bytes,
                headers: dict) -> tuple[int, dict]:
        try:
            doc = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            return 400, {"error": "bad_request",
                         "detail": f"body is not JSON: {exc}"}
        if not isinstance(doc, dict) or "module_b64" not in doc \
                or "abi" not in doc:
            return 400, {"error": "bad_request",
                         "detail": "need module_b64 and abi fields"}
        try:
            data = base64.b64decode(doc["module_b64"], validate=True)
        except (binascii.Error, ValueError) as exc:
            return 400, {"error": "bad_request",
                         "detail": f"module_b64 is not base64: {exc}"}
        if self.service.partitioned:
            # A minority-side node refuses every write before it costs
            # anyone quota or parsing; reads keep flowing stale-marked.
            return 503, {"error": "partitioned", "stale": True,
                         "detail": "node is on the minority side of "
                                   "a network partition",
                         "retry_after_s": 5.0}
        tenant = None
        api_key = self._api_key(doc, headers)
        if self.tenants is not None:
            # Identity gate BEFORE any module parsing: an unknown key
            # costs the node nothing but this lookup.  The quota is
            # charged only after routing, so a wrong-shard redirect
            # never double-bills the tenant.
            try:
                self.tenants.validate(api_key)
            except UnknownApiKey as exc:
                return 401, {"error": "unauthorized",
                             "detail": str(exc)}
        if self.router is not None:
            try:
                from .backend import module_hash_of
                location = self.router(module_hash_of(data))
            except MalformedModule as exc:
                return 400, {"error": "malformed_module",
                             "detail": str(exc), "stage": "ingest"}
            if location is not None:
                # Wrong shard: this node does not own the module's
                # hash arc.  The server layer mirrors ``location``
                # into a Location header for the 307.
                return 307, {"error": "wrong_shard",
                             "location": location.rstrip("/")
                             + "/scans"}
        if self.tenants is not None:
            try:
                tenant = self.tenants.admit(api_key)
            except QuotaExceeded as exc:
                self.service.perf.record_shed("quota")
                return 429, {"error": "queue_full",
                             "detail": str(exc), "kind": exc.kind,
                             "depth": exc.depth, "limit": exc.limit,
                             "retry_after_s": exc.retry_after_s,
                             "tenant": exc.tenant}
            except UnknownApiKey as exc:
                return 401, {"error": "unauthorized",
                             "detail": str(exc)}
        ttl_s = doc.get("ttl_s")
        try:
            deadline_epoch_s = self._deadline_epoch_s(doc, headers)
        except (TypeError, ValueError):
            return 400, {"error": "bad_request",
                         "detail": "X-Deadline-Ms / deadline_epoch_ms "
                                   "must be epoch milliseconds"}
        try:
            submission = self.service.submit_bytes(
                data, doc["abi"], config=doc.get("config"),
                client=str(doc.get("client", "anon")),
                priority=int(doc.get("priority", 0)),
                ttl_s=float(ttl_s) if ttl_s is not None else None,
                deadline_epoch_s=deadline_epoch_s)
        except MalformedModule as exc:
            # Hostile upload rejected at admission — it never reached
            # a worker; the diagnostic names the offending byte range.
            return 400, {"error": "malformed_module",
                         "detail": str(exc),
                         "stage": "ingest"}
        except NodePartitioned as exc:
            return 503, {"error": "partitioned", "stale": True,
                         "detail": str(exc),
                         "retry_after_s": exc.retry_after_s}
        except QueueFull as exc:
            return 429, {"error": "queue_full", "detail": str(exc),
                         "kind": exc.kind, "depth": exc.depth,
                         "limit": exc.limit,
                         "retry_after_s": exc.retry_after_s}
        job_doc = self._job_doc(submission.job)
        # The job's own outcome says how *it* was admitted; the reply
        # reflects how *this submission* was satisfied (a coalesced
        # duplicate shares a job whose outcome is "queued").
        job_doc["outcome"] = submission.outcome
        if tenant is not None:
            job_doc["tenant"] = tenant
        if submission.cached or submission.outcome in (
                "replayed", "deadline_exceeded"):
            # Terminal at admission: a dedup hit or brownout replay
            # already carries the verdict; an expired deadline carries
            # its typed terminal doc — nothing is pending either way.
            return 200, job_doc
        return 202, job_doc

    # -- POST /reverdict ---------------------------------------------------
    def _reverdict(self, body: bytes) -> tuple[int, dict]:
        """Queue a fleet-wide oracle replay over the stored traces.

        JSON body (all fields optional): ``{"oracle_version": N,
        "oracles": "token_arith,..." | [...], "client": ...,
        "priority": ...}``.  Replies ``202`` with the job doc; the
        sweep report (replayed / rewritten / drift / corrupt /
        insufficient counts plus itemised incidents) lands in the
        job's ``result`` once it completes.
        """
        try:
            doc = json.loads(body.decode("utf-8") or "{}")
        except (ValueError, UnicodeDecodeError) as exc:
            return 400, {"error": "bad_request",
                         "detail": f"body is not JSON: {exc}"}
        if not isinstance(doc, dict):
            return 400, {"error": "bad_request",
                         "detail": "body must be a JSON object"}
        oracle_version = doc.get("oracle_version")
        oracles = doc.get("oracles")
        if oracles is not None:
            from ..semoracle import UnknownOracleFamily, resolve_oracles
            try:
                oracles = list(resolve_oracles(oracles))
            except UnknownOracleFamily as exc:
                return 400, {"error": "unknown_oracle",
                             "detail": str(exc)}
        try:
            submission = self.service.submit_reverdict(
                oracle_version=(int(oracle_version)
                                if oracle_version is not None else None),
                client=str(doc.get("client", "reverdict")),
                priority=int(doc.get("priority", 0)),
                oracles=oracles)
        except NodePartitioned as exc:
            return 503, {"error": "partitioned", "stale": True,
                         "detail": str(exc),
                         "retry_after_s": exc.retry_after_s}
        except QueueFull as exc:
            return 429, {"error": "queue_full", "detail": str(exc),
                         "kind": exc.kind, "depth": exc.depth,
                         "limit": exc.limit,
                         "retry_after_s": exc.retry_after_s}
        job_doc = self._job_doc(submission.job)
        job_doc["outcome"] = submission.outcome
        return 202, job_doc

    # -- fleet verbs -------------------------------------------------------
    def _fleet_steal(self, body: bytes) -> tuple[int, dict]:
        try:
            doc = json.loads(body.decode("utf-8") or "{}")
        except (ValueError, UnicodeDecodeError) as exc:
            return 400, {"error": "bad_request",
                         "detail": f"body is not JSON: {exc}"}
        recipes = self.service.steal_unclaimed(
            max(0, int(doc.get("max_jobs", 1))),
            thief=str(doc.get("thief", "fleet")))
        wire = []
        for recipe in recipes:
            recipe = dict(recipe)
            module = recipe.pop("module", b"")
            recipe["module_b64"] = base64.b64encode(module) \
                .decode("ascii")
            wire.append(recipe)
        return 200, {"recipes": wire, "stolen": len(wire)}

    def _fleet_journal(self, raw_path: str) -> tuple[int, dict]:
        query = parse_qs(raw_path.partition("?")[2])
        try:
            cursor = int(query.get("cursor", ["0"])[0])
        except ValueError:
            return 400, {"error": "bad_request",
                         "detail": "cursor must be an integer"}
        entries, new_cursor = self.service.ship_journal(cursor)
        return 200, {"entries": entries, "cursor": new_cursor}

    def _fleet_replicate(self, body: bytes) -> tuple[int, dict]:
        try:
            doc = json.loads(body.decode("utf-8") or "{}")
        except (ValueError, UnicodeDecodeError) as exc:
            return 400, {"error": "bad_request",
                         "detail": f"body is not JSON: {exc}"}
        entries = doc.get("entries")
        if not isinstance(entries, list):
            return 400, {"error": "bad_request",
                         "detail": "need an entries list"}
        applied = self.service.apply_replica_verdicts(entries)
        return 200, {"applied": applied}

    def _fleet_partition(self, body: bytes) -> tuple[int, dict]:
        try:
            doc = json.loads(body.decode("utf-8") or "{}")
        except (ValueError, UnicodeDecodeError) as exc:
            return 400, {"error": "bad_request",
                         "detail": f"body is not JSON: {exc}"}
        partitioned = bool(doc.get("partitioned", True))
        reason = doc.get("reason")
        self.service.set_partitioned(
            partitioned, str(reason) if reason is not None else None)
        return 200, {"ok": True, "partitioned": partitioned}

    # -- GET /scans/{id} ---------------------------------------------------
    def _status(self, job_id: str) -> tuple[int, dict]:
        job = self.service.job(job_id)
        if job is None:
            return 404, {"error": "unknown_job", "id": job_id}
        return 200, self._job_doc(job)

    def _job_doc(self, job) -> dict:
        doc = job.to_doc()
        if job.config.get("kind") == "reverdict":
            # Re-verdict jobs carry a sweep report, not a campaign
            # result doc; there is no per-tool verdict to decode.
            if job.result_doc is not None:
                doc["result"] = job.result_doc
            return doc
        if job.state == "done" and job.result_doc is not None:
            result = campaign_result_from_doc(job.result_doc)
            tool = job.config["tool"]
            scan = result.scans.get(tool)
            doc["result"] = job.result_doc
            if scan is not None:
                doc["verdict"] = json.loads(report_to_json(scan))
        return doc

"""Transport-free HTTP API: (method, path, body) -> (status, doc).

The routing and response-shaping logic lives here, decoupled from the
socket layer in :mod:`repro.service.server`, so the full request
surface is unit-testable without binding a port.

Endpoints
---------

``POST /scans``
    JSON body ``{"module_b64": ..., "abi": ..., "config": {...},
    "client": ..., "priority": ...}``.  Responses:

    * ``200`` — dedup hit: an identical module+config was already
      scanned; the cached verdict is returned immediately
      (``outcome: "cached"``);
    * ``202`` — admitted: ``outcome`` is ``"queued"`` (a new job) or
      ``"coalesced"`` (attached single-flight to an in-flight twin);
    * ``400`` — the upload failed sandboxed ingestion
      (``error: "malformed_module"``) or the request itself is bad;
    * ``429`` — typed backpressure shed (``error: "queue_full"``,
      with the saturated bound in ``kind``/``limit`` and a
      ``retry_after_s`` hint the HTTP layer mirrors as a
      ``Retry-After`` header).

    Optional body field ``ttl_s`` bounds how long the job may wait in
    the queue before expiring with the terminal state ``expired``.

``GET /scans/{id}``
    Job lifecycle doc (``queued | running | done | failed |
    quarantined | expired``); terminal jobs include the verdict /
    error.

``GET /healthz``
    Readiness + health: ``status`` is ``ok`` (accepting, breakers
    closed), ``degraded`` (serving, but some pipeline-stage breaker is
    open — affected scans run black-box-only) or ``draining`` (not
    accepting: graceful drain or a worker restart storm), plus the
    supervisor's worker counts and the open breaker list.

``GET /stats``
    Queue depth, in-flight, dedup hit rates, shed counts, p50/p95 job
    latency, per-stage breaker snapshots and the self-healing counters
    (worker restarts, breaker trips, integrity repairs, journal
    compactions).

``GET /integrity``
    On-demand storage integrity sweep: recomputes every stored row's
    checksum and reports (and by default repairs) corruption.
"""

from __future__ import annotations

import base64
import binascii
import json

from ..resilience import MalformedModule
from ..resilience.journal import campaign_result_from_doc
from ..scanner.report import report_to_json
from .queue import QueueFull
from .scheduler import ScanService

__all__ = ["ServiceApi"]


class ServiceApi:
    """Route one parsed request against a :class:`ScanService`."""

    def __init__(self, service: ScanService):
        self.service = service

    def handle(self, method: str, path: str,
               body: bytes = b"") -> tuple[int, dict]:
        path = path.split("?", 1)[0].rstrip("/") or "/"
        if method == "GET" and path == "/healthz":
            return 200, self.service.health()
        if method == "GET" and path == "/stats":
            return 200, self.service.stats()
        if method == "GET" and path == "/integrity":
            return 200, self.service.integrity_sweep()
        if method == "POST" and path == "/scans":
            return self._submit(body)
        if method == "GET" and path.startswith("/scans/"):
            return self._status(path[len("/scans/"):])
        return 404, {"error": "not_found", "path": path}

    # -- POST /scans -------------------------------------------------------
    def _submit(self, body: bytes) -> tuple[int, dict]:
        try:
            doc = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            return 400, {"error": "bad_request",
                         "detail": f"body is not JSON: {exc}"}
        if not isinstance(doc, dict) or "module_b64" not in doc \
                or "abi" not in doc:
            return 400, {"error": "bad_request",
                         "detail": "need module_b64 and abi fields"}
        try:
            data = base64.b64decode(doc["module_b64"], validate=True)
        except (binascii.Error, ValueError) as exc:
            return 400, {"error": "bad_request",
                         "detail": f"module_b64 is not base64: {exc}"}
        ttl_s = doc.get("ttl_s")
        try:
            submission = self.service.submit_bytes(
                data, doc["abi"], config=doc.get("config"),
                client=str(doc.get("client", "anon")),
                priority=int(doc.get("priority", 0)),
                ttl_s=float(ttl_s) if ttl_s is not None else None)
        except MalformedModule as exc:
            # Hostile upload rejected at admission — it never reached
            # a worker; the diagnostic names the offending byte range.
            return 400, {"error": "malformed_module",
                         "detail": str(exc),
                         "stage": "ingest"}
        except QueueFull as exc:
            return 429, {"error": "queue_full", "detail": str(exc),
                         "kind": exc.kind, "depth": exc.depth,
                         "limit": exc.limit,
                         "retry_after_s": exc.retry_after_s}
        job_doc = self._job_doc(submission.job)
        # The job's own outcome says how *it* was admitted; the reply
        # reflects how *this submission* was satisfied (a coalesced
        # duplicate shares a job whose outcome is "queued").
        job_doc["outcome"] = submission.outcome
        if submission.cached:
            # "409-style" dedup: the verdict already exists, so the
            # reply carries it immediately instead of a pending job.
            return 200, job_doc
        return 202, job_doc

    # -- GET /scans/{id} ---------------------------------------------------
    def _status(self, job_id: str) -> tuple[int, dict]:
        job = self.service.job(job_id)
        if job is None:
            return 404, {"error": "unknown_job", "id": job_id}
        return 200, self._job_doc(job)

    def _job_doc(self, job) -> dict:
        doc = job.to_doc()
        if job.state == "done" and job.result_doc is not None:
            result = campaign_result_from_doc(job.result_doc)
            tool = job.config["tool"]
            scan = result.scans.get(tool)
            doc["result"] = job.result_doc
            if scan is not None:
                doc["verdict"] = json.loads(report_to_json(scan))
        return doc

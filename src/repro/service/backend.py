"""The coordinator/worker seam: one scan node as the fleet sees it.

PR 4/5 built a single self-healing daemon; fleet scale needs the
scheduler split behind an interface so the *same* coordinator logic
(consistent-hash sharding, work stealing, journal-shipped replicas,
failover) drives any deployment shape.  :class:`CoordinatorBackend`
is that seam — everything the fleet layer ever does to a node:

* ``submit`` / ``job`` — route work to the node and observe it;
* ``steal`` — pull *unclaimed* queue entries off an overloaded node
  as self-contained recipes a peer can run (never in-flight claims);
* ``ship_journal`` / ``apply_replica_verdicts`` — the read-replica
  pipe: a monotonic byte cursor over the node's JSONL journal on the
  shipping side, idempotent verdict ingestion on the applying side;
* ``set_partitioned`` — chaos/topology control for partition drills;
* ``kill`` — abrupt node death (no drain, no checkpoint).

Three implementations cover the deployment ladder:

:class:`InProcessBackend`
    wraps a :class:`~repro.service.scheduler.ScanService` directly —
    threads in this process.  Zero serialization; what the tests and
    the 3-node ``wasai chaos --schedule fleet`` drill use.
:class:`ProcessBackend`
    boots a full daemon (service + HTTP server) in a child process
    and talks to it over loopback HTTP — the local process pool, and
    the seam the multi-core scale-out reuses.
:class:`RemoteBackend`
    an already-running ``wasai serve`` daemon anywhere reachable over
    HTTP; the fleet endpoints (``/fleet/steal``, ``/fleet/journal``,
    ``/fleet/replicate``, ``/fleet/partition``) carry the seam's
    verbs on the wire.

Node *unreachability* is a first-class typed outcome
(:class:`BackendUnavailable`), because the fleet's whole job is to
route around it.

:class:`HashRing` is the sharding primitive: consistent hashing with
virtual nodes over sha256, so job placement is deterministic for a
given membership and a membership change only remaps the keys whose
arc actually moved — the "deterministic rebalancing" the drill
asserts.
"""

from __future__ import annotations

import base64
import bisect
import hashlib
from abc import ABC, abstractmethod

from .client import ServiceClient, ServiceError
from .scheduler import NodePartitioned, ScanService
from .queue import QueueFull

__all__ = ["BackendUnavailable", "CoordinatorBackend", "HashRing",
           "InProcessBackend", "ProcessBackend", "RemoteBackend",
           "module_hash_of"]


class BackendUnavailable(Exception):
    """The node is dead or unreachable; the coordinator must route
    around it (and fail over its jobs exactly once)."""


def module_hash_of(data: bytes) -> str:
    """The canonical ``module_content_hash`` of raw contract bytes —
    the fleet's shard key.  Raises
    :class:`~repro.resilience.MalformedModule` for hostile uploads,
    so routing and admission share one rejection path."""
    from ..engine.deploy import module_content_hash
    from ..wasm.hardening import load_untrusted_module
    return module_content_hash(load_untrusted_module(data))


class HashRing:
    """Consistent hashing with virtual nodes (sha256 placement).

    Each node owns ``replicas`` pseudo-random points on a 64-bit
    ring; a key belongs to the first node point at or after its own
    hash.  Placement depends only on (membership, replicas), never on
    join order, so every coordinator — and every node checking for a
    shard redirect — computes identical owners.  Adding or removing
    one node remaps only the keys on the arcs that node's points
    bound: measured in :mod:`tests.service.test_backend`, well under
    ``2/n`` of the keyspace for an ``n``-node ring."""

    def __init__(self, nodes: "tuple[str, ...] | list[str]" = (),
                 replicas: int = 64):
        self.replicas = replicas
        self._nodes: set[str] = set()
        self._points: list[tuple[int, str]] = []
        for node in nodes:
            self.add(node)

    @staticmethod
    def _hash(material: str) -> int:
        digest = hashlib.sha256(material.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def add(self, node: str) -> None:
        if node in self._nodes:
            return
        self._nodes.add(node)
        for index in range(self.replicas):
            self._points.append((self._hash(f"{node}#{index}"), node))
        self._points.sort()

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._points = [(point, name) for point, name in self._points
                        if name != node]

    @property
    def nodes(self) -> frozenset[str]:
        return frozenset(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def owner(self, key: str) -> str:
        """The node owning ``key`` (a ``module_content_hash``)."""
        if not self._points:
            raise BackendUnavailable("hash ring has no nodes")
        point = self._hash(key)
        index = bisect.bisect_right(self._points, (point, "￿"))
        if index == len(self._points):
            index = 0
        return self._points[index][1]

    def owners(self, key: str, count: int) -> list[str]:
        """The first ``count`` *distinct* nodes clockwise from the
        key's point — the preference order failover walks."""
        if not self._points:
            raise BackendUnavailable("hash ring has no nodes")
        point = self._hash(key)
        index = bisect.bisect_right(self._points, (point, "￿"))
        out: list[str] = []
        for step in range(len(self._points)):
            name = self._points[(index + step) % len(self._points)][1]
            if name not in out:
                out.append(name)
                if len(out) >= count:
                    break
        return out


class CoordinatorBackend(ABC):
    """Everything the fleet coordinator ever asks of one node."""

    name: str

    # -- lifecycle ---------------------------------------------------------
    @abstractmethod
    def start(self) -> None: ...

    @abstractmethod
    def stop(self) -> None: ...

    @abstractmethod
    def kill(self) -> None:
        """Abrupt death (chaos drill): no drain, no checkpoint."""

    @property
    @abstractmethod
    def alive(self) -> bool: ...

    # -- work --------------------------------------------------------------
    @abstractmethod
    def submit(self, data: bytes, abi_json: "str | dict",
               config: dict | None = None, client: str = "anon",
               priority: int = 0,
               ttl_s: float | None = None,
               deadline_epoch_s: float | None = None) -> dict: ...

    @abstractmethod
    def job(self, job_id: str) -> dict | None: ...

    @abstractmethod
    def health(self) -> dict: ...

    @abstractmethod
    def stats(self) -> dict: ...

    def queue_depth(self) -> int:
        return int(self.stats().get("queue_depth", 0))

    # -- fleet verbs -------------------------------------------------------
    @abstractmethod
    def steal(self, max_jobs: int,
              thief: str = "fleet") -> list[dict]: ...

    @abstractmethod
    def ship_journal(self, cursor: int = 0
                     ) -> tuple[list[dict], int]: ...

    @abstractmethod
    def apply_replica_verdicts(self, entries: list[dict]) -> int: ...

    @abstractmethod
    def set_partitioned(self, partitioned: bool,
                        reason: str | None = None) -> None: ...


class InProcessBackend(CoordinatorBackend):
    """A node that is a :class:`ScanService` in this process."""

    def __init__(self, name: str, service: ScanService):
        self.name = name
        self.service = service

    def _check(self) -> ScanService:
        if self.service.dead:
            raise BackendUnavailable(f"node {self.name} is dead")
        return self.service

    def start(self) -> None:
        self._check().start()

    def stop(self) -> None:
        if not self.service.dead:
            self.service.stop(wait_s=10.0)

    def kill(self) -> None:
        self.service.kill()

    @property
    def alive(self) -> bool:
        return not self.service.dead

    def submit(self, data: bytes, abi_json: "str | dict",
               config: dict | None = None, client: str = "anon",
               priority: int = 0, ttl_s: float | None = None,
               deadline_epoch_s: float | None = None) -> dict:
        submission = self._check().submit_bytes(
            data, abi_json, config=config, client=client,
            priority=priority, ttl_s=ttl_s,
            deadline_epoch_s=deadline_epoch_s)
        doc = submission.job.to_doc()
        doc["outcome"] = submission.outcome
        if submission.job.result_doc is not None:
            doc["result"] = submission.job.result_doc
        return doc

    def job(self, job_id: str) -> dict | None:
        job = self._check().job(job_id)
        if job is None:
            return None
        doc = job.to_doc()
        if job.result_doc is not None:
            doc["result"] = job.result_doc
        return doc

    def health(self) -> dict:
        return self._check().health()

    def stats(self) -> dict:
        return self._check().stats()

    def steal(self, max_jobs: int, thief: str = "fleet") -> list[dict]:
        return self._check().steal_unclaimed(max_jobs, thief=thief)

    def ship_journal(self, cursor: int = 0) -> tuple[list[dict], int]:
        return self._check().ship_journal(cursor)

    def apply_replica_verdicts(self, entries: list[dict]) -> int:
        return self._check().apply_replica_verdicts(entries)

    def set_partitioned(self, partitioned: bool,
                        reason: str | None = None) -> None:
        # Deliberately no _check(): chaos may label a node that is
        # already unreachable, and healing must always be possible.
        self.service.set_partitioned(partitioned, reason)


class RemoteBackend(CoordinatorBackend):
    """A node reached over HTTP (an independent ``wasai serve``)."""

    def __init__(self, name: str, base_url: str, *,
                 timeout_s: float = 30.0, client: ServiceClient | None = None):
        self.name = name
        self.base_url = base_url.rstrip("/")
        self.client = client or ServiceClient(
            self.base_url, timeout_s=timeout_s, max_retries=1,
            backoff_base_s=0.05, backoff_cap_s=0.5)
        self._killed = False

    def _call(self, op, *args, **kwargs):
        if self._killed:
            raise BackendUnavailable(f"node {self.name} is dead")
        try:
            return op(*args, **kwargs)
        except ServiceError as exc:
            if exc.status == 503 and exc.error == "unavailable":
                raise BackendUnavailable(
                    f"node {self.name} unreachable: {exc}") from exc
            if exc.status == 503 and exc.error == "partitioned":
                raise NodePartitioned(str(exc)) from exc
            if exc.status == 429:
                doc = exc.doc
                raise QueueFull(
                    str(doc.get("detail", exc)),
                    depth=int(doc.get("depth", 0)),
                    limit=int(doc.get("limit", 0)),
                    kind=str(doc.get("kind", "queue")),
                    retry_after_s=float(
                        doc.get("retry_after_s", 1.0))) from exc
            raise

    def start(self) -> None:
        pass                        # the remote daemon has its own life

    def stop(self) -> None:
        pass

    def kill(self) -> None:
        # The coordinator cannot SIGKILL a remote host; it just stops
        # talking to it (chaos uses in-proc/process backends for real
        # kills).
        self._killed = True

    @property
    def alive(self) -> bool:
        return not self._killed

    def submit(self, data: bytes, abi_json: "str | dict",
               config: dict | None = None, client: str = "anon",
               priority: int = 0, ttl_s: float | None = None,
               deadline_epoch_s: float | None = None) -> dict:
        return self._call(self.client.submit, data, abi_json,
                          config=config, client=client,
                          priority=priority, ttl_s=ttl_s,
                          deadline_epoch_s=deadline_epoch_s)

    def job(self, job_id: str) -> dict | None:
        try:
            return self._call(self.client.status, job_id)
        except ServiceError as exc:
            if exc.status == 404:
                return None
            raise

    def health(self) -> dict:
        return self._call(self.client.health)

    def stats(self) -> dict:
        return self._call(self.client.stats)

    def steal(self, max_jobs: int, thief: str = "fleet") -> list[dict]:
        doc = self._call(self.client._checked, "POST", "/fleet/steal",
                         {"max_jobs": max_jobs, "thief": thief})
        recipes = []
        for recipe in doc.get("recipes", ()):
            recipe = dict(recipe)
            recipe["module"] = base64.b64decode(
                recipe.pop("module_b64", ""))
            recipes.append(recipe)
        return recipes

    def ship_journal(self, cursor: int = 0) -> tuple[list[dict], int]:
        doc = self._call(self.client._checked, "GET",
                         f"/fleet/journal?cursor={int(cursor)}")
        return list(doc.get("entries", ())), int(doc.get("cursor", 0))

    def apply_replica_verdicts(self, entries: list[dict]) -> int:
        doc = self._call(self.client._checked, "POST",
                         "/fleet/replicate", {"entries": entries})
        return int(doc.get("applied", 0))

    def set_partitioned(self, partitioned: bool,
                        reason: str | None = None) -> None:
        self._call(self.client._checked, "POST", "/fleet/partition",
                   {"partitioned": bool(partitioned),
                    "reason": reason})


def _process_node_main(name: str, conn, store_path: str,
                       journal_path: str, config_doc: dict) -> None:
    """Child-process entry: boot a full daemon, report the port."""
    from ..resilience import CampaignJournal
    from .scheduler import ScanServiceConfig
    from .server import make_server, serve_forever
    service = ScanService(
        store=store_path, config=ScanServiceConfig(**config_doc),
        journal=CampaignJournal(journal_path))
    server = make_server(service, host="127.0.0.1", port=0)
    conn.send(server.server_address[1])
    conn.close()
    serve_forever(server, install_signals=True)


class ProcessBackend(RemoteBackend):
    """A node in a supervised local child process (the process-pool
    backend): a whole daemon — store, journal, workers, HTTP — booted
    per node, so node death is *real* process death and the fleet's
    failover path is exercised against the same transport a remote
    deployment uses."""

    def __init__(self, name: str, root: str, *,
                 config: dict | None = None, timeout_s: float = 30.0):
        self.root = root
        self._config = dict(config or {})
        self._process = None
        self._timeout_s = timeout_s
        # base_url is bound at start(); RemoteBackend init is deferred
        # via a placeholder and rebuilt once the child reports a port.
        super().__init__(name, "http://127.0.0.1:0",
                         timeout_s=timeout_s)

    def start(self) -> None:
        if self._process is not None:
            return
        import multiprocessing
        ctx = multiprocessing.get_context("fork")
        parent_conn, child_conn = ctx.Pipe()
        self._process = ctx.Process(
            target=_process_node_main,
            args=(self.name, child_conn,
                  f"{self.root}/{self.name}.db",
                  f"{self.root}/{self.name}.jsonl", self._config),
            daemon=True)
        self._process.start()
        child_conn.close()
        if not parent_conn.poll(self._timeout_s):
            raise BackendUnavailable(
                f"node {self.name} never reported a port")
        port = parent_conn.recv()
        parent_conn.close()
        self.base_url = f"http://127.0.0.1:{port}"
        self.client = ServiceClient(
            self.base_url, timeout_s=self._timeout_s, max_retries=2,
            backoff_base_s=0.05, backoff_cap_s=0.5)

    def stop(self) -> None:
        if self._process is None:
            return
        self._process.terminate()   # SIGTERM: graceful drain
        self._process.join(timeout=15.0)
        if self._process.is_alive():
            self._process.kill()
            self._process.join(timeout=5.0)
        self._process = None

    def kill(self) -> None:
        if self._process is not None:
            self._process.kill()    # SIGKILL: abrupt death
            self._process.join(timeout=5.0)
            self._process = None
        self._killed = True

    @property
    def alive(self) -> bool:
        return (not self._killed and self._process is not None
                and self._process.is_alive())

"""``wasai chaos`` — drill the self-healing runtime against a live daemon.

The drill boots a real HTTP scan daemon (ephemeral port, throwaway
store + journal in a temp directory) and marches it through a
deterministic fault schedule, phase by phase, asserting the liveness
invariants the self-healing machinery promises:

* **no lost job** — every admitted submission reaches a terminal
  state, through worker kills, hangs, disk faults and store rebuilds;
* **no wrong verdict** — every completed scan returns the same result
  an undisturbed daemon would (verdicts recovered after storage
  corruption are byte-identical to the originals; breaker-degraded
  runs are flagged degraded and never cached);
* **auto-recovery** — after the faults stop, the daemon converges back
  to ``/healthz`` ``status: ok`` with a full worker complement, with
  no operator intervention;
* **accurate accounting** — ``/stats`` reports the healing events
  (worker restarts, breaker trips/recoveries, integrity repairs,
  journal compactions) that actually happened;
* **exactly-once requeue** — a killed or hung worker's job is requeued
  precisely once (claim-token revocation makes the zombie's result a
  no-op).

Faults come from the same deterministic
:mod:`~repro.resilience.faultinject` plans the test suite uses, so a
failing drill reproduces exactly under the same schedule.  Two
schedules: ``ci`` (every phase; the chaos-drill CI job runs this) and
``quick`` (a subset for fast local runs and the unit test).
"""

from __future__ import annotations

import shutil
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..benchgen import ContractConfig, generate_contract
from ..resilience import (CampaignJournal, Fault, clear_fault_plan,
                          install_fault_plan)
from ..wasm import encode_module
from .client import ServiceClient
from .scheduler import ScanService, ScanServiceConfig
from .server import make_server

__all__ = ["ChaosReport", "run_chaos_drill", "CHAOS_SCHEDULES"]

# Phase order matters: later phases assert cumulative counters.
CHAOS_SCHEDULES = {
    "ci": ("baseline", "worker_kill", "worker_hang",
           "store_corruption", "journal_truncation", "disk_full",
           "breaker_cycle", "final_invariants"),
    "quick": ("baseline", "worker_kill", "disk_full",
              "breaker_cycle", "final_invariants"),
}

# Small virtual budget: one campaign lands well under a second of real
# time while still exercising the full concolic pipeline.
_DRILL_TIMEOUT_MS = 2_500.0
_WAIT_S = 90.0


class ChaosViolation(AssertionError):
    """A liveness invariant did not hold under the fault schedule."""


def _expect(condition: bool, message: str) -> None:
    if not condition:
        raise ChaosViolation(message)


@dataclass
class ChaosReport:
    """What the drill did and which invariants held."""

    schedule: str
    phases: list[dict] = field(default_factory=list)
    stats: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return bool(self.phases) and all(p["ok"] for p in self.phases)

    def to_doc(self) -> dict:
        return {"schedule": self.schedule, "ok": self.ok,
                "phases": list(self.phases), "stats": self.stats}

    def format(self) -> str:
        lines = [f"--- chaos drill ({self.schedule}) ---"]
        for phase in self.phases:
            mark = "ok " if phase["ok"] else "FAIL"
            lines.append(f"  [{mark}] {phase['name']:<20} "
                         f"{phase['seconds']:6.2f}s  {phase['detail']}")
        verdict = "PASSED" if self.ok else "FAILED"
        lines.append(f"  drill {verdict}")
        return "\n".join(lines)


class _Drill:
    """One live daemon plus the helpers the phases share."""

    def __init__(self, root: Path, verbose: bool = False):
        self.root = root
        self.verbose = verbose
        self.config = ScanServiceConfig(
            workers=2, max_depth=32, poll_s=0.02,
            default_timeout_ms=_DRILL_TIMEOUT_MS,
            task_deadline_s=1.25, watchdog_poll_s=0.05,
            max_restarts=64, restart_window_s=300.0,
            restart_backoff_s=0.01,
            breaker_threshold=2, breaker_cooldown_s=0.75)
        self.journal = CampaignJournal(root / "chaos.jsonl")
        self.service = ScanService(store=str(root / "chaos.db"),
                                   config=self.config,
                                   journal=self.journal)
        self.server = make_server(self.service, port=0)
        self.port = self.server.server_address[1]
        self.thread = threading.Thread(
            target=self.server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="chaos-daemon", daemon=True)
        self.thread.start()
        self.client = ServiceClient(
            f"http://127.0.0.1:{self.port}", timeout_s=30.0,
            max_retries=4, backoff_base_s=0.02, backoff_cap_s=0.25)
        self.job_ids: list[str] = []
        self.results: dict[int, dict] = {}   # seed -> result doc

    def close(self) -> None:
        clear_fault_plan()
        self.server.shutdown()
        self.thread.join(timeout=10.0)
        self.service.stop(wait_s=10.0)
        self.server.server_close()

    # -- helpers -----------------------------------------------------------
    def contract(self, seed: int) -> tuple[bytes, str]:
        generated = generate_contract(
            ContractConfig(seed=seed, fake_eos_guard=False,
                           maze_depth=2 + seed % 4))
        return encode_module(generated.module), generated.abi.to_json()

    def submit_and_wait(self, seed: int, client_name: str,
                        expect_state: str = "done") -> dict:
        data, abi = self.contract(seed)
        doc = self.client.submit(data, abi, client=client_name)
        job_id = doc["id"]
        self.job_ids.append(job_id)
        if doc.get("state") not in ("done", "failed", "quarantined",
                                    "expired"):
            doc = self.client.wait(job_id, timeout_s=_WAIT_S,
                                   poll_s=0.02)
        _expect(doc.get("state") == expect_state,
                f"seed {seed} job {job_id} ended "
                f"{doc.get('state')!r} (wanted {expect_state!r}); "
                f"error={doc.get('error')!r}")
        return doc

    def stats(self) -> dict:
        return self.client.stats()

    # -- phases ------------------------------------------------------------
    def baseline(self) -> str:
        """Healthy daemon: scans complete, dedup works, /healthz ok."""
        first = self.submit_and_wait(0, "baseline")
        _expect(first.get("result") is not None,
                "baseline job completed without a result doc")
        self.results[0] = first["result"]
        again = self.submit_and_wait(0, "baseline-redo")
        _expect(again["outcome"] == "cached",
                f"identical resubmit was {again['outcome']!r}, "
                "not served from the store")
        _expect(again["result"] == first["result"],
                "cached verdict differs from the freshly computed one")
        health = self.client.health()
        _expect(health["status"] == "ok",
                f"healthy daemon reports {health['status']!r}")
        return "scan + dedup + health all nominal"

    def worker_kill(self) -> str:
        """A worker dies mid-claim; the watchdog requeues exactly once."""
        install_fault_plan(Fault(stage="worker", kind="kill", times=1))
        try:
            doc = self.submit_and_wait(1, "kill-victim")
        finally:
            clear_fault_plan()
        self.results[1] = doc.get("result")
        _expect(doc.get("requeues") == 1,
                f"killed worker's job requeued {doc.get('requeues', 0)} "
                "times, not exactly once")
        stats = self.stats()
        _expect(stats["supervisor"]["reaps"]["died"] >= 1,
                "watchdog never recorded the dead worker")
        _expect(stats["resilience"]["worker_restarts"] >= 1,
                "/stats does not report the worker restart")
        return (f"worker died, job requeued once, "
                f"{stats['supervisor']['restarts']} restart(s)")

    def worker_hang(self) -> str:
        """A worker wedges past the task deadline; the job is revoked
        from the zombie and requeued exactly once."""
        hang_s = self.config.task_deadline_s * 2
        install_fault_plan(Fault(stage="worker", kind="hang",
                                 hang_s=hang_s, times=1))
        try:
            doc = self.submit_and_wait(2, "hang-victim")
        finally:
            clear_fault_plan()
        _expect(doc.get("requeues") == 1,
                f"hung worker's job requeued {doc.get('requeues', 0)} "
                "times, not exactly once")
        stats = self.stats()
        _expect(stats["supervisor"]["reaps"]["hung"] >= 1,
                "watchdog never declared the wedged worker hung")
        # Give the zombie time to wake and try to write: its claim was
        # revoked, so the completed job's verdict must stay stable.
        time.sleep(hang_s + 0.5)
        after = self.client.status(doc["id"])
        _expect(after["state"] == "done"
                and after.get("result") == doc.get("result"),
                "zombie worker's late result disturbed the job")
        return "hung worker abandoned, zombie's late write discarded"

    def store_corruption(self) -> str:
        """A verdict row is corrupted at rest; the next read detects
        it, quarantines the database and rebuilds from the journal."""
        # after=1 skips the module write: the 2nd store write of the
        # next submission is the verdict row.
        install_fault_plan(Fault(stage="store", kind="corrupt",
                                 after=1, times=1))
        try:
            first = self.submit_and_wait(3, "corrupt-victim")
        finally:
            clear_fault_plan()
        self.results[3] = first["result"]
        again = self.submit_and_wait(3, "corrupt-redo")
        _expect(again["outcome"] == "cached",
                "verdict not re-served after store recovery "
                f"(outcome {again['outcome']!r})")
        _expect(again["result"] == first["result"],
                "recovered verdict differs from the original — "
                "a wrong verdict was served")
        stats = self.stats()
        _expect(stats["resilience"]["integrity_repairs"] >= 1,
                "/stats does not report the store repair")
        sweep = self.client.integrity()
        _expect(sweep["corrupt_rows"] == 0,
                f"store still corrupt after rebuild: {sweep}")
        quarantined = list(Path(self.root).glob("chaos.db.corrupt-*"))
        _expect(len(quarantined) >= 1,
                "corrupt database image was not quarantined aside")
        return ("verdict row corrupted, store rebuilt from journal, "
                "recovered verdict byte-identical")

    def journal_truncation(self) -> str:
        """A torn (truncated) journal line neither breaks resume
        parsing nor survives compaction."""
        path = self.journal.path
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"v": 1, "key": "torn-by-a-crash", "resu')
        before = self.journal.load()
        _expect("torn-by-a-crash" not in before,
                "truncated journal line was parsed as a real entry")
        removed = self.service.compact_journal()
        _expect(removed >= 1,
                f"compaction removed {removed} lines; the torn line "
                "survived")
        _expect(self.journal.load().keys() == before.keys(),
                "compaction lost journal entries")
        stats = self.stats()
        _expect(stats["resilience"]["journal_compactions"] >= 1,
                "/stats does not report the journal compaction")
        doc = self.submit_and_wait(4, "post-compaction")
        self.results[4] = doc.get("result")
        return (f"torn line dropped, {removed} stale line(s) "
                "compacted, journal still serving")

    def disk_full(self) -> str:
        """One store write fails like a full disk: the submission is
        shed with typed 429 + Retry-After, and the client's backoff
        absorbs it."""
        sleeps: list[float] = []
        patient = ServiceClient(self.client.base_url, timeout_s=30.0,
                                max_retries=4, backoff_base_s=0.01,
                                backoff_cap_s=0.1,
                                sleep=lambda s: (sleeps.append(s),
                                                 time.sleep(s)))
        data, abi = self.contract(5)
        install_fault_plan(Fault(stage="disk", kind="error", times=1))
        try:
            doc = patient.submit(data, abi, client="disk-victim")
        finally:
            clear_fault_plan()
        self.job_ids.append(doc["id"])
        final = patient.wait(doc["id"], timeout_s=_WAIT_S, poll_s=0.02)
        _expect(final["state"] == "done",
                f"job after disk fault ended {final['state']!r}")
        self.results[5] = final.get("result")
        _expect(len(sleeps) >= 1,
                "client never backed off, yet the first attempt was "
                "shed with 429")
        stats = self.stats()
        _expect(stats["shed"] >= 1,
                "/stats does not count the disk-budget shed")
        return (f"write shed with 429/Retry-After, client retried "
                f"after {sleeps[0]:.3f}s and succeeded")

    def breaker_cycle(self) -> str:
        """A deterministically failing solver trips the stage breaker;
        open-state jobs run black-box (and are not cached); a cooldown
        probe closes it again."""
        install_fault_plan(Fault(stage="solve", kind="error"))
        try:
            for seed, name in ((6, "solver-down-1"), (7, "solver-down-2")):
                doc = self.submit_and_wait(seed, name)
                _expect("wasai" in doc["result"].get("degraded", ()),
                        f"seed {seed} did not degrade despite the "
                        "dead solver")
            health = self.client.health()
            _expect(health["status"] == "degraded"
                    and "solve" in health["breakers"]["open"],
                    f"solve breaker not open after "
                    f"{self.config.breaker_threshold} consecutive "
                    f"failures: {health}")
            forced = self.submit_and_wait(8, "blackbox-era")
            _expect("wasai" in forced["result"].get("degraded", ()),
                    "open breaker did not force black-box mode")
            _expect(self.service.store.get_verdict(
                        forced["scan_key"]) is None,
                    "a breaker-degraded verdict was cached — it could "
                    "be served as the full-pipeline answer later")
        finally:
            clear_fault_plan()
        time.sleep(self.config.breaker_cooldown_s + 0.3)
        probe = self.submit_and_wait(9, "probe")
        _expect(not probe["result"].get("degraded"),
                "the half-open probe did not run the full pipeline")
        self.results[9] = probe["result"]
        health = self.client.health()
        _expect(health["status"] == "ok",
                f"breaker did not close after the probe: {health}")
        stats = self.stats()
        _expect(stats["resilience"]["breaker_trips"] >= 1
                and stats["resilience"]["breaker_recoveries"] >= 1,
                "/stats does not report the breaker trip/recovery")
        # The black-box-era contract now gets its full verdict.
        full = self.submit_and_wait(8, "post-recovery")
        _expect(not full["result"].get("degraded"),
                "post-recovery rescan still degraded")
        self.results[8] = full["result"]
        return ("solve breaker tripped after 2 failures, black-box era "
                "not cached, probe recovered, full verdict backfilled")

    def final_invariants(self) -> str:
        """Converged: nothing lost, health green, books balanced."""
        lost = []
        for job_id in self.job_ids:
            doc = self.client.status(job_id)
            if doc.get("state") not in ("done",):
                lost.append((job_id, doc.get("state")))
        _expect(not lost, f"jobs not completed after the drill: {lost}")
        health = self.client.health()
        _expect(health["status"] == "ok", f"not healthy: {health}")
        _expect(health["workers"]["alive"] >= self.config.workers,
                f"worker pool not restored: {health['workers']}")
        redo = self.submit_and_wait(0, "final-redo")
        _expect(redo["outcome"] == "cached"
                and redo["result"] == self.results[0],
                "post-drill verdict for the baseline contract changed")
        stats = self.stats()
        _expect(stats["accepting"] is True,
                "daemon stopped accepting during the drill")
        return (f"{len(self.job_ids)} jobs all terminal-done, "
                "health ok, baseline verdict unchanged")


def run_chaos_drill(schedule: str = "ci", *, verbose: bool = False,
                    keep_dir: "str | None" = None) -> ChaosReport:
    """Run one chaos schedule against a freshly booted daemon.

    ``keep_dir``, when given, is used as the drill's working directory
    and left on disk for post-mortem (default: a temp dir, removed)."""
    if schedule not in CHAOS_SCHEDULES:
        raise ValueError(
            f"unknown chaos schedule {schedule!r}; "
            f"choose from {sorted(CHAOS_SCHEDULES)}")
    root = Path(keep_dir) if keep_dir else \
        Path(tempfile.mkdtemp(prefix="wasai-chaos-"))
    root.mkdir(parents=True, exist_ok=True)
    report = ChaosReport(schedule=schedule)
    drill = _Drill(root, verbose=verbose)
    try:
        for name in CHAOS_SCHEDULES[schedule]:
            phase = getattr(drill, name)
            started = time.monotonic()
            try:
                detail = phase()
                ok = True
            except ChaosViolation as exc:
                detail, ok = str(exc), False
            except Exception as exc:  # noqa: BLE001 - report, don't crash
                detail, ok = f"{type(exc).__name__}: {exc}", False
            finally:
                clear_fault_plan()
            entry = {"name": name, "ok": ok, "detail": detail,
                     "seconds": time.monotonic() - started}
            report.phases.append(entry)
            if verbose:
                mark = "ok" if ok else "FAIL"
                print(f"[chaos] {mark:<4} {name}: {detail}")
            if not ok:
                break
        try:
            report.stats = drill.stats()
        except Exception:  # noqa: BLE001 - daemon may be wedged
            report.stats = {}
    finally:
        drill.close()
        if not keep_dir:
            shutil.rmtree(root, ignore_errors=True)
    return report

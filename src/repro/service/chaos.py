"""``wasai chaos`` — drill the self-healing runtime against a live daemon.

The drill boots a real HTTP scan daemon (ephemeral port, throwaway
store + journal in a temp directory) and marches it through a
deterministic fault schedule, phase by phase, asserting the liveness
invariants the self-healing machinery promises:

* **no lost job** — every admitted submission reaches a terminal
  state, through worker kills, hangs, disk faults and store rebuilds;
* **no wrong verdict** — every completed scan returns the same result
  an undisturbed daemon would (verdicts recovered after storage
  corruption are byte-identical to the originals; breaker-degraded
  runs are flagged degraded and never cached);
* **auto-recovery** — after the faults stop, the daemon converges back
  to ``/healthz`` ``status: ok`` with a full worker complement, with
  no operator intervention;
* **accurate accounting** — ``/stats`` reports the healing events
  (worker restarts, breaker trips/recoveries, integrity repairs,
  journal compactions) that actually happened;
* **exactly-once requeue** — a killed or hung worker's job is requeued
  precisely once (claim-token revocation makes the zombie's result a
  no-op).

Faults come from the same deterministic
:mod:`~repro.resilience.faultinject` plans the test suite uses, so a
failing drill reproduces exactly under the same schedule.  Four
schedules: ``ci`` (every single-daemon phase; the chaos-drill CI job
runs this), ``quick`` (a subset for fast local runs and the unit
test), ``fleet`` — a 3-node in-process fleet marched through
consistent-hash routing, tenant quotas, work stealing, a network
partition (minority refuses writes, serves stale-marked reads, heals
by journal replay) and a node kill mid-scan (every orphaned job fails
over to a surviving shard owner exactly once), asserting fleet-wide:
no lost job, no duplicate or changed verdict, truthful health — and
``overload``, which bursts a small daemon at 5x its capacity with
mixed caller deadlines and clients, asserting the overload machinery:
no deadline-exceeded job ever runs a full campaign, every refusal is
a typed 429 carrying a measured Retry-After, the brownout pressure
ladder engages under the burst and returns to ``normal`` after it
drains, and the ``/stats`` shed counters match what clients saw.
"""

from __future__ import annotations

import shutil
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..benchgen import ContractConfig, generate_contract
from ..resilience import (CampaignJournal, Fault, clear_fault_plan,
                          install_fault_plan)
from ..wasm import encode_module
from .backend import InProcessBackend
from .client import ServiceClient, ServiceError
from .fleet import FleetConfig, ScanFleet
from .health import pressure_rank
from .overload import SHED_KINDS
from .scheduler import NodePartitioned, ScanService, ScanServiceConfig
from .server import make_server
from .tenants import QuotaExceeded, TenantBook, UnknownApiKey

__all__ = ["ChaosReport", "run_chaos_drill", "CHAOS_SCHEDULES"]

# Phase order matters: later phases assert cumulative counters.
CHAOS_SCHEDULES = {
    "ci": ("baseline", "worker_kill", "worker_hang",
           "store_corruption", "journal_truncation", "disk_full",
           "breaker_cycle", "reverdict", "final_invariants"),
    "quick": ("baseline", "worker_kill", "disk_full",
              "breaker_cycle", "final_invariants"),
    "fleet": ("fleet_baseline", "fleet_work_stealing",
              "network_partition", "node_kill", "fleet_final"),
    "overload": ("overload_baseline", "deadline_cutoff",
                 "overload_burst", "brownout_recovery"),
}

# Small virtual budget: one campaign lands well under a second of real
# time while still exercising the full concolic pipeline.
_DRILL_TIMEOUT_MS = 2_500.0
_WAIT_S = 90.0


class ChaosViolation(AssertionError):
    """A liveness invariant did not hold under the fault schedule."""


def _expect(condition: bool, message: str) -> None:
    if not condition:
        raise ChaosViolation(message)


def _sans_provenance(doc: "dict | None") -> "dict | None":
    """A result doc minus its provenance stamp — replayed verdicts
    must equal fresh ones byte-for-byte except this field."""
    if not isinstance(doc, dict):
        return doc
    doc = dict(doc)
    doc.pop("provenance", None)
    return doc


@dataclass
class ChaosReport:
    """What the drill did and which invariants held."""

    schedule: str
    phases: list[dict] = field(default_factory=list)
    stats: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return bool(self.phases) and all(p["ok"] for p in self.phases)

    def to_doc(self) -> dict:
        return {"schedule": self.schedule, "ok": self.ok,
                "phases": list(self.phases), "stats": self.stats}

    def format(self) -> str:
        lines = [f"--- chaos drill ({self.schedule}) ---"]
        for phase in self.phases:
            mark = "ok " if phase["ok"] else "FAIL"
            lines.append(f"  [{mark}] {phase['name']:<20} "
                         f"{phase['seconds']:6.2f}s  {phase['detail']}")
        verdict = "PASSED" if self.ok else "FAILED"
        lines.append(f"  drill {verdict}")
        return "\n".join(lines)


class _Drill:
    """One live daemon plus the helpers the phases share."""

    def __init__(self, root: Path, verbose: bool = False,
                 config: "ScanServiceConfig | None" = None):
        self.root = root
        self.verbose = verbose
        self.config = config or ScanServiceConfig(
            workers=2, max_depth=32, poll_s=0.02,
            default_timeout_ms=_DRILL_TIMEOUT_MS,
            task_deadline_s=1.25, watchdog_poll_s=0.05,
            max_restarts=64, restart_window_s=300.0,
            restart_backoff_s=0.01,
            breaker_threshold=2, breaker_cooldown_s=0.75,
            capture_traces=True)
        self.journal = CampaignJournal(root / "chaos.jsonl")
        self.service = ScanService(store=str(root / "chaos.db"),
                                   config=self.config,
                                   journal=self.journal)
        self.server = make_server(self.service, port=0)
        self.port = self.server.server_address[1]
        self.thread = threading.Thread(
            target=self.server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="chaos-daemon", daemon=True)
        self.thread.start()
        self.client = ServiceClient(
            f"http://127.0.0.1:{self.port}", timeout_s=30.0,
            max_retries=4, backoff_base_s=0.02, backoff_cap_s=0.25)
        self.job_ids: list[str] = []
        self.results: dict[int, dict] = {}   # seed -> result doc

    def close(self) -> None:
        clear_fault_plan()
        self.server.shutdown()
        self.thread.join(timeout=10.0)
        self.service.stop(wait_s=10.0)
        self.server.server_close()

    # -- helpers -----------------------------------------------------------
    def contract(self, seed: int) -> tuple[bytes, str]:
        generated = generate_contract(
            ContractConfig(seed=seed, fake_eos_guard=False,
                           maze_depth=2 + seed % 4))
        return encode_module(generated.module), generated.abi.to_json()

    def submit_and_wait(self, seed: int, client_name: str,
                        expect_state: str = "done") -> dict:
        data, abi = self.contract(seed)
        doc = self.client.submit(data, abi, client=client_name)
        job_id = doc["id"]
        self.job_ids.append(job_id)
        if doc.get("state") not in ("done", "failed", "quarantined",
                                    "expired"):
            doc = self.client.wait(job_id, timeout_s=_WAIT_S,
                                   poll_s=0.02)
        _expect(doc.get("state") == expect_state,
                f"seed {seed} job {job_id} ended "
                f"{doc.get('state')!r} (wanted {expect_state!r}); "
                f"error={doc.get('error')!r}")
        return doc

    def stats(self) -> dict:
        return self.client.stats()

    # -- phases ------------------------------------------------------------
    def baseline(self) -> str:
        """Healthy daemon: scans complete, dedup works, /healthz ok."""
        first = self.submit_and_wait(0, "baseline")
        _expect(first.get("result") is not None,
                "baseline job completed without a result doc")
        self.results[0] = first["result"]
        again = self.submit_and_wait(0, "baseline-redo")
        _expect(again["outcome"] == "cached",
                f"identical resubmit was {again['outcome']!r}, "
                "not served from the store")
        _expect(again["result"] == first["result"],
                "cached verdict differs from the freshly computed one")
        health = self.client.health()
        _expect(health["status"] == "ok",
                f"healthy daemon reports {health['status']!r}")
        return "scan + dedup + health all nominal"

    def worker_kill(self) -> str:
        """A worker dies mid-claim; the watchdog requeues exactly once."""
        install_fault_plan(Fault(stage="worker", kind="kill", times=1))
        try:
            doc = self.submit_and_wait(1, "kill-victim")
        finally:
            clear_fault_plan()
        self.results[1] = doc.get("result")
        _expect(doc.get("requeues") == 1,
                f"killed worker's job requeued {doc.get('requeues', 0)} "
                "times, not exactly once")
        stats = self.stats()
        _expect(stats["supervisor"]["reaps"]["died"] >= 1,
                "watchdog never recorded the dead worker")
        _expect(stats["resilience"]["worker_restarts"] >= 1,
                "/stats does not report the worker restart")
        return (f"worker died, job requeued once, "
                f"{stats['supervisor']['restarts']} restart(s)")

    def worker_hang(self) -> str:
        """A worker wedges past the task deadline; the job is revoked
        from the zombie and requeued exactly once."""
        hang_s = self.config.task_deadline_s * 2
        install_fault_plan(Fault(stage="worker", kind="hang",
                                 hang_s=hang_s, times=1))
        try:
            doc = self.submit_and_wait(2, "hang-victim")
        finally:
            clear_fault_plan()
        _expect(doc.get("requeues") == 1,
                f"hung worker's job requeued {doc.get('requeues', 0)} "
                "times, not exactly once")
        stats = self.stats()
        _expect(stats["supervisor"]["reaps"]["hung"] >= 1,
                "watchdog never declared the wedged worker hung")
        # Give the zombie time to wake and try to write: its claim was
        # revoked, so the completed job's verdict must stay stable.
        time.sleep(hang_s + 0.5)
        after = self.client.status(doc["id"])
        _expect(after["state"] == "done"
                and after.get("result") == doc.get("result"),
                "zombie worker's late result disturbed the job")
        return "hung worker abandoned, zombie's late write discarded"

    def store_corruption(self) -> str:
        """A verdict row is corrupted at rest; the next read detects
        it, quarantines the database and rebuilds from the journal."""
        # after=1 skips the module write: the 2nd store write of the
        # next submission is the verdict row.
        install_fault_plan(Fault(stage="store", kind="corrupt",
                                 after=1, times=1))
        try:
            first = self.submit_and_wait(3, "corrupt-victim")
        finally:
            clear_fault_plan()
        self.results[3] = first["result"]
        again = self.submit_and_wait(3, "corrupt-redo")
        _expect(again["outcome"] == "cached",
                "verdict not re-served after store recovery "
                f"(outcome {again['outcome']!r})")
        _expect(again["result"] == first["result"],
                "recovered verdict differs from the original — "
                "a wrong verdict was served")
        stats = self.stats()
        _expect(stats["resilience"]["integrity_repairs"] >= 1,
                "/stats does not report the store repair")
        sweep = self.client.integrity()
        _expect(sweep["corrupt_rows"] == 0,
                f"store still corrupt after rebuild: {sweep}")
        quarantined = list(Path(self.root).glob("chaos.db.corrupt-*"))
        _expect(len(quarantined) >= 1,
                "corrupt database image was not quarantined aside")
        return ("verdict row corrupted, store rebuilt from journal, "
                "recovered verdict byte-identical")

    def journal_truncation(self) -> str:
        """A torn (truncated) journal line neither breaks resume
        parsing nor survives compaction."""
        path = self.journal.path
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"v": 1, "key": "torn-by-a-crash", "resu')
        before = self.journal.load()
        _expect("torn-by-a-crash" not in before,
                "truncated journal line was parsed as a real entry")
        removed = self.service.compact_journal()
        _expect(removed >= 1,
                f"compaction removed {removed} lines; the torn line "
                "survived")
        _expect(self.journal.load().keys() == before.keys(),
                "compaction lost journal entries")
        stats = self.stats()
        _expect(stats["resilience"]["journal_compactions"] >= 1,
                "/stats does not report the journal compaction")
        doc = self.submit_and_wait(4, "post-compaction")
        self.results[4] = doc.get("result")
        return (f"torn line dropped, {removed} stale line(s) "
                "compacted, journal still serving")

    def disk_full(self) -> str:
        """One store write fails like a full disk: the submission is
        shed with typed 429 + Retry-After, and the client's backoff
        absorbs it."""
        sleeps: list[float] = []
        patient = ServiceClient(self.client.base_url, timeout_s=30.0,
                                max_retries=4, backoff_base_s=0.01,
                                backoff_cap_s=0.1,
                                sleep=lambda s: (sleeps.append(s),
                                                 time.sleep(s)))
        data, abi = self.contract(5)
        install_fault_plan(Fault(stage="disk", kind="error", times=1))
        try:
            doc = patient.submit(data, abi, client="disk-victim")
        finally:
            clear_fault_plan()
        self.job_ids.append(doc["id"])
        final = patient.wait(doc["id"], timeout_s=_WAIT_S, poll_s=0.02)
        _expect(final["state"] == "done",
                f"job after disk fault ended {final['state']!r}")
        self.results[5] = final.get("result")
        _expect(len(sleeps) >= 1,
                "client never backed off, yet the first attempt was "
                "shed with 429")
        stats = self.stats()
        _expect(stats["shed"] >= 1,
                "/stats does not count the disk-budget shed")
        return (f"write shed with 429/Retry-After, client retried "
                f"after {sleeps[0]:.3f}s and succeeded")

    def breaker_cycle(self) -> str:
        """A deterministically failing solver trips the stage breaker;
        open-state jobs run black-box (and are not cached); a cooldown
        probe closes it again."""
        install_fault_plan(Fault(stage="solve", kind="error"))
        try:
            for seed, name in ((6, "solver-down-1"), (7, "solver-down-2")):
                doc = self.submit_and_wait(seed, name)
                _expect("wasai" in doc["result"].get("degraded", ()),
                        f"seed {seed} did not degrade despite the "
                        "dead solver")
            health = self.client.health()
            _expect(health["status"] == "degraded"
                    and "solve" in health["breakers"]["open"],
                    f"solve breaker not open after "
                    f"{self.config.breaker_threshold} consecutive "
                    f"failures: {health}")
            forced = self.submit_and_wait(8, "blackbox-era")
            _expect("wasai" in forced["result"].get("degraded", ()),
                    "open breaker did not force black-box mode")
            _expect(self.service.store.get_verdict(
                        forced["scan_key"]) is None,
                    "a breaker-degraded verdict was cached — it could "
                    "be served as the full-pipeline answer later")
        finally:
            clear_fault_plan()
        time.sleep(self.config.breaker_cooldown_s + 0.3)
        probe = self.submit_and_wait(9, "probe")
        _expect(not probe["result"].get("degraded"),
                "the half-open probe did not run the full pipeline")
        self.results[9] = probe["result"]
        health = self.client.health()
        _expect(health["status"] == "ok",
                f"breaker did not close after the probe: {health}")
        stats = self.stats()
        _expect(stats["resilience"]["breaker_trips"] >= 1
                and stats["resilience"]["breaker_recoveries"] >= 1,
                "/stats does not report the breaker trip/recovery")
        # The black-box-era contract now gets its full verdict.
        full = self.submit_and_wait(8, "post-recovery")
        _expect(not full["result"].get("degraded"),
                "post-recovery rescan still degraded")
        self.results[8] = full["result"]
        return ("solve breaker tripped after 2 failures, black-box era "
                "not cached, probe recovered, full verdict backfilled")

    def reverdict(self) -> str:
        """Oracle replay over stored trace-IR packs: with one stored
        trace corrupted and the oracle version bumped, a fleet-wide
        re-verdict must reproduce every intact verdict byte-for-byte
        except provenance, quarantine the corrupt trace (typed, never
        crashed on) and leave its module re-scannable."""
        from ..scanner.oracles import ORACLE_VERSION
        from ..traceir.codec import TRACEIR_VERSION
        good = self.submit_and_wait(10, "reverdict-good")
        bad = self.submit_and_wait(11, "reverdict-bad")
        good_key, bad_key = good["scan_key"], bad["scan_key"]
        store = self.service.store
        _expect(store.get_trace(good_key) is not None,
                "completed scan stored no trace-IR pack despite "
                "capture_traces")
        row = store.get_trace(bad_key)
        _expect(row is not None, "no trace stored for the corruption "
                                 "victim")
        # Flip one byte mid-blob and re-store it: the store's row
        # checksum re-computes (so the *storage* layer sees a valid
        # row), but the IR payload no longer decodes — exactly the
        # at-rest rot the codec must lift to a typed TraceCorruption.
        blob = bytearray(row["blob"])
        blob[len(blob) // 2] ^= 0xFF
        store.put_trace(bad_key, row["module_hash"], row["tool"],
                        bytes(blob))
        bumped = ORACLE_VERSION + 1
        doc = self.client.reverdict(oracle_version=bumped, wait=True)
        self.job_ids.append(doc["id"])
        _expect(doc.get("state") == "done",
                f"reverdict job ended {doc.get('state')!r}: "
                f"{doc.get('error')!r}")
        rep = doc.get("result") or {}
        _expect(rep.get("replayed", 0) >= 3,
                f"sweep replayed only {rep.get('replayed')} traces — "
                "the fleet's stored packs were not covered")
        _expect(rep.get("corrupt") == 1,
                f"sweep quarantined {rep.get('corrupt')} traces, "
                "expected exactly the one corrupted")
        _expect(rep.get("drift") == 0,
                f"replay verdicts drifted from the fresh ones: "
                f"{rep.get('incidents')}")
        replayed = store.get_verdict(good_key)
        _expect(replayed is not None,
                "intact trace's verdict vanished during the sweep")
        prov = dict(replayed).pop("provenance", None)
        _expect(prov == {"oracle_version": bumped,
                         "traceir_version": TRACEIR_VERSION,
                         "source": "replay"},
                f"rewritten verdict carries provenance {prov!r}")
        _expect(_sans_provenance(replayed)
                == _sans_provenance(good["result"]),
                "replay verdict differs from the fresh one beyond "
                "provenance — the oracles did not reproduce")
        _expect(store.get_trace(bad_key) is None,
                "corrupt trace blob survived the sweep")
        _expect(store.get_quarantine(bad_key) is not None,
                "corrupt trace was not recorded in the quarantine "
                "table")
        _expect(store.get_verdict(bad_key) is None,
                "a verdict whose trace is corrupt is still cached")
        # Re-scannable: the module misses the dedup cache and fuzzes
        # fresh — and determinism returns the same verdict it had.
        fresh = self.submit_and_wait(11, "reverdict-rescan")
        _expect(fresh["outcome"] == "queued",
                f"quarantined module's resubmit was "
                f"{fresh['outcome']!r}, not re-scanned")
        # Compare the scan verdicts, not the whole result doc: a real
        # re-run legitimately differs in wall-clock and cache-counter
        # bookkeeping; the deterministic part is the findings.
        _expect(fresh["result"].get("scans")
                == bad["result"].get("scans"),
                "re-scan after trace quarantine changed the verdict")
        traceir = self.stats()["traceir"]
        _expect(traceir["traces_stored"] >= 2
                and traceir["reverdicts"] >= rep["replayed"]
                and traceir["trace_corruptions"] == 1,
                f"/stats traceir counters miss the sweep: {traceir}")
        _expect(any(i.get("kind") == "trace_corruption"
                    for i in traceir["drift_incidents"]),
                "/stats carries no trace_corruption incident")
        return (f"{rep['replayed']} traces replayed with zero "
                f"re-fuzzing, verdicts identical modulo provenance, "
                f"1 corrupt trace quarantined + re-scanned")

    def final_invariants(self) -> str:
        """Converged: nothing lost, health green, books balanced."""
        lost = []
        for job_id in self.job_ids:
            doc = self.client.status(job_id)
            if doc.get("state") not in ("done",):
                lost.append((job_id, doc.get("state")))
        _expect(not lost, f"jobs not completed after the drill: {lost}")
        health = self.client.health()
        _expect(health["status"] == "ok", f"not healthy: {health}")
        _expect(health["workers"]["alive"] >= self.config.workers,
                f"worker pool not restored: {health['workers']}")
        redo = self.submit_and_wait(0, "final-redo")
        _expect(redo["outcome"] == "cached"
                and _sans_provenance(redo["result"])
                == _sans_provenance(self.results[0]),
                "post-drill verdict for the baseline contract changed")
        stats = self.stats()
        _expect(stats["accepting"] is True,
                "daemon stopped accepting during the drill")
        return (f"{len(self.job_ids)} jobs all terminal-done, "
                "health ok, baseline verdict unchanged")


class _OverloadDrill(_Drill):
    """A deliberately small daemon burst at 5x its capacity.

    Two workers behind an 8-deep queue meet a rapid burst of five
    times their admission capacity, with mixed caller deadlines,
    clients and priorities.  The phases assert the overload contract
    end to end: deadlines are honored at every hand-off (never a full
    campaign for a caller whose clock ran out), every refusal is a
    typed 429 with a measured Retry-After, the brownout ladder climbs
    under the burst and walks back down to ``normal`` once it drains,
    and the shed books in ``/stats`` match what clients actually saw.

    The AIMD target SLO starts at its generous default so the
    baseline phase runs at pressure ``normal``; the burst phase then
    tightens it to half the measured baseline job latency, which
    guarantees a breach under load without hard-coding any
    machine-dependent timing.
    """

    def __init__(self, root: Path, verbose: bool = False):
        super().__init__(root, verbose=verbose, config=ScanServiceConfig(
            workers=2, max_depth=8, max_inflight=12, poll_s=0.02,
            default_timeout_ms=_DRILL_TIMEOUT_MS,
            task_deadline_s=6.0, watchdog_poll_s=0.05,
            max_restarts=64, restart_window_s=300.0,
            restart_backoff_s=0.01,
            breaker_threshold=8, breaker_cooldown_s=0.75,
            capture_traces=True,
            housekeeping_s=0.02, overload_window_s=1.5,
            adjust_interval_s=0.05))
        self.baseline_exec_s = 0.1
        self.observed_sheds: dict[str, int] = {}
        self.peak = "normal"

    def _note_pressure(self) -> str:
        level = self.service.overload.pressure
        if pressure_rank(level) > pressure_rank(self.peak):
            self.peak = level
        return level

    # -- phases ------------------------------------------------------------
    def overload_baseline(self) -> str:
        """Unloaded daemon: pressure normal, full verdicts untagged."""
        first = self.submit_and_wait(0, "baseline")
        _expect(first.get("result") is not None,
                "baseline job completed without a result doc")
        self.results[0] = first["result"]
        prov = first["result"].get("provenance") or {}
        _expect("pressure" not in prov,
                "a normal-pressure verdict carries a brownout tag: "
                f"{prov}")
        # The controller's only latency sample so far *is* one job's
        # execution time; the burst phase sizes its SLO from it.
        self.baseline_exec_s = max(
            self.service.overload.observed_p95_s(), 0.02)
        stats = self.stats()
        _expect(stats["pressure"] == "normal",
                f"idle daemon reports pressure {stats['pressure']!r}")
        health = self.client.health()
        _expect(health["status"] == "ok"
                and health["pressure"] == "normal",
                f"unloaded daemon not nominal: {health}")
        return (f"full verdict in {self.baseline_exec_s:.2f}s at "
                "pressure normal, result untagged")

    def deadline_cutoff(self) -> str:
        """Caller deadlines cut work at admission and mid-campaign —
        an expired clock never buys a fresh campaign budget."""
        data, abi = self.contract(20)
        dead = self.client.submit(data, abi, client="deadline-dead",
                                  deadline_epoch_s=time.time() - 5.0)
        _expect(dead["state"] == "deadline_exceeded"
                and dead["outcome"] == "deadline_exceeded",
                f"already-expired submission was admitted: "
                f"state={dead['state']!r} outcome={dead['outcome']!r}")
        _expect(dead.get("result") is None,
                "an expired-at-admission job still produced a verdict")
        # A live but unmeetable deadline: admitted, then cut while
        # queued or between fuzz rounds — never run to completion.
        data2, abi2 = self.contract(21)
        started = time.monotonic()
        queued = self.client.submit(data2, abi2,
                                    client="deadline-tight",
                                    deadline_s=0.02)
        final = queued if queued["state"] == "deadline_exceeded" else \
            self.client.wait(queued["id"], timeout_s=_WAIT_S,
                             poll_s=0.02)
        took = time.monotonic() - started
        _expect(final["state"] == "deadline_exceeded",
                f"20 ms-deadline job ended {final['state']!r} "
                f"(error={final.get('error')!r})")
        _expect(final.get("result") is None,
                "a deadline-cut job still produced a full verdict")
        _expect(final.get("error"),
                "deadline_exceeded job carries no typed error message")
        stats = self.stats()
        _expect(stats["deadline_exceeded"] >= 2,
                f"/stats counts {stats['deadline_exceeded']} "
                "deadline_exceeded jobs, expected both")
        _expect(stats["shed_by_kind"].get("deadline", 0) >= 2,
                f"per-kind shed books miss the deadline cuts: "
                f"{stats['shed_by_kind']}")
        return ("expired submit refused at admission, 20 ms deadline "
                f"cut after {took:.2f}s, neither got a campaign")

    def overload_burst(self) -> str:
        """5x capacity, mixed deadlines/clients/priorities: typed
        sheds with measured Retry-After, ladder engages, deadline
        victims never run full campaigns."""
        overload = self.service.overload
        # Half the measured baseline latency: a guaranteed SLO breach
        # under load, with no machine-dependent constant.
        overload.target_p95_s = max(self.baseline_exec_s * 0.5, 0.02)
        capacity = overload.base_inflight + overload.base_depth
        total = 5 * capacity
        # ~2 job-times of caller patience: generous for an unloaded
        # daemon, hopeless behind a 5x backlog (whose queue wait is
        # several job-times) — so deadline cuts are load-dependent,
        # not machine-dependent.
        patience_s = min(max(2.0 * self.baseline_exec_s, 0.02), 0.5)
        # Pre-generate contracts so the submit loop outruns the drain.
        batch = [(seed, *self.contract(seed))
                 for seed in range(100, 100 + total)]
        fast = ServiceClient(self.client.base_url, timeout_s=30.0,
                             max_retries=0)
        admitted: list[tuple[str, bool]] = []
        cut_at_admission = 0
        for index, (seed, data, abi) in enumerate(batch):
            had_deadline = index % 3 == 0
            kwargs = {"client": f"tenant-{index % 4}",
                      "priority": -1 if index % 5 == 0 else 0}
            if had_deadline:
                kwargs["deadline_s"] = patience_s
            try:
                doc = fast.submit(data, abi, **kwargs)
            except ServiceError as exc:
                _expect(exc.status == 429,
                        f"burst submit died with HTTP {exc.status}: "
                        f"{exc.doc}")
                kind = exc.doc.get("kind")
                _expect(kind in SHED_KINDS,
                        f"shed carries unknown kind {kind!r}")
                _expect(float(exc.doc.get("retry_after_s") or 0) > 0,
                        f"{kind!r} shed carries no measured "
                        f"Retry-After: {exc.doc}")
                self.observed_sheds[kind] = \
                    self.observed_sheds.get(kind, 0) + 1
            else:
                if doc["state"] == "deadline_exceeded":
                    cut_at_admission += 1
                    _expect(doc.get("result") is None,
                            "an admission-expired burst job produced "
                            "a verdict")
                else:
                    admitted.append((doc["id"], had_deadline))
            self._note_pressure()
        _expect(sum(self.observed_sheds.values()) >= 1,
                f"a 5x burst of {total} was fully admitted past "
                f"capacity {capacity} — nothing was shed")
        done = cut = 0
        for job_id, had_deadline in admitted:
            final = self.client.wait(job_id, timeout_s=_WAIT_S,
                                     poll_s=0.02)
            self._note_pressure()
            if final["state"] == "deadline_exceeded":
                _expect(had_deadline,
                        f"job {job_id} had no caller deadline yet "
                        "ended deadline_exceeded")
                _expect(final.get("result") is None,
                        f"deadline-exceeded job {job_id} ran a full "
                        "campaign and produced a verdict")
                cut += 1
            else:
                _expect(final["state"] == "done",
                        f"burst job {job_id} ended "
                        f"{final['state']!r}: {final.get('error')!r}")
                done += 1
        _expect(cut + cut_at_admission >= 1,
                f"no {patience_s * 1000:.0f} ms-deadline job was cut "
                "under a 5x burst")
        _expect(pressure_rank(self.peak) >= pressure_rank("elevated"),
                f"the burst never moved pressure past {self.peak!r}")
        snap = self.service.overload.snapshot()
        _expect(snap["adjustments"] >= 1,
                f"the AIMD controller never adjusted its limit: "
                f"{snap}")
        shed_total = sum(self.observed_sheds.values())
        return (f"{total} submits: {done} done, "
                f"{cut + cut_at_admission} deadline-cut, {shed_total} "
                f"shed {self.observed_sheds}, peak pressure "
                f"{self.peak}")

    def brownout_recovery(self) -> str:
        """The burst drains: ladder back to normal, AIMD limit back
        to its ceiling, shed books truthful, verdicts untagged."""
        horizon = time.monotonic() + 60.0
        stats = self.stats()
        while time.monotonic() < horizon:
            stats = self.stats()
            overload = stats["overload"]
            if (stats["pressure"] == "normal"
                    and overload["effective_inflight"]
                    == overload["base_inflight"]):
                break
            time.sleep(0.05)
        _expect(stats["pressure"] == "normal",
                f"pressure stuck at {stats['pressure']!r} after the "
                f"burst drained: {stats['overload']}")
        _expect(stats["overload"]["effective_inflight"]
                == stats["overload"]["base_inflight"],
                "the AIMD inflight limit never recovered to its "
                f"ceiling: {stats['overload']}")
        by_kind = dict(stats["shed_by_kind"])
        admission_kinds = ("queue", "inflight", "brownout", "disk")
        _expect(stats["shed"] == sum(by_kind.get(k, 0)
                                     for k in admission_kinds),
                f"shed aggregate disagrees with its per-kind split: "
                f"shed={stats['shed']} by_kind={by_kind}")
        for kind, seen in self.observed_sheds.items():
            _expect(by_kind.get(kind, 0) >= seen,
                    f"clients saw {seen} {kind!r} shed(s) but /stats "
                    f"counts {by_kind.get(kind, 0)}")
        _expect(by_kind.get("deadline", 0)
                == stats["deadline_exceeded"],
                f"deadline books disagree: shed_by_kind counts "
                f"{by_kind.get('deadline', 0)}, terminal jobs "
                f"{stats['deadline_exceeded']}")
        # Back at normal: full-size campaigns, no brownout provenance,
        # and the pre-burst verdict still served byte-identical.
        self.service.overload.target_p95_s = 30.0
        fresh = self.submit_and_wait(30, "recovered")
        prov = fresh["result"].get("provenance") or {}
        _expect("pressure" not in prov,
                f"a normal-pressure verdict is still brownout-tagged: "
                f"{prov}")
        redo = self.submit_and_wait(0, "recovered-redo")
        _expect(redo["outcome"] == "cached"
                and redo["result"] == self.results[0],
                "the pre-burst baseline verdict changed across the "
                "overload episode")
        health = self.client.health()
        _expect(health["status"] == "ok"
                and health["pressure"] == "normal",
                f"daemon not nominal after recovery: {health}")
        return (f"pressure {self.peak} -> normal, inflight limit "
                f"restored to {stats['overload']['base_inflight']}, "
                f"books balanced ({stats['shed']} shed, "
                f"{stats['deadline_exceeded']} deadline-cut)")


class _FleetDrill:
    """Three in-process nodes under one coordinator, plus helpers.

    In-proc backends keep the drill deterministic and CI-cheap while
    exercising the identical coordinator code paths a process-pool or
    remote fleet runs; the HTTP wire variants are covered by the
    backend/HTTP test suites.
    """

    NODES = ("n0", "n1", "n2")

    def __init__(self, root: Path, verbose: bool = False):
        self.root = root
        self.verbose = verbose
        self.config = ScanServiceConfig(
            workers=1, max_depth=64, poll_s=0.02,
            default_timeout_ms=_DRILL_TIMEOUT_MS,
            task_deadline_s=10.0, watchdog_poll_s=0.05,
            max_restarts=64, restart_window_s=300.0,
            restart_backoff_s=0.01,
            breaker_threshold=8, breaker_cooldown_s=0.75)
        backends = []
        for name in self.NODES:
            service = ScanService(
                store=str(root / f"{name}.db"), config=self.config,
                journal=CampaignJournal(root / f"{name}.jsonl"))
            backends.append(InProcessBackend(name, service))
        self.tenants = TenantBook(require_key=False)
        self.tenants.register("drill", "drill-key",
                              rate_per_s=10_000.0, burst=10_000)
        self.tenants.register("capped", "capped-key",
                              max_submissions=2)
        self.fleet = ScanFleet(
            backends,
            config=FleetConfig(steal_threshold=2, steal_batch=4),
            tenants=self.tenants)
        self.fleet.start()
        self.fleet_ids: list[str] = []
        self.results: dict[int, dict] = {}   # seed -> result doc

    def close(self) -> None:
        clear_fault_plan()
        self.fleet.stop()

    # -- helpers -----------------------------------------------------------
    def contract(self, seed: int) -> tuple[bytes, str]:
        generated = generate_contract(
            ContractConfig(seed=seed, fake_eos_guard=False,
                           maze_depth=2 + seed % 4))
        return encode_module(generated.module), generated.abi.to_json()

    def owner(self, seed: int) -> str:
        data, _abi = self.contract(seed)
        return self.fleet.owner_of(data)[1]

    def seeds_for(self, node: str, count: int,
                  start: int) -> list[int]:
        """The first ``count`` seeds from ``start`` whose contracts
        the ring assigns to ``node`` — the shard math made testable."""
        seeds: list[int] = []
        seed = start
        while len(seeds) < count:
            if self.owner(seed) == node:
                seeds.append(seed)
            seed += 1
            _expect(seed - start < 500,
                    f"ring never routed {count} of 500 contracts to "
                    f"{node}: pathologically skewed placement")
        return seeds

    def submit_seed(self, seed: int, client_name: str,
                    api_key: "str | None" = "drill-key") -> dict:
        data, abi = self.contract(seed)
        doc = self.fleet.submit(data, abi, client=client_name,
                                api_key=api_key)
        self.fleet_ids.append(doc["fleet_id"])
        return doc

    def wait_fleet(self, fleet_id: str) -> dict:
        doc = self.fleet.wait(fleet_id, timeout_s=_WAIT_S,
                              poll_s=0.02)
        _expect(doc.get("state") == "done",
                f"fleet job {fleet_id} ended {doc.get('state')!r}; "
                f"error={doc.get('error')!r}")
        return doc

    def stats(self) -> dict:
        return self.fleet.stats()

    # -- phases ------------------------------------------------------------
    def fleet_baseline(self) -> str:
        """Routing is the ring's choice, dedup stays node-local, and
        tenant quotas shed at admission with the typed 429 schema."""
        for node in self.NODES:
            seed = self.seeds_for(node, 1, start=10)[0]
            doc = self.submit_seed(seed, f"baseline-{node}")
            _expect(doc["node"] == node,
                    f"seed {seed} routed to {doc['node']}, but the "
                    f"ring owns it to {node}")
            final = self.wait_fleet(doc["fleet_id"])
            _expect(final.get("result") is not None,
                    f"seed {seed} completed without a result doc")
            self.results[seed] = final["result"]
            if node == self.NODES[0]:
                self.baseline_seed = seed
        redo = self.submit_seed(self.baseline_seed, "baseline-redo")
        _expect(redo["outcome"] == "cached"
                and redo["node"] == self.NODES[0],
                f"identical resubmit was {redo['outcome']!r} on "
                f"{redo['node']} — dedup did not stay on the shard "
                "owner")
        # Tenant quota: two admissions fit, the third sheds as a
        # typed "quota" 429 with an honest Retry-After hint.
        for _ in range(2):
            self.submit_seed(self.baseline_seed, "capped",
                             api_key="capped-key")
        try:
            self.submit_seed(self.baseline_seed, "capped",
                             api_key="capped-key")
            raise ChaosViolation("third capped submission admitted "
                                 "past a 2-submission quota")
        except QuotaExceeded as exc:
            _expect(exc.kind == "quota" and exc.retry_after_s > 0,
                    f"quota shed mistyped: kind={exc.kind!r} "
                    f"retry_after_s={exc.retry_after_s!r}")
        try:
            self.submit_seed(self.baseline_seed, "nobody",
                             api_key="no-such-key")
            raise ChaosViolation("an unknown API key was admitted")
        except UnknownApiKey:
            pass
        return "ring routing, shard-local dedup and quotas all nominal"

    def fleet_work_stealing(self) -> str:
        """A deep queue on one node drains through a peer: only
        unclaimed entries move, and each moved job resolves exactly
        once."""
        victim = self.NODES[0]
        seeds = self.seeds_for(victim, 8, start=100)
        docs = [self.submit_seed(seed, "steal-load")
                for seed in seeds]
        before = {doc["fleet_id"]: (doc["node"], doc["id"])
                  for doc in docs}
        moved = self.fleet.rebalance_once()
        _expect(moved >= 1,
                f"rebalance moved {moved} jobs off a depth-"
                f"{len(seeds)} queue")
        victim_stats = self.fleet.backends[victim].stats()
        _expect(victim_stats["fleet"]["stolen_away"] >= moved,
                "victim's /stats does not account the donated jobs")
        stolen_checked = 0
        for doc in docs:
            final = self.wait_fleet(doc["fleet_id"])
            record = self.fleet._jobs[doc["fleet_id"]]
            if record.stolen:
                stolen_checked += 1
                _expect(final["node"] != victim,
                        f"stolen job {doc['fleet_id']} reports "
                        "completion on its victim")
                old_node, old_id = before[doc["fleet_id"]]
                left_behind = self.fleet.backends[old_node] \
                    .job(old_id)
                _expect(left_behind is not None
                        and left_behind.get("state") == "stolen",
                        f"victim's copy of {old_id} is "
                        f"{left_behind and left_behind.get('state')!r}"
                        ", not a revoked 'stolen' tombstone")
        _expect(stolen_checked >= 1,
                "no fleet record was remapped by the steal")
        return (f"{moved} unclaimed jobs moved to a peer, all "
                f"{len(seeds)} resolved exactly once")

    def network_partition(self) -> str:
        """A minority node refuses writes and serves stale-marked
        reads; healing replays the journal until it converges."""
        minority = self.NODES[2]
        seed = self.seeds_for(minority, 1, start=200)[0]
        self.fleet.partition([minority])
        data, abi = self.contract(seed)
        try:
            self.fleet.backends[minority].submit(data, abi)
            raise ChaosViolation(
                "partitioned minority accepted a write")
        except NodePartitioned as exc:
            _expect(exc.retry_after_s > 0,
                    "partitioned refusal carries no retry hint")
        health = self.fleet.backends[minority].health()
        _expect(health["status"] == "partitioned"
                and health.get("stale") is True,
                f"partitioned node reads are not stale-marked: "
                f"{health}")
        doc = self.submit_seed(seed, "partition-era")
        _expect(doc["node"] != minority,
                f"seed {seed} routed to the partitioned minority")
        final = self.wait_fleet(doc["fleet_id"])
        self.results[seed] = final["result"]
        applied = self.fleet.heal()
        _expect(applied >= 1,
                f"healing applied {applied} journal verdicts — the "
                "rejoined replica never caught up")
        healed = self.fleet.backends[minority].health()
        _expect(healed.get("stale") is False
                and healed["status"] != "partitioned",
                f"healed node still stale: {healed}")
        # The verdict computed elsewhere during the partition must now
        # be served from the healed node's replica, not recomputed.
        replayed = self.fleet.backends[minority].submit(data, abi)
        _expect(replayed.get("outcome") == "cached"
                and replayed.get("result") == final["result"],
                "healed replica did not serve the partition-era "
                "verdict from journal replay")
        return (f"minority refused writes, served stale reads, and "
                f"caught up {applied} verdict(s) by journal replay")

    def node_kill(self) -> str:
        """A node dies mid-scan; every orphaned job fails over to a
        surviving shard owner exactly once, with verdicts unchanged."""
        victim = self.NODES[1]
        seeds = self.seeds_for(victim, 4, start=300)
        docs = [self.submit_seed(seed, "kill-load")
                for seed in seeds]
        self.fleet.backends[victim].kill()
        failed = self.fleet.check_nodes()
        _expect(failed == [victim],
                f"check_nodes failed {failed}, expected [{victim}]")
        for seed, doc in zip(seeds, docs):
            final = self.wait_fleet(doc["fleet_id"])
            record = self.fleet._jobs[doc["fleet_id"]]
            _expect(record.failovers <= 1,
                    f"job {doc['fleet_id']} failed over "
                    f"{record.failovers} times, not exactly once")
            _expect(final["node"] != victim,
                    f"job {doc['fleet_id']} claims completion on the "
                    "dead node")
            key = record.recipe["module_hash"]
            _expect(final["node"] == self.fleet.ring.owner(key),
                    f"job {doc['fleet_id']} recovered on "
                    f"{final['node']}, not the surviving shard owner "
                    f"{self.fleet.ring.owner(key)}")
            self.results[seed] = final["result"]
        # Deterministic campaigns: the failed-over verdict must be the
        # one an undisturbed fleet would have produced — resubmitting
        # now dedups against it instead of computing anything new.
        redo = self.submit_seed(seeds[0], "post-kill-redo")
        _expect(redo["outcome"] == "cached"
                and redo.get("result") == self.results[seeds[0]],
                "post-failover resubmit recomputed or changed the "
                "verdict")
        stats = self.fleet.stats()
        _expect(stats["failovers"] >= 1,
                "fleet /stats does not account the failovers")
        return (f"node killed mid-scan, {stats['failovers']} "
                f"job(s) failed over once each, verdicts stable")

    def fleet_final(self) -> str:
        """Converged: nothing lost, nothing duplicated, books honest."""
        lost = []
        for fleet_id in self.fleet_ids:
            doc = self.fleet.job(fleet_id)
            if doc is None or doc.get("state") != "done":
                lost.append((fleet_id,
                             doc and doc.get("state")))
        _expect(not lost,
                f"fleet jobs not completed after the drill: {lost}")
        redo = self.submit_seed(self.baseline_seed, "final-redo")
        _expect(redo["outcome"] == "cached"
                and redo.get("result") == self.results[
                    self.baseline_seed],
                "post-drill verdict for the baseline contract changed")
        health = self.fleet.health()
        _expect(health["down"] == [self.NODES[1]]
                and health["status"] == "degraded",
                f"fleet health misreports the killed node: {health}")
        for name in self.fleet.live_nodes():
            node_health = health["nodes"][name]
            _expect(node_health["status"] in ("ok", "idle"),
                    f"survivor {name} unhealthy after the drill: "
                    f"{node_health}")
            _expect(node_health.get("accepting") is True,
                    f"survivor {name} stopped accepting")
        stats = self.stats()
        _expect(stats["submissions"] == len(self.fleet_ids),
                f"{len(self.fleet_ids)} submissions tracked but "
                f"/stats counts {stats['submissions']}")
        _expect(stats["jobs_stolen"] >= 1 and stats["failovers"] >= 1
                and stats["replicated"] >= 1,
                f"fleet counters missing drill events: {stats}")
        return (f"{len(self.fleet_ids)} fleet jobs all terminal-done, "
                "verdicts stable, survivors healthy, books balanced")


def run_chaos_drill(schedule: str = "ci", *, verbose: bool = False,
                    keep_dir: "str | None" = None) -> ChaosReport:
    """Run one chaos schedule against a freshly booted daemon.

    ``keep_dir``, when given, is used as the drill's working directory
    and left on disk for post-mortem (default: a temp dir, removed)."""
    if schedule not in CHAOS_SCHEDULES:
        raise ValueError(
            f"unknown chaos schedule {schedule!r}; "
            f"choose from {sorted(CHAOS_SCHEDULES)}")
    root = Path(keep_dir) if keep_dir else \
        Path(tempfile.mkdtemp(prefix="wasai-chaos-"))
    root.mkdir(parents=True, exist_ok=True)
    report = ChaosReport(schedule=schedule)
    drill_cls = (_OverloadDrill if schedule == "overload"
                 else _FleetDrill if schedule == "fleet" else _Drill)
    drill = drill_cls(root, verbose=verbose)
    try:
        for name in CHAOS_SCHEDULES[schedule]:
            phase = getattr(drill, name)
            started = time.monotonic()
            try:
                detail = phase()
                ok = True
            except ChaosViolation as exc:
                detail, ok = str(exc), False
            except Exception as exc:  # noqa: BLE001 - report, don't crash
                detail, ok = f"{type(exc).__name__}: {exc}", False
            finally:
                clear_fault_plan()
            entry = {"name": name, "ok": ok, "detail": detail,
                     "seconds": time.monotonic() - started}
            report.phases.append(entry)
            if verbose:
                mark = "ok" if ok else "FAIL"
                print(f"[chaos] {mark:<4} {name}: {detail}")
            if not ok:
                break
        try:
            report.stats = drill.stats()
        except Exception:  # noqa: BLE001 - daemon may be wedged
            report.stats = {}
    finally:
        drill.close()
        if not keep_dir:
            shutil.rmtree(root, ignore_errors=True)
    return report

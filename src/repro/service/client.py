"""A stdlib HTTP client for the scan daemon (used by ``wasai submit``).

Thin by design: urllib only, JSON in/out, typed errors.  The client
mirrors the daemon's semantics — a 200 on submit is a dedup hit whose
verdict is already in the response, a 202 is an admitted job to poll,
a 429 is an explicit backpressure shed the caller should back off
from, and a 400 ``malformed_module`` means the upload was rejected at
admission and will never produce a verdict.

Transient failures are the client's problem to absorb, not the
caller's: a 429 shed, a connection refused (daemon restarting under
its supervisor) or a reset mid-request (worker storm, drain race) is
retried with capped exponential backoff before anything surfaces.
The delay honors the daemon's ``Retry-After`` header when one is
present; otherwise it is ``backoff_base_s * 2^attempt`` capped at
``backoff_cap_s``, plus a *deterministic* jitter derived from the
request path and attempt number (crc32, not ``random``) so retry
storms from many clients de-synchronize while any single run stays
reproducible.  A raw :class:`urllib.error.URLError` never escapes:
exhausted retries surface as a typed :class:`ServiceError` with
status 503.

Fleet awareness rides on the same retry loop.  The client accepts a
*list* of base URLs and rotates to the next endpoint whenever the
current one refuses connections or answers 5xx (single-endpoint
behavior is unchanged: a 5xx surfaces immediately).  A 307/308 with a
``Location`` header — the fleet's "wrong shard, ask that node"
redirect — is followed in place, bounded by ``max_redirects`` so two
confused nodes cannot bounce a request forever.  An optional
``api_key`` is attached to every request as ``X-Api-Key`` for
tenant-quota admission.

Backpressure is honored per shed *kind*: every 429 the daemon emits
carries a measured ``Retry-After`` (how long the backlog actually
takes to drain) which the client sleeps on, except a ``draining``
shed against a multi-endpoint fleet, where the right move is to
rotate to a sibling node immediately instead of waiting out a daemon
that is shutting down.  Caller deadlines propagate as the
``X-Deadline-Ms`` header (absolute epoch milliseconds) via
``submit(deadline_s=...)`` — the daemon then refuses to spend fresh
campaign budget past that instant.
"""

from __future__ import annotations

import json
import base64
import http.client
import time
import urllib.error
import urllib.request
import zlib

__all__ = ["ServiceClient", "ServiceError"]

# Connection-level failures worth retrying: the daemon is restarting,
# draining, or the socket died mid-flight.  Anything else (DNS, bad
# URL) fails fast.
_TRANSIENT_EXCS = (ConnectionError, ConnectionResetError,
                   ConnectionRefusedError, http.client.RemoteDisconnected,
                   http.client.BadStatusLine)


class ServiceError(Exception):
    """A non-2xx daemon response, carrying the decoded error doc."""

    def __init__(self, status: int, doc: dict):
        detail = doc.get("detail") or doc.get("error") or "error"
        super().__init__(f"HTTP {status}: {detail}")
        self.status = status
        self.doc = doc

    @property
    def error(self) -> str:
        return str(self.doc.get("error", ""))


class ServiceClient:
    """Talk to one ``wasai serve`` daemon — or a fleet of them."""

    def __init__(self,
                 base_url: "str | list[str] | tuple[str, ...]"
                 = "http://127.0.0.1:8734",
                 timeout_s: float = 30.0, *,
                 max_retries: int = 3,
                 backoff_base_s: float = 0.1,
                 backoff_cap_s: float = 5.0,
                 max_redirects: int = 3,
                 api_key: "str | None" = None,
                 sleep=time.sleep):
        if isinstance(base_url, str):
            base_url = [base_url]
        self.endpoints = [url.rstrip("/") for url in base_url]
        if not self.endpoints:
            raise ValueError("at least one endpoint is required")
        self._endpoint_index = 0
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.max_redirects = max_redirects
        self.api_key = api_key
        self._sleep = sleep

    @property
    def base_url(self) -> str:
        """The endpoint currently in rotation (back-compat alias)."""
        return self.endpoints[self._endpoint_index]

    @base_url.setter
    def base_url(self, value: str) -> None:
        self.endpoints = [value.rstrip("/")]
        self._endpoint_index = 0

    def _rotate(self) -> None:
        if len(self.endpoints) > 1:
            self._endpoint_index = \
                (self._endpoint_index + 1) % len(self.endpoints)

    # -- plumbing ----------------------------------------------------------
    def _retry_delay(self, path: str, attempt: int,
                     retry_after: "str | None" = None) -> float:
        if retry_after is not None:
            try:
                return min(max(0.0, float(retry_after)),
                           self.backoff_cap_s)
            except ValueError:
                pass
        delay = min(self.backoff_base_s * (2 ** attempt),
                    self.backoff_cap_s)
        # Deterministic jitter in [0, delay/2): same request + attempt
        # always waits the same, different clients/paths spread out.
        seed = zlib.crc32(f"{path}:{attempt}".encode("utf-8"))
        return delay + (seed % 1000) / 1000.0 * delay / 2

    def _request_once(self, method: str, path: str,
                      doc: dict | None = None, *,
                      url: "str | None" = None,
                      extra_headers: dict | None = None
                      ) -> tuple[int, dict, dict]:
        """One attempt: (status, payload, headers)."""
        body = None
        headers = {"Accept": "application/json"}
        if doc is not None:
            body = json.dumps(doc).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if self.api_key is not None:
            headers["X-Api-Key"] = self.api_key
        if extra_headers:
            headers.update(extra_headers)
        request = urllib.request.Request(url or (self.base_url + path),
                                         data=body, headers=headers,
                                         method=method)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout_s) as resp:
                return (resp.status, json.loads(resp.read() or b"{}"),
                        dict(resp.headers))
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read() or b"{}")
            except ValueError:
                payload = {"error": "bad_response"}
            return exc.code, payload, dict(exc.headers or {})

    def _request(self, method: str, path: str,
                 doc: dict | None = None,
                 extra_headers: dict | None = None) -> tuple[int, dict]:
        last_connect_error: Exception | None = None
        url: "str | None" = None        # set while following a redirect
        redirects = 0
        attempt = 0
        while attempt <= self.max_retries:
            try:
                if url is None:
                    status, payload, headers = self._request_once(
                        method, path, doc,
                        extra_headers=extra_headers)
                else:
                    status, payload, headers = self._request_once(
                        method, path, doc, url=url,
                        extra_headers=extra_headers)
            except urllib.error.URLError as exc:
                reason = getattr(exc, "reason", None)
                if not isinstance(reason, _TRANSIENT_EXCS):
                    raise ServiceError(503, {
                        "error": "unavailable",
                        "detail": f"{type(exc).__name__}: {exc}",
                    }) from exc
                last_connect_error = exc
                self._rotate()
                url = None
                if attempt >= self.max_retries:
                    break
                self._sleep(self._retry_delay(path, attempt))
                attempt += 1
                continue
            except _TRANSIENT_EXCS as exc:
                # A reset can also surface bare (mid-body, keep-alive).
                last_connect_error = exc
                self._rotate()
                url = None
                if attempt >= self.max_retries:
                    break
                self._sleep(self._retry_delay(path, attempt))
                attempt += 1
                continue
            if status in (307, 308) and headers.get("Location") \
                    and redirects < self.max_redirects:
                # Shard redirect: the node we asked does not own this
                # module's hash arc; retry against the owner.  Does
                # not consume the retry budget — it is routing, not
                # failure — but is bounded by max_redirects.
                redirects += 1
                location = str(headers["Location"])
                if location.startswith(("http://", "https://")):
                    url = location
                else:
                    path, url = location, None
                continue
            if status == 429 and attempt < self.max_retries:
                if payload.get("kind") == "draining" \
                        and len(self.endpoints) > 1:
                    # A draining node will not recover for this
                    # request's lifetime; a fleet sibling might take
                    # it right now — rotate instead of waiting out
                    # the (long) drain hint.
                    self._rotate()
                    url = None
                    self._sleep(self._retry_delay(path, attempt))
                else:
                    self._sleep(self._retry_delay(
                        path, attempt, headers.get("Retry-After")))
                attempt += 1
                continue
            if status >= 500 and len(self.endpoints) > 1 \
                    and attempt < self.max_retries:
                # A sick-but-talking node: fail over to the next
                # endpoint (with one endpoint, surface it untouched).
                self._rotate()
                url = None
                self._sleep(self._retry_delay(path, attempt))
                attempt += 1
                continue
            return status, payload
        raise ServiceError(503, {
            "error": "unavailable",
            "detail": (f"daemon unreachable after "
                       f"{self.max_retries + 1} attempts: "
                       f"{last_connect_error}"),
        }) from last_connect_error

    def _checked(self, method: str, path: str,
                 doc: dict | None = None,
                 extra_headers: dict | None = None) -> dict:
        status, payload = self._request(method, path, doc,
                                        extra_headers)
        if status >= 400:
            raise ServiceError(status, payload)
        return payload

    # -- API ---------------------------------------------------------------
    def health(self) -> dict:
        return self._checked("GET", "/healthz")

    def stats(self) -> dict:
        return self._checked("GET", "/stats")

    def integrity(self) -> dict:
        """Trigger (and fetch) an on-demand store integrity sweep."""
        return self._checked("GET", "/integrity")

    def submit(self, wasm_bytes: bytes, abi_json: "str | dict",
               config: dict | None = None, client: str = "cli",
               priority: int = 0,
               ttl_s: float | None = None,
               deadline_s: float | None = None,
               deadline_epoch_s: float | None = None) -> dict:
        """Submit one module; returns the job doc (``outcome`` is
        ``cached`` / ``coalesced`` / ``queued`` / ``replayed`` /
        ``deadline_exceeded``).

        ``deadline_s`` is a relative wall-clock budget ("answer within
        N seconds"), resolved against this host's clock;
        ``deadline_epoch_s`` is the absolute instant directly.  Either
        way the deadline rides the ``X-Deadline-Ms`` header and
        propagates through every daemon hand-off.
        """
        doc = {
            "module_b64": base64.b64encode(wasm_bytes).decode("ascii"),
            "abi": abi_json,
            "client": client,
            "priority": priority,
        }
        if config:
            doc["config"] = config
        if ttl_s is not None:
            doc["ttl_s"] = ttl_s
        if deadline_epoch_s is None and deadline_s is not None:
            deadline_epoch_s = time.time() + float(deadline_s)
        extra_headers = None
        if deadline_epoch_s is not None:
            extra_headers = {
                "X-Deadline-Ms": str(int(deadline_epoch_s * 1000.0))}
        return self._checked("POST", "/scans", doc,
                             extra_headers=extra_headers)

    def status(self, job_id: str) -> dict:
        return self._checked("GET", f"/scans/{job_id}")

    def reverdict(self, oracle_version: int | None = None,
                  wait: bool = False,
                  timeout_s: float = 300.0,
                  oracles=None) -> dict:
        """Queue a fleet-wide oracle replay over the stored trace-IR
        packs; returns the job doc.  With ``wait`` the call polls
        until the sweep is terminal, so the returned doc carries the
        sweep report (replayed / drift / corrupt counts).  ``oracles``
        selects the enabled families (names, aliases, or a
        comma-separated string; default: the daemon's configured
        set)."""
        doc: dict = {"client": "cli"}
        if oracle_version is not None:
            doc["oracle_version"] = int(oracle_version)
        if oracles is not None:
            doc["oracles"] = (oracles if isinstance(oracles, str)
                              else list(oracles))
        job_doc = self._checked("POST", "/reverdict", doc)
        if wait and job_doc.get("state") not in (
                "done", "failed", "quarantined", "expired",
                "deadline_exceeded"):
            return self.wait(job_doc["id"], timeout_s)
        return job_doc

    def wait(self, job_id: str, timeout_s: float = 120.0,
             poll_s: float = 0.2) -> dict:
        """Poll until the job is terminal; raises TimeoutError."""
        deadline = time.monotonic() + timeout_s
        while True:
            doc = self.status(job_id)
            if doc.get("state") in ("done", "failed", "quarantined",
                                    "expired", "deadline_exceeded",
                                    "rejected", "stolen"):
                return doc
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {doc.get('state')} after "
                    f"{timeout_s:g}s")
            time.sleep(poll_s)

"""A stdlib HTTP client for the scan daemon (used by ``wasai submit``).

Thin by design: urllib only, JSON in/out, typed errors.  The client
mirrors the daemon's semantics — a 200 on submit is a dedup hit whose
verdict is already in the response, a 202 is an admitted job to poll,
a 429 is an explicit backpressure shed the caller should back off
from, and a 400 ``malformed_module`` means the upload was rejected at
admission and will never produce a verdict.
"""

from __future__ import annotations

import json
import base64
import time
import urllib.error
import urllib.request

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(Exception):
    """A non-2xx daemon response, carrying the decoded error doc."""

    def __init__(self, status: int, doc: dict):
        detail = doc.get("detail") or doc.get("error") or "error"
        super().__init__(f"HTTP {status}: {detail}")
        self.status = status
        self.doc = doc

    @property
    def error(self) -> str:
        return str(self.doc.get("error", ""))


class ServiceClient:
    """Talk to one ``wasai serve`` daemon."""

    def __init__(self, base_url: str = "http://127.0.0.1:8734",
                 timeout_s: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # -- plumbing ----------------------------------------------------------
    def _request(self, method: str, path: str,
                 doc: dict | None = None) -> tuple[int, dict]:
        body = None
        headers = {"Accept": "application/json"}
        if doc is not None:
            body = json.dumps(doc).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(self.base_url + path,
                                         data=body, headers=headers,
                                         method=method)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout_s) as resp:
                return resp.status, json.loads(resp.read() or b"{}")
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read() or b"{}")
            except ValueError:
                payload = {"error": "bad_response"}
            return exc.code, payload

    def _checked(self, method: str, path: str,
                 doc: dict | None = None) -> dict:
        status, payload = self._request(method, path, doc)
        if status >= 400:
            raise ServiceError(status, payload)
        return payload

    # -- API ---------------------------------------------------------------
    def health(self) -> dict:
        return self._checked("GET", "/healthz")

    def stats(self) -> dict:
        return self._checked("GET", "/stats")

    def submit(self, wasm_bytes: bytes, abi_json: "str | dict",
               config: dict | None = None, client: str = "cli",
               priority: int = 0) -> dict:
        """Submit one module; returns the job doc (``outcome`` is
        ``cached`` / ``coalesced`` / ``queued``)."""
        doc = {
            "module_b64": base64.b64encode(wasm_bytes).decode("ascii"),
            "abi": abi_json,
            "client": client,
            "priority": priority,
        }
        if config:
            doc["config"] = config
        return self._checked("POST", "/scans", doc)

    def status(self, job_id: str) -> dict:
        return self._checked("GET", f"/scans/{job_id}")

    def wait(self, job_id: str, timeout_s: float = 120.0,
             poll_s: float = 0.2) -> dict:
        """Poll until the job is terminal; raises TimeoutError."""
        deadline = time.monotonic() + timeout_s
        while True:
            doc = self.status(job_id)
            if doc.get("state") in ("done", "failed", "quarantined",
                                    "rejected"):
                return doc
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {doc.get('state')} after "
                    f"{timeout_s:g}s")
            time.sleep(poll_s)

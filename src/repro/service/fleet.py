"""The fleet coordinator: shard, steal, replicate, survive.

One :class:`ScanFleet` drives N :class:`~repro.service.backend.
CoordinatorBackend` nodes (in-proc, child-process or remote — the
coordinator cannot tell) as a single logical scan service:

**Sharding.**  Every submission is routed by its module's canonical
content hash through a consistent-hash ring
(:class:`~repro.service.backend.HashRing`), so the same module always
lands on the same node — which is what makes node-local dedup and
single-flight coalescing keep working fleet-wide — and a membership
change remaps only the hash arcs that actually moved.

**Exactly-once under failure.**  The coordinator tracks every
submission as a :class:`FleetJob` holding the full resubmission
recipe.  When a node dies (``kill`` in the chaos drill, or a failed
health probe in :meth:`check_nodes`), each of its non-terminal jobs
is failed over to the next live owner on the ring *once*: the record
is remapped before resubmission, the dead node is out of the ring so
nothing routes back, and a zombie worker's late result on the old
node is discarded by its claim token.  Terminal results are cached on
the fleet record, so a job observed ``done`` can never change answer
afterwards — the "no duplicate, no wrong verdict" half of the drill's
contract.

**Work stealing.**  :meth:`rebalance_once` compares queue depths and
moves *unclaimed* queue entries (never in-flight claims) from the
most loaded node to the least, stamping the victim's copy with a
thief claim token so a stolen-then-reappearing job resolves exactly
once.  The fleet record is remapped to the thief, so callers polling
a stolen job never notice.

**Read replicas.**  :meth:`replicate_once` ships each node's JSONL
verdict journal to every peer behind a monotonic per-(source, target)
byte cursor; application is idempotent (existence-checked per scan
key).  A replica that was down or partitioned catches up by replaying
from its cursor — or from zero if the source compacted/truncated
underneath it.

**Partitions.**  :meth:`partition` cuts a strict minority off: those
nodes refuse writes (typed 503, ``stale``-marked reads) and leave the
ring, so the majority keeps serving every shard.  :meth:`heal`
reverses it and immediately replays journals so the rejoined nodes
converge before taking traffic.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from .backend import (BackendUnavailable, CoordinatorBackend, HashRing,
                      module_hash_of)
from .scheduler import NodePartitioned
from .tenants import TenantBook

__all__ = ["FleetConfig", "FleetJob", "ScanFleet"]

_TERMINAL = ("done", "failed", "quarantined", "expired",
             "deadline_exceeded", "rejected")


@dataclass
class FleetConfig:
    """Coordinator knobs."""

    ring_replicas: int = 64      # virtual nodes per member
    steal_threshold: int = 2     # min depth gap before stealing
    steal_batch: int = 4         # max jobs moved per rebalance pass
    health_timeout_s: float = 5.0


@dataclass
class FleetJob:
    """One submission as the coordinator remembers it."""

    fleet_id: str
    node: str                    # current owner's backend name
    node_job_id: str             # its job id *on that node*
    recipe: dict = field(default_factory=dict)
    failovers: int = 0
    stolen: int = 0
    terminal_doc: dict | None = None

    def to_doc(self) -> dict:
        return {"fleet_id": self.fleet_id, "node": self.node,
                "node_job_id": self.node_job_id,
                "failovers": self.failovers, "stolen": self.stolen,
                "terminal": self.terminal_doc is not None}


class ScanFleet:
    """Coordinate a set of scan nodes as one service."""

    def __init__(self, backends: "list[CoordinatorBackend]", *,
                 config: FleetConfig | None = None,
                 tenants: TenantBook | None = None):
        if not backends:
            raise ValueError("a fleet needs at least one node")
        names = [backend.name for backend in backends]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate node names: {names}")
        self.config = config or FleetConfig()
        self.tenants = tenants
        self.backends: dict[str, CoordinatorBackend] = {
            backend.name: backend for backend in backends}
        self.ring = HashRing(names,
                             replicas=self.config.ring_replicas)
        self._lock = threading.RLock()
        self._jobs: dict[str, FleetJob] = {}
        self._by_node: dict[tuple[str, str], str] = {}
        self._cursors: dict[tuple[str, str], int] = {}
        self._down: set[str] = set()
        self._partitioned: set[str] = set()
        self._seq = 0
        self.submissions = 0
        self.failovers = 0
        self.jobs_stolen = 0
        self.replicated = 0

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        for backend in self.backends.values():
            backend.start()

    def stop(self) -> None:
        for backend in self.backends.values():
            try:
                backend.stop()
            except BackendUnavailable:
                pass

    # -- membership --------------------------------------------------------
    def live_nodes(self) -> list[str]:
        with self._lock:
            return sorted(name for name in self.backends
                          if name not in self._down
                          and name not in self._partitioned)

    def owner_of(self, data: bytes) -> tuple[str, str]:
        """(module_content_hash, owning node name) for raw bytes —
        the shard math, exposed for tests, drills and redirects."""
        key = module_hash_of(data)
        return key, self.ring.owner(key)

    # -- submission --------------------------------------------------------
    def submit(self, data: bytes, abi_json: "str | dict",
               config: dict | None = None, client: str = "anon",
               priority: int = 0, ttl_s: float | None = None,
               api_key: str | None = None,
               deadline_epoch_s: float | None = None) -> dict:
        """Admit (tenant quota), route (ring), place (with failover
        to the next live owner if the first choice is unreachable).
        ``deadline_epoch_s`` rides the recipe, so a failover or steal
        re-places the job with its original caller deadline intact."""
        tenant = None
        if self.tenants is not None:
            tenant = self.tenants.admit(api_key)
        key = module_hash_of(data)
        recipe = {"module": data, "abi": abi_json,
                  "config": dict(config or {}), "client": client,
                  "priority": priority, "ttl_s": ttl_s,
                  "deadline_epoch_s": deadline_epoch_s,
                  "module_hash": key}
        last_error: Exception | None = None
        for name in self.ring.owners(key, count=len(self.ring)):
            backend = self.backends[name]
            try:
                doc = backend.submit(
                    data, abi_json, config=config, client=client,
                    priority=priority, ttl_s=ttl_s,
                    deadline_epoch_s=deadline_epoch_s)
            except (BackendUnavailable, NodePartitioned) as exc:
                last_error = exc
                continue
            with self._lock:
                self._seq += 1
                self.submissions += 1
                fleet_id = f"fleet-{self._seq:06d}"
                record = FleetJob(fleet_id, name,
                                  str(doc.get("id")),
                                  recipe=recipe)
                if doc.get("state") in _TERMINAL:
                    record.terminal_doc = self._decorate(doc, record)
                self._jobs[fleet_id] = record
                self._by_node[(name, record.node_job_id)] = fleet_id
            out = dict(doc)
            out["fleet_id"] = fleet_id
            out["node"] = name
            if tenant is not None:
                out["tenant"] = tenant
            return out
        raise BackendUnavailable(
            f"no live node can take shard {key[:12]}: {last_error}")

    # -- observation -------------------------------------------------------
    def _decorate(self, doc: dict, record: FleetJob) -> dict:
        out = dict(doc)
        out["fleet_id"] = record.fleet_id
        out["node"] = record.node
        out["failovers"] = record.failovers
        return out

    def job(self, fleet_id: str) -> dict | None:
        """The current job doc, terminal results cached fleet-side so
        an answer once observed can never change."""
        with self._lock:
            record = self._jobs.get(fleet_id)
        if record is None:
            return None
        if record.terminal_doc is not None:
            return dict(record.terminal_doc)
        for _ in range(len(self.backends) + 1):
            backend = self.backends.get(record.node)
            if backend is None:
                return self._decorate({"state": "lost"}, record)
            try:
                doc = backend.job(record.node_job_id)
            except (BackendUnavailable, NodePartitioned):
                self.fail_node(record.node)
                continue        # fail_node remapped the record
            if doc is None:
                return None
            if doc.get("state") in _TERMINAL:
                with self._lock:
                    record.terminal_doc = self._decorate(doc, record)
                    return dict(record.terminal_doc)
            return self._decorate(doc, record)
        return self._decorate({"state": "lost"}, record)

    def wait(self, fleet_id: str, timeout_s: float = 120.0,
             poll_s: float = 0.05) -> dict:
        deadline = time.monotonic() + timeout_s
        while True:
            doc = self.job(fleet_id)
            if doc is not None and doc.get("state") in _TERMINAL:
                return doc
            if time.monotonic() >= deadline:
                state = doc.get("state") if doc else "unknown"
                raise TimeoutError(
                    f"fleet job {fleet_id} still {state} after "
                    f"{timeout_s:g}s")
            time.sleep(poll_s)

    # -- work stealing -----------------------------------------------------
    def rebalance_once(self) -> int:
        """One load-balancing pass: if the deepest live queue exceeds
        the shallowest by ``steal_threshold``+, move up to
        ``steal_batch`` *unclaimed* entries and remap their fleet
        records to the thief.  Returns jobs moved."""
        live = self.live_nodes()
        if len(live) < 2:
            return 0
        depths: dict[str, int] = {}
        for name in live:
            try:
                depths[name] = self.backends[name].queue_depth()
            except (BackendUnavailable, NodePartitioned):
                continue
        if len(depths) < 2:
            return 0
        victim = max(depths, key=lambda name: depths[name])
        thief = min(depths, key=lambda name: depths[name])
        if depths[victim] - depths[thief] < self.config.steal_threshold:
            return 0
        try:
            recipes = self.backends[victim].steal(
                self.config.steal_batch, thief=f"fleet:{thief}")
        except (BackendUnavailable, NodePartitioned):
            return 0
        moved = 0
        for recipe in recipes:
            moved += self._place_recipe(recipe, victim, thief,
                                        kind="stolen")
        with self._lock:
            self.jobs_stolen += moved
        return moved

    def _place_recipe(self, recipe: dict, old_node: str,
                      new_node: str, kind: str) -> int:
        """Resubmit a recipe on ``new_node`` and remap the fleet
        record that pointed at ``old_node`` (if any — direct node
        submissions have no fleet record and are simply moved)."""
        backend = self.backends[new_node]
        deadline = recipe.get("deadline_epoch_s")
        try:
            doc = backend.submit(
                recipe["module"], recipe["abi"],
                config=recipe.get("config") or None,
                client=recipe.get("client", "anon"),
                priority=int(recipe.get("priority", 0)),
                ttl_s=recipe.get("ttl_s"),
                deadline_epoch_s=(float(deadline)
                                  if deadline is not None else None))
        except (BackendUnavailable, NodePartitioned):
            return 0
        with self._lock:
            fleet_id = self._by_node.pop(
                (old_node, str(recipe.get("job_id"))), None)
            if fleet_id is not None:
                record = self._jobs[fleet_id]
                record.node = new_node
                record.node_job_id = str(doc.get("id"))
                if kind == "stolen":
                    record.stolen += 1
                else:
                    record.failovers += 1
                if doc.get("state") in _TERMINAL:
                    record.terminal_doc = self._decorate(doc, record)
                self._by_node[(new_node, record.node_job_id)] = fleet_id
        return 1

    # -- replication -------------------------------------------------------
    def replicate_once(self) -> int:
        """Ship every live node's journal to every live peer; returns
        verdicts newly applied.  Cursors are per (source, target) and
        monotonic; a cursor past the source's file (compaction,
        truncation) restarts from zero and relies on idempotent
        application."""
        live = self.live_nodes()
        applied = 0
        for source in live:
            for target in live:
                if source == target:
                    continue
                cursor = self._cursors.get((source, target), 0)
                try:
                    entries, new_cursor = \
                        self.backends[source].ship_journal(cursor)
                    if entries:
                        applied += self.backends[target] \
                            .apply_replica_verdicts(entries)
                except (BackendUnavailable, NodePartitioned):
                    continue
                self._cursors[(source, target)] = new_cursor
        with self._lock:
            self.replicated += applied
        return applied

    # -- failure handling --------------------------------------------------
    def check_nodes(self) -> list[str]:
        """Probe every in-ring node; fail (and fail over) the dead
        ones.  Returns the names newly failed."""
        failed: list[str] = []
        for name in self.live_nodes():
            backend = self.backends[name]
            dead = not backend.alive
            if not dead:
                try:
                    backend.health()
                except (BackendUnavailable, NodePartitioned):
                    dead = True
            if dead:
                self.fail_node(name)
                failed.append(name)
        return failed

    def fail_node(self, name: str) -> int:
        """Remove ``name`` from the ring and fail over each of its
        non-terminal fleet jobs to the next live owner — exactly
        once: the record is remapped under the lock before
        resubmission, and the dead node never rejoins with that
        job id."""
        with self._lock:
            if name in self._down:
                return 0
            self._down.add(name)
            self.ring.remove(name)
            orphans = [record for record in self._jobs.values()
                       if record.node == name
                       and record.terminal_doc is None]
        moved = 0
        for record in orphans:
            moved += self._fail_over(record)
        with self._lock:
            self.failovers += moved
        return moved

    def _fail_over(self, record: FleetJob) -> int:
        key = record.recipe.get("module_hash", record.fleet_id)
        try:
            candidates = self.ring.owners(key, count=len(self.ring))
        except BackendUnavailable:
            return 0
        recipe = dict(record.recipe)
        recipe["job_id"] = record.node_job_id
        for name in candidates:
            if self._place_recipe(recipe, record.node, name,
                                  kind="failover"):
                return 1
        return 0

    # -- partitions --------------------------------------------------------
    def partition(self, names: "list[str] | tuple[str, ...]",
                  reason: str = "network partition") -> None:
        """Cut a strict minority off from the fleet: they refuse
        writes, serve stale-marked reads, and leave the ring so the
        majority keeps owning every shard."""
        names = list(names)
        with self._lock:
            alive = [name for name in self.backends
                     if name not in self._down]
        if 2 * len(names) >= len(alive):
            raise ValueError(
                f"refusing to partition {len(names)} of {len(alive)} "
                f"nodes: only a strict minority may be cut off")
        for name in names:
            self.backends[name].set_partitioned(True, reason)
            with self._lock:
                self._partitioned.add(name)
                self.ring.remove(name)

    def heal(self) -> int:
        """End the partition: clear the flags, rejoin the ring, and
        replay journals so rejoined replicas converge.  Returns
        verdicts applied during catch-up."""
        with self._lock:
            names = sorted(self._partitioned)
        for name in names:
            self.backends[name].set_partitioned(False, None)
            with self._lock:
                self._partitioned.discard(name)
                self.ring.add(name)
        return self.replicate_once()

    # -- observability -----------------------------------------------------
    def health(self) -> dict:
        nodes: dict[str, dict] = {}
        worst = "ok"
        for name, backend in self.backends.items():
            if name in self._down:
                nodes[name] = {"status": "dead"}
                worst = "degraded"
                continue
            try:
                nodes[name] = backend.health()
            except (BackendUnavailable, NodePartitioned) as exc:
                nodes[name] = {"status": "unreachable",
                               "detail": str(exc)}
                worst = "degraded"
                continue
            if nodes[name].get("status") not in ("ok", "idle"):
                worst = "degraded"
        return {"status": worst, "nodes": nodes,
                "ring": sorted(self.ring.nodes),
                "down": sorted(self._down),
                "partitioned": sorted(self._partitioned)}

    def stats(self) -> dict:
        with self._lock:
            doc = {
                "submissions": self.submissions,
                "failovers": self.failovers,
                "jobs_stolen": self.jobs_stolen,
                "replicated": self.replicated,
                "jobs_tracked": len(self._jobs),
                "nodes": {},
            }
        if self.tenants is not None:
            doc["tenants"] = self.tenants.snapshot()
        for name, backend in self.backends.items():
            if name in self._down:
                doc["nodes"][name] = {"status": "dead"}
                continue
            try:
                doc["nodes"][name] = backend.stats()
            except (BackendUnavailable, NodePartitioned) as exc:
                doc["nodes"][name] = {"status": "unreachable",
                                      "detail": str(exc)}
        return doc

"""Per-stage circuit breakers and the service health model.

A long-lived scan daemon must not keep slamming a pipeline stage that
is failing deterministically (a solver regression, a wedged symbolic
replay, a broken instrumentation pass): every job would burn a full
retry budget against the same wall.  The classic remedy is the
circuit breaker — count *consecutive* failures per stage, trip open
after a threshold, stop exercising the stage while open, and probe it
again after a cooldown:

``closed``
    normal operation; a success resets the consecutive-failure count.
``open``
    the stage failed ``threshold`` times in a row.  Jobs that would
    need it degrade to black-box-only scanning (the PR-2 degradation
    path) instead of failing; the cooldown clock runs.
``half_open``
    the cooldown elapsed.  Exactly one job per half-open window runs
    as a full-pipeline *probe*: success closes the breaker (and resets
    the cooldown to its base), failure re-opens it with a doubled
    cooldown (capped), so a persistently broken stage is probed ever
    more rarely.

Breakers are pure state machines over an injectable monotonic clock —
no threads, no sleeps — so tests drive them deterministically and the
scheduler composes them under its own lock.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["CircuitBreaker", "BreakerBoard", "BREAKER_STAGES",
           "BLACKBOX_GATED_STAGES", "PRESSURE_LEVELS", "pressure_rank",
           "max_pressure"]

# Pipeline stages the service tracks breakers for.  These are the
# taxonomy's stage names ("symback" is the symbolic-replay stage).
BREAKER_STAGES = ("ingest", "instrument", "deploy", "fuzz", "symback",
                  "solve")

# Stages whose open breaker degrades new jobs to black-box-only
# scanning (mirrors resilience.DEGRADABLE_STAGES: the mutation loop
# works without them).
BLACKBOX_GATED_STAGES = ("symback", "solve")

# The brownout ladder, mildest first.  Breakers guard *stages* (one
# broken pipeline step); pressure levels guard the *service* (too much
# work for the whole pipeline).  Each level buys headroom by finishing
# cheaper scans rather than shedding blindly:
#
# ``normal``     full-fidelity campaigns, verdicts byte-identical to an
#                unloaded daemon.
# ``elevated``   fuzz budgets shrink (fewer rounds per campaign).
# ``saturated``  additionally black-box-only — the symbolic side is the
#                most expensive stage, and degraded verdicts already
#                carry the PR-5 labeling.
# ``shedding``   new work is refused with a measured Retry-After;
#                cache and replay hits are still served.
PRESSURE_LEVELS = ("normal", "elevated", "saturated", "shedding")


def pressure_rank(level: str) -> int:
    """Position of ``level`` on the ladder (unknown levels rank 0)."""
    try:
        return PRESSURE_LEVELS.index(level)
    except ValueError:
        return 0


def max_pressure(a: str, b: str) -> str:
    """The more severe of two ladder levels."""
    return a if pressure_rank(a) >= pressure_rank(b) else b


class CircuitBreaker:
    """One stage's closed / open / half-open failure gate."""

    def __init__(self, stage: str, *, threshold: int = 3,
                 cooldown_s: float = 30.0,
                 max_cooldown_s: float = 300.0,
                 clock: Callable[[], float] = time.monotonic):
        self.stage = stage
        self.threshold = max(1, threshold)
        self.base_cooldown_s = cooldown_s
        self.cooldown_s = cooldown_s
        self.max_cooldown_s = max_cooldown_s
        self._clock = clock
        self._state = "closed"
        self._opened_at: float | None = None
        self._probe_taken = False
        self.consecutive_failures = 0
        self.trips = 0          # closed/half_open -> open transitions
        self.recoveries = 0     # half_open/open -> closed transitions

    # -- state -------------------------------------------------------------
    def _refresh(self) -> None:
        if self._state == "open" \
                and self._clock() - self._opened_at >= self.cooldown_s:
            self._state = "half_open"
            self._probe_taken = False

    @property
    def state(self) -> str:
        self._refresh()
        return self._state

    def _trip(self) -> None:
        self._state = "open"
        self._opened_at = self._clock()
        self.trips += 1

    # -- events ------------------------------------------------------------
    def record_failure(self) -> bool:
        """Note one stage failure; True when this call tripped it open."""
        self._refresh()
        self.consecutive_failures += 1
        if self._state == "half_open":
            # The probe failed: back to open, and probe more rarely.
            self.cooldown_s = min(self.cooldown_s * 2,
                                  self.max_cooldown_s)
            self._trip()
            return True
        if self._state == "closed" \
                and self.consecutive_failures >= self.threshold:
            self._trip()
            return True
        return False

    def record_success(self) -> bool:
        """Note one stage success; True when this call closed it."""
        self._refresh()
        self.consecutive_failures = 0
        if self._state in ("half_open", "open"):
            self._state = "closed"
            self.cooldown_s = self.base_cooldown_s
            self._probe_taken = False
            self.recoveries += 1
            return True
        return False

    def try_probe(self) -> bool:
        """Claim the single full-pipeline probe slot of the current
        half-open window; False if the breaker is not half-open or the
        slot is already taken."""
        self._refresh()
        if self._state != "half_open" or self._probe_taken:
            return False
        self._probe_taken = True
        return True

    def snapshot(self) -> dict:
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "threshold": self.threshold,
            "trips": self.trips,
            "recoveries": self.recoveries,
            "cooldown_s": self.cooldown_s,
        }


class BreakerBoard:
    """The scheduler's breaker per pipeline stage (not thread-safe by
    itself; the scheduler mutates it under its own lock)."""

    def __init__(self, stages: tuple[str, ...] = BREAKER_STAGES, *,
                 threshold: int = 3, cooldown_s: float = 30.0,
                 max_cooldown_s: float = 300.0,
                 clock: Callable[[], float] = time.monotonic):
        self.breakers = {
            stage: CircuitBreaker(stage, threshold=threshold,
                                  cooldown_s=cooldown_s,
                                  max_cooldown_s=max_cooldown_s,
                                  clock=clock)
            for stage in stages
        }

    def record_failure(self, stage: str) -> bool:
        breaker = self.breakers.get(stage)
        return breaker.record_failure() if breaker else False

    def record_success(self, stage: str) -> bool:
        breaker = self.breakers.get(stage)
        return breaker.record_success() if breaker else False

    def open_stages(self) -> list[str]:
        """Stages whose breaker is not closed (open or half-open)."""
        return [stage for stage, breaker in self.breakers.items()
                if breaker.state != "closed"]

    def force_blackbox(self) -> bool:
        """Should a new job skip the symbolic side?  True when any
        black-box-gated breaker is open — except that one job per
        half-open window is let through as the recovery probe."""
        forced = False
        for stage in BLACKBOX_GATED_STAGES:
            breaker = self.breakers.get(stage)
            if breaker is None:
                continue
            state = breaker.state
            if state == "open":
                forced = True
            elif state == "half_open" and not breaker.try_probe():
                forced = True
        return forced

    def snapshot(self) -> dict[str, dict]:
        return {stage: breaker.snapshot()
                for stage, breaker in self.breakers.items()}

"""Storage-integrity primitives for the artifact store.

SQLite promises page-level durability, not end-to-end honesty: a
bit-flipped disk block, a partial restore, or an operator editing the
database under a live daemon all produce rows that *parse* fine and
are silently wrong.  The store therefore carries its own end-to-end
per-row content checksum (sha256 over the row's identity + payload)
written at insert time and verified on every read; the two failure
signals —

* :class:`StoreCorruption` — a checksum mismatch or an
  ``sqlite3.DatabaseError`` escaping the driver (malformed database
  image), and
* :class:`StoreBudgetExceeded` — the disk budget guard turning a
  would-be ``disk full`` crash into typed backpressure the admission
  layer can shed with a 429 —

are the scheduler's cue to quarantine the damaged database file and
rebuild the store from the journal instead of crashing or, worse,
serving a wrong verdict.
"""

from __future__ import annotations

import hashlib

__all__ = ["StoreCorruption", "StoreBudgetExceeded", "content_checksum"]


class StoreCorruption(Exception):
    """The artifact store returned bytes it cannot vouch for: a row
    checksum mismatch or SQLite reporting a malformed database."""

    def __init__(self, message: str, *, table: str | None = None,
                 key: str | None = None):
        super().__init__(message)
        self.table = table
        self.key = key


class StoreBudgetExceeded(Exception):
    """Typed backpressure: a store write was refused because it would
    exceed the configured disk budget (or the disk itself is full).
    The write did not happen; the caller should shed or retry later."""

    def __init__(self, message: str, *, used_bytes: int = 0,
                 budget_bytes: int = 0):
        super().__init__(message)
        self.used_bytes = used_bytes
        self.budget_bytes = budget_bytes


def content_checksum(*parts: "bytes | str") -> str:
    """sha256 over the concatenated parts (strings are UTF-8), with a
    length prefix per part so ("ab","c") != ("a","bc")."""
    digest = hashlib.sha256()
    for part in parts:
        data = part.encode("utf-8") if isinstance(part, str) else part
        digest.update(len(data).to_bytes(8, "big"))
        digest.update(data)
    return digest.hexdigest()

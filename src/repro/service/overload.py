"""Adaptive admission control and the brownout pressure ladder.

The scheduler's static knobs (``inflight_budget``, ``max_depth``, a
hard-coded ``retry_after_s``) assume the operator sized the daemon for
its peak.  Under a real burst that assumption fails in the worst way:
the queue stays legally full of work whose callers have long given up,
every admitted job still gets a *full* fuzzing budget, and rejected
clients are told to come back in a constant five seconds regardless of
how deep the backlog actually is.

:class:`OverloadController` replaces those constants with three
measured signals:

AIMD inflight sizing
    The controller watches recent end-to-end job latencies (the same
    samples :class:`~repro.metrics.ThroughputStats` aggregates) and
    compares their p95 against a target SLO.  While the target is
    breached the effective inflight budget shrinks multiplicatively;
    while it is met the budget recovers additively back toward the
    configured ceiling — classic AIMD, which converges without
    oscillating.  The effective queue depth scales in proportion, so
    backlog cannot grow unboundedly while service capacity is cut.

Drain-rate Retry-After
    Completions are timestamped into a sliding window; the measured
    drain rate turns a queue depth into an honest hint — "this backlog
    will take ~N seconds to clear" — instead of the fixed 5.0 s every
    shed used to carry.

Pressure ladder
    Utilization, SLO breach and budget squeeze combine into one of
    :data:`~repro.service.health.PRESSURE_LEVELS`.  The scheduler maps
    the level to brownout actions (shrink fuzz budgets, force
    black-box-only, replay-serve, finally 429); the controller only
    decides *how loaded* the service is, never *what to do about it*,
    so the policy stays in one readable place in the scheduler.

Cost-based shedding picks victims by estimated campaign cost (module
size + enabled oracle families) against a priority-scaled allowance
that shrinks with pressure: when something must be refused, it is the
biggest, least-important work first.

Like the circuit breakers next door, the controller is a pure state
machine over an injectable monotonic clock — no threads, no sleeps —
driven by the scheduler's housekeeping tick and mutated only under the
scheduler's lock.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Deque, Tuple

from .health import PRESSURE_LEVELS
from ..metrics import percentile

__all__ = ["OverloadController", "SHED_KINDS"]

# Every way the daemon refuses or cuts short work, as counted by the
# per-kind shed counters in /stats and bench output.
SHED_KINDS = ("queue", "inflight", "deadline", "quota", "disk",
              "brownout", "draining")

# How much each pressure level shrinks a campaign's fuzz budget.  The
# shedding entry matters for jobs admitted just before the ladder
# topped out.
_TIMEOUT_SCALE = {"normal": 1.0, "elevated": 0.5,
                  "saturated": 0.25, "shedding": 0.25}

# Cost allowance multiplier per level (normal never cost-sheds).
_COST_FACTOR = {"elevated": 1.0, "saturated": 0.25, "shedding": 0.0}


class OverloadController:
    """Measured admission control for one scan daemon."""

    def __init__(self, base_inflight: int, base_depth: int, *,
                 target_p95_s: float = 30.0,
                 min_inflight: int = 1,
                 latency_window: int = 128,
                 latency_window_s: float = 60.0,
                 drain_window_s: float = 30.0,
                 adjust_interval_s: float = 1.0,
                 decrease_factor: float = 0.5,
                 increase_step: float = 1.0,
                 min_retry_after_s: float = 0.5,
                 max_retry_after_s: float = 60.0,
                 default_retry_after_s: float = 1.0,
                 cost_allowance: float = 32.0,
                 clock: Callable[[], float] = time.monotonic):
        self.base_inflight = max(1, int(base_inflight))
        self.base_depth = max(1, int(base_depth))
        self.target_p95_s = float(target_p95_s)
        self.min_inflight = max(1, min(int(min_inflight),
                                       self.base_inflight))
        self.latency_window = int(latency_window)
        self.latency_window_s = float(latency_window_s)
        self.drain_window_s = float(drain_window_s)
        self.adjust_interval_s = float(adjust_interval_s)
        self.decrease_factor = float(decrease_factor)
        self.increase_step = float(increase_step)
        self.min_retry_after_s = float(min_retry_after_s)
        self.max_retry_after_s = float(max_retry_after_s)
        self.default_retry_after_s = float(default_retry_after_s)
        self.cost_allowance = float(cost_allowance)
        self._clock = clock
        self._limit = float(self.base_inflight)
        self._last_adjust = clock()
        self._latencies: Deque[Tuple[float, float]] = deque(
            maxlen=self.latency_window)
        self._completions: Deque[float] = deque(maxlen=4096)
        self.pressure = "normal"
        self.adjustments = 0        # AIMD limit changes, for /stats

    # -- observations ------------------------------------------------------
    def observe_latency(self, seconds: float) -> None:
        """One finished job's end-to-end latency (submit -> terminal)."""
        self._latencies.append((self._clock(), float(seconds)))

    def observe_completion(self) -> None:
        """One job left the system (any terminal state): drain signal."""
        self._completions.append(self._clock())

    # -- derived signals ---------------------------------------------------
    def _recent_latencies(self) -> list:
        horizon = self._clock() - self.latency_window_s
        return [s for (t, s) in self._latencies if t >= horizon]

    def observed_p95_s(self) -> float:
        recent = self._recent_latencies()
        return percentile(recent, 95.0) if recent else 0.0

    def expected_job_s(self) -> float:
        """Median recent job latency — the headroom one more job needs
        (deadline-aware admission and work-stealing use this)."""
        recent = self._recent_latencies()
        return percentile(recent, 50.0) if recent else 0.0

    def drain_rate_per_s(self) -> float:
        now = self._clock()
        horizon = now - self.drain_window_s
        while self._completions and self._completions[0] < horizon:
            self._completions.popleft()
        if not self._completions:
            return 0.0
        span = max(now - self._completions[0], 1e-6)
        return len(self._completions) / span

    def retry_after_s(self, pending: int = 0) -> float:
        """An honest Retry-After: how long the current backlog takes to
        drain at the measured rate (plus one slot for the caller)."""
        rate = self.drain_rate_per_s()
        if rate <= 0.0:
            hint = self.default_retry_after_s
        else:
            hint = (max(0, int(pending)) + 1) / rate
        return min(max(hint, self.min_retry_after_s),
                   self.max_retry_after_s)

    # -- AIMD + ladder -----------------------------------------------------
    def update(self, queue_depth: int, inflight: int) -> str:
        """One housekeeping tick: adjust the limit, refresh the ladder.
        Returns the (possibly new) pressure level."""
        now = self._clock()
        p95 = self.observed_p95_s()
        breach = (p95 / self.target_p95_s) if self.target_p95_s > 0 \
            else 0.0
        if now - self._last_adjust >= self.adjust_interval_s:
            self._last_adjust = now
            if breach > 1.0 and inflight > 0:
                shrunk = max(float(self.min_inflight),
                             self._limit * self.decrease_factor)
                if shrunk != self._limit:
                    self._limit = shrunk
                    self.adjustments += 1
            elif self._limit < self.base_inflight:
                self._limit = min(float(self.base_inflight),
                                  self._limit + self.increase_step)
                self.adjustments += 1
        capacity = self.effective_inflight() + self.effective_depth()
        load = (max(0, int(queue_depth)) + max(0, int(inflight))) \
            / max(1, capacity)
        squeeze = self._limit / self.base_inflight
        if load >= 1.0 and (squeeze <= self.min_inflight
                            / self.base_inflight or breach >= 2.0):
            self.pressure = "shedding"
        elif load >= 0.9 or breach > 1.5 or squeeze <= 0.5:
            self.pressure = "saturated"
        elif load >= 0.6 or breach > 1.0 or squeeze < 1.0:
            self.pressure = "elevated"
        else:
            self.pressure = "normal"
        return self.pressure

    def effective_inflight(self) -> int:
        return max(self.min_inflight,
                   min(self.base_inflight, int(round(self._limit))))

    def effective_depth(self) -> int:
        scale = self._limit / self.base_inflight
        return max(1, min(self.base_depth,
                          int(round(self.base_depth * scale))))

    def timeout_scale(self) -> float:
        """Fuzz-budget multiplier for the active brownout level."""
        return _TIMEOUT_SCALE.get(self.pressure, 1.0)

    # -- cost-based shedding -----------------------------------------------
    @staticmethod
    def admission_cost(module_len: int, oracle_count: int) -> float:
        """Estimated campaign cost, in rough oracle-equivalents: bigger
        modules fuzz slower, each enabled family adds scan work."""
        return max(0, int(module_len)) / 65536.0 \
            + max(0, int(oracle_count))

    def should_shed_cost(self, cost: float, priority: int) -> bool:
        """Shed this submission for being too expensive for its
        priority at the current level?  Allowance doubles per priority
        step and shrinks with pressure, so the biggest lowest-priority
        work goes first."""
        factor = _COST_FACTOR.get(self.pressure)
        if factor is None:
            return False
        if factor <= 0.0:
            return True
        allowance = self.cost_allowance * (2.0 ** max(-8, min(8, priority))) \
            * factor
        return cost > allowance

    def snapshot(self) -> dict:
        return {
            "pressure": self.pressure,
            "levels": list(PRESSURE_LEVELS),
            "effective_inflight": self.effective_inflight(),
            "base_inflight": self.base_inflight,
            "effective_depth": self.effective_depth(),
            "base_depth": self.base_depth,
            "observed_p95_s": round(self.observed_p95_s(), 6),
            "target_p95_s": self.target_p95_s,
            "drain_rate_per_s": round(self.drain_rate_per_s(), 6),
            "retry_after_s": round(self.retry_after_s(), 6),
            "expected_job_s": round(self.expected_job_s(), 6),
            "timeout_scale": self.timeout_scale(),
            "adjustments": self.adjustments,
        }

"""Bounded priority job queue with per-client fair scheduling.

The queue is the service's only buffer, and it is *bounded by
construction*: :meth:`JobQueue.put` raises the typed
:class:`QueueFull` once the depth limit is hit — callers shed load
with an explicit rejection the client can see (HTTP 429) instead of
buffering unboundedly until the process dies.  Re-queued retries use
``force=True`` so containment can never be starved by admission
control.

Scheduling is two-level: strict priority first (higher number runs
sooner), round-robin across clients within a priority band — one
client flooding the queue cannot starve another client's single job,
because each ``get`` takes the head job of the *next* client in
rotation.

Job lifecycle: ``queued → running → done | failed | quarantined``
(plus terminal ``rejected`` for jobs shed at admission).  The
:class:`Job` record itself is the single source of truth the HTTP
layer renders for ``GET /scans/{id}``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Job", "JobQueue", "QueueFull", "JOB_STATES"]

JOB_STATES = ("queued", "running", "done", "failed", "quarantined",
              "rejected")


class QueueFull(Exception):
    """Typed backpressure rejection: the queue (or the service's
    in-flight budget) is saturated; the submission was shed."""

    def __init__(self, message: str, *, depth: int, limit: int,
                 kind: str = "depth"):
        super().__init__(message)
        self.depth = depth
        self.limit = limit
        self.kind = kind  # "depth" | "inflight"


@dataclass
class Job:
    """One admitted scan request and everything about its lifetime."""

    job_id: str
    client: str
    scan_key: str
    module_hash: str
    config: dict
    task: Any = None          # CampaignTask; None once terminal
    priority: int = 0
    state: str = "queued"
    submitted_s: float = 0.0
    started_s: float | None = None
    finished_s: float | None = None
    attempts: int = 0
    result_doc: dict | None = None
    error: str | None = None
    outcome: str = "queued"   # queued | cached | coalesced
    waiters: int = 0          # coalesced submissions sharing this job

    @property
    def terminal(self) -> bool:
        return self.state in ("done", "failed", "quarantined",
                              "rejected")

    def to_doc(self) -> dict:
        doc = {
            "id": self.job_id,
            "client": self.client,
            "state": self.state,
            "outcome": self.outcome,
            "scan_key": self.scan_key,
            "module_hash": self.module_hash,
            "config": dict(self.config),
            "priority": self.priority,
            "attempts": self.attempts,
            "coalesced_waiters": self.waiters,
        }
        if self.started_s and self.finished_s:
            doc["latency_s"] = self.finished_s - self.started_s
        if self.error is not None:
            doc["error"] = self.error
        return doc


class JobQueue:
    """Thread-safe bounded queue: priority bands, fair within a band."""

    def __init__(self, max_depth: int = 64):
        self.max_depth = max_depth
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        # priority -> client -> FIFO of jobs; clients rotate per get.
        self._bands: dict[int, "OrderedDict[str, deque[Job]]"] = {}
        self._depth = 0
        self.shed = 0

    def __len__(self) -> int:
        with self._lock:
            return self._depth

    @property
    def depth(self) -> int:
        return len(self)

    def put(self, job: Job, force: bool = False) -> None:
        """Enqueue ``job``; raises :class:`QueueFull` at the depth
        bound unless ``force`` (used for containment re-queues, which
        must never be shed)."""
        with self._lock:
            if not force and self._depth >= self.max_depth:
                self.shed += 1
                raise QueueFull(
                    f"queue depth {self._depth} at limit "
                    f"{self.max_depth}", depth=self._depth,
                    limit=self.max_depth)
            band = self._bands.setdefault(job.priority, OrderedDict())
            band.setdefault(job.client, deque()).append(job)
            self._depth += 1
            self._ready.notify()

    def get(self, timeout: float | None = None) -> Job | None:
        """The next job by (priority, client rotation); None on
        timeout."""
        with self._lock:
            while self._depth == 0:
                if not self._ready.wait(timeout=timeout):
                    return None
            priority = max(p for p, band in self._bands.items()
                           if band)
            band = self._bands[priority]
            client, jobs = next(iter(band.items()))
            job = jobs.popleft()
            # Rotate: the client goes to the back of its band (or out
            # of it entirely once drained) so siblings get the next
            # slot.
            del band[client]
            if jobs:
                band[client] = jobs
            if not band:
                del self._bands[priority]
            self._depth -= 1
            return job

    def drain(self) -> list[Job]:
        """Remove and return every queued job (checkpoint path)."""
        out: list[Job] = []
        with self._lock:
            for priority in sorted(self._bands, reverse=True):
                band = self._bands[priority]
                while band:
                    client, jobs = next(iter(band.items()))
                    out.extend(jobs)
                    del band[client]
            self._bands.clear()
            self._depth = 0
        return out

"""Bounded priority job queue with fair scheduling, anti-starvation
promotion and per-job TTLs.

The queue is the service's only buffer, and it is *bounded by
construction*: :meth:`JobQueue.put` raises the typed
:class:`QueueFull` once the depth limit is hit — callers shed load
with an explicit rejection the client can see (HTTP 429) instead of
buffering unboundedly until the process dies.  Re-queued retries use
``force=True`` so containment can never be starved by admission
control.

Scheduling is two-level: strict priority first (higher number runs
sooner), round-robin across clients within a priority band — one
client flooding the queue cannot starve another client's single job,
because each ``get`` takes the head job of the *next* client in
rotation.  Two aging rules temper strict priority:

* **anti-starvation promotion** — a job whose queue age exceeds
  ``promote_after_s`` is served ahead of every band, oldest first, so
  a hot high-priority client can delay low-priority work but never
  park it forever;
* **per-job TTL** — a job still queued after its ``ttl_s`` is expired
  with the typed terminal state ``"expired"`` (reported through the
  ``on_expired`` callback) instead of being scanned arbitrarily late;
  a stale answer the submitter stopped waiting for is a wasted
  campaign.

Two clocks govern staleness.  TTLs age on the queue's *monotonic*
clock (relative budgets must not jump with NTP); caller deadlines
(``Job.deadline_epoch_s``) are absolute *wall-clock* instants set by
the client, compared against the injectable ``wall_clock``.  Both are
policed by the same sweep, which runs on every ``get`` **and** via the
public :meth:`JobQueue.sweep_expired` so an idle queue — no worker
polling, daemon quiescent — still expires jobs promptly instead of
discovering staleness only when demand returns.

Job lifecycle: ``queued → running → done | failed | quarantined |
expired | deadline_exceeded`` (plus terminal ``rejected`` for jobs
shed at admission).  The :class:`Job` record itself is the single
source of truth the HTTP layer renders for ``GET /scans/{id}``.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Any, Callable

__all__ = ["Job", "JobQueue", "QueueFull", "JOB_STATES"]

JOB_STATES = ("queued", "running", "done", "failed", "quarantined",
              "expired", "deadline_exceeded", "rejected", "stolen")


class QueueFull(Exception):
    """Typed backpressure rejection: the queue (or the service's
    in-flight budget, the store's disk budget, or a tenant's quota) is
    saturated; the submission was shed.  ``retry_after_s`` is the
    server's hint for when a retry is worth attempting (emitted as
    ``Retry-After``).  Every 429 the service emits carries the same
    schema: ``kind`` names the saturated bound so clients and fleet
    peers can dispatch without string-matching the message."""

    def __init__(self, message: str, *, depth: int, limit: int,
                 kind: str = "queue", retry_after_s: float = 1.0):
        super().__init__(message)
        self.depth = depth
        self.limit = limit
        # "queue" | "inflight" | "draining" | "disk" | "quota"
        # | "brownout" (pressure ladder refused it: level topped out
        # or the campaign is too expensive for its priority)
        self.kind = kind
        self.retry_after_s = retry_after_s


@dataclass
class Job:
    """One admitted scan request and everything about its lifetime."""

    job_id: str
    client: str
    scan_key: str
    module_hash: str
    config: dict
    task: Any = None          # CampaignTask; None once terminal
    priority: int = 0
    state: str = "queued"
    submitted_s: float = 0.0
    started_s: float | None = None
    finished_s: float | None = None
    attempts: int = 0
    result_doc: dict | None = None
    error: str | None = None
    outcome: str = "queued"   # queued | cached | coalesced
    waiters: int = 0          # coalesced submissions sharing this job
    queued_s: float = 0.0     # queue clock at first enqueue (for aging)
    ttl_s: float | None = None  # max queue age before "expired"
    deadline_epoch_s: float | None = None  # caller wall-clock deadline
    brownout: str | None = None  # pressure level the run degraded under
    claim: str | None = None  # worker token currently owning the run
    requeues: int = 0         # watchdog reap re-queues (exactly-once)
    stolen_by: str | None = None  # fleet thief token once work-stolen

    @property
    def terminal(self) -> bool:
        return self.state in ("done", "failed", "quarantined",
                              "expired", "deadline_exceeded",
                              "rejected", "stolen")

    def deadline_remaining_s(self,
                             now_epoch_s: float | None = None) -> float:
        """Wall-clock budget left before the caller's deadline; +inf
        without one (so comparisons read naturally)."""
        if self.deadline_epoch_s is None:
            return float("inf")
        now = time.time() if now_epoch_s is None else now_epoch_s
        return self.deadline_epoch_s - now

    def to_doc(self) -> dict:
        doc = {
            "id": self.job_id,
            "client": self.client,
            "state": self.state,
            "outcome": self.outcome,
            "scan_key": self.scan_key,
            "module_hash": self.module_hash,
            "config": dict(self.config),
            "priority": self.priority,
            "attempts": self.attempts,
            "coalesced_waiters": self.waiters,
        }
        if self.requeues:
            doc["requeues"] = self.requeues
        if self.stolen_by is not None:
            doc["stolen_by"] = self.stolen_by
        if self.deadline_epoch_s is not None:
            doc["deadline_epoch_s"] = self.deadline_epoch_s
        if self.brownout is not None:
            doc["brownout"] = self.brownout
        if self.started_s and self.finished_s:
            doc["latency_s"] = self.finished_s - self.started_s
        if self.error is not None:
            doc["error"] = self.error
        return doc


class JobQueue:
    """Thread-safe bounded queue: priority bands, fair within a band,
    age-promoted across bands, TTL-expired when stale."""

    def __init__(self, max_depth: int = 64, *,
                 promote_after_s: float | None = None,
                 on_expired: "Callable[[Job], None] | None" = None,
                 clock: Callable[[], float] = time.monotonic,
                 wall_clock: Callable[[], float] = time.time):
        self.max_depth = max_depth
        self.promote_after_s = promote_after_s
        self.on_expired = on_expired
        self._clock = clock
        self._wall_clock = wall_clock
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        # priority -> client -> FIFO of jobs; clients rotate per get.
        self._bands: dict[int, "OrderedDict[str, deque[Job]]"] = {}
        self._depth = 0
        self.shed = 0
        self.expired = 0
        self.deadline_expired = 0
        self.promoted = 0
        self.stolen = 0

    def __len__(self) -> int:
        with self._lock:
            return self._depth

    @property
    def depth(self) -> int:
        return len(self)

    def put(self, job: Job, force: bool = False) -> None:
        """Enqueue ``job``; raises :class:`QueueFull` at the depth
        bound unless ``force`` (used for containment re-queues, which
        must never be shed)."""
        with self._lock:
            if not force and self._depth >= self.max_depth:
                self.shed += 1
                raise QueueFull(
                    f"queue depth {self._depth} at limit "
                    f"{self.max_depth}", depth=self._depth,
                    limit=self.max_depth)
            if job.queued_s == 0.0:
                # First enqueue only: containment/watchdog re-queues
                # keep their original age so aging rules still apply.
                job.queued_s = self._clock()
            band = self._bands.setdefault(job.priority, OrderedDict())
            band.setdefault(job.client, deque()).append(job)
            self._depth += 1
            self._ready.notify()

    def get(self, timeout: float | None = None) -> Job | None:
        """The next job by (age promotion, priority, client rotation);
        None on timeout.  TTL-expired jobs found on the way are
        finalized through ``on_expired`` and never returned."""
        job: Job | None = None
        expired: list[Job] = []
        with self._lock:
            while True:
                self._sweep_expired_locked(expired)
                if self._depth > 0:
                    job = self._pick_locked()
                    break
                if not self._ready.wait(timeout=timeout):
                    break
        # Callbacks run outside the queue lock: the service finalizes
        # expired jobs under its own lock, and lock order everywhere
        # else is service -> queue.
        if self.on_expired is not None:
            for stale in expired:
                self.on_expired(stale)
        return job

    def sweep_expired(self) -> int:
        """Expire stale queued jobs *now*, without waiting for a
        ``get``: the scheduler's housekeeping tick calls this so an
        idle queue (workers busy or daemon quiescent) still emits
        ``expired`` / ``deadline_exceeded`` terminal docs promptly.
        Returns the number of jobs expired by this call."""
        expired: list[Job] = []
        with self._lock:
            self._sweep_expired_locked(expired)
        if self.on_expired is not None:
            for stale in expired:
                self.on_expired(stale)
        return len(expired)

    # -- internals (lock held) ---------------------------------------------
    def _sweep_expired_locked(self, out: list[Job]) -> None:
        now = self._clock()
        wall_now = self._wall_clock()
        for priority in list(self._bands):
            band = self._bands[priority]
            for client in list(band):
                jobs = band[client]
                keep: deque[Job] = deque()
                stale: list[Job] = []
                for job in jobs:
                    if job.deadline_remaining_s(wall_now) <= 0.0:
                        stale.append(job)
                        self.deadline_expired += 1
                    elif job.ttl_s is not None \
                            and now - job.queued_s >= job.ttl_s:
                        stale.append(job)
                        self.expired += 1
                    else:
                        keep.append(job)
                if stale:
                    out.extend(stale)
                    self._depth -= len(stale)
                    if keep:
                        band[client] = keep
                    else:
                        del band[client]
            if not band:
                del self._bands[priority]

    def _pick_locked(self) -> Job:
        promoted = self._promotable_locked()
        if promoted is not None:
            priority, client = promoted
            self.promoted += 1
        else:
            priority = max(p for p, band in self._bands.items()
                           if band)
            client = next(iter(self._bands[priority]))
        band = self._bands[priority]
        jobs = band[client]
        job = jobs.popleft()
        # Rotate: the client goes to the back of its band (or out of
        # it entirely once drained) so siblings get the next slot.
        del band[client]
        if jobs:
            band[client] = jobs
        if not band:
            del self._bands[priority]
        self._depth -= 1
        return job

    def _promotable_locked(self) -> "tuple[int, str] | None":
        """(priority, client) of the oldest head job whose queue age
        crossed ``promote_after_s``, or None."""
        if self.promote_after_s is None:
            return None
        now = self._clock()
        oldest: "tuple[float, int, str] | None" = None
        for priority, band in self._bands.items():
            for client, jobs in band.items():
                head = jobs[0]
                age = now - head.queued_s
                if age < self.promote_after_s:
                    continue
                if oldest is None or head.queued_s < oldest[0]:
                    oldest = (head.queued_s, priority, client)
        if oldest is None:
            return None
        return oldest[1], oldest[2]

    def steal(self, max_jobs: int, *,
              min_headroom_s: float = 0.0) -> list[Job]:
        """Remove and return up to ``max_jobs`` queued entries for a
        fleet peer to run instead (work stealing).

        Only *unclaimed* queue entries can ever be here — a claimed
        job left the queue at ``get``, so stealing can never touch an
        in-flight claim by construction.  Stealing takes the youngest
        jobs of the lowest priority band first: those would have run
        last locally, so the donor's latency profile is disturbed the
        least while the thief gets real backlog off this node.

        ``min_headroom_s`` makes stealing deadline-aware: a job whose
        remaining wall-clock deadline budget is below the headroom is
        skipped — shipping it across the fleet just to have it expire
        on the thief wastes the transfer and a campaign slot.  Jobs
        without a deadline are always eligible."""
        out: list[Job] = []
        with self._lock:
            wall_now = self._wall_clock()
            for priority in sorted(self._bands):
                band = self._bands[priority]
                for client in list(reversed(band)):
                    jobs = band[client]
                    remaining: deque[Job] = deque()
                    for job in reversed(jobs):
                        if len(out) < max_jobs \
                                and job.deadline_remaining_s(wall_now) \
                                >= min_headroom_s:
                            out.append(job)
                        else:
                            remaining.appendleft(job)
                    if remaining:
                        band[client] = remaining
                    else:
                        del band[client]
                    if len(out) >= max_jobs:
                        break
                if not band and priority in self._bands:
                    del self._bands[priority]
                if len(out) >= max_jobs:
                    break
            self._depth -= len(out)
            self.stolen += len(out)
        return out

    def drain(self) -> list[Job]:
        """Remove and return every queued job (checkpoint path)."""
        out: list[Job] = []
        with self._lock:
            for priority in sorted(self._bands, reverse=True):
                band = self._bands[priority]
                while band:
                    client, jobs = next(iter(band.items()))
                    out.extend(jobs)
                    del band[client]
            self._bands.clear()
            self._depth = 0
        return out

"""Re-verdicting: replay scanner oracles over stored traces.

Fixing or adding an oracle used to mean re-fuzzing every module the
service ever scanned.  With trace-IR packs stored alongside verdicts
(:mod:`repro.traceir`), the sweep implemented here replaces that with
pure replay: for every stored trace, decode the pack, run the
registered detectors over it, and rewrite the verdict's scan doc with
``source: "replay"`` provenance — **zero** fuzzing, instrumentation or
solving.  Because campaigns are deterministic and the pack is the
detectors' exact read surface, an unchanged oracle set reproduces the
stored verdict byte-for-byte (modulo the provenance stamp); a changed
one shows up as counted, per-key **drift**.

The same machinery powers the background drift auditor
(:func:`audit_traces`): sample stored (trace, verdict) pairs on a
cadence, re-scan, and compare *without* rewriting — a mismatch under
an unchanged oracle version means a verdict or trace has rotted, and
is surfaced as a typed ``verdict_drift`` incident.

Corrupt trace blobs are never crashed on and never skipped silently:
the typed :class:`~repro.resilience.errors.TraceCorruption` is caught
per key, the blob is deleted, the key lands in the store's quarantine
table with the decoder's diagnosis, and the verdict is dropped so the
module is re-scannable from the module blob that is still stored.

Intact packs that simply *predate* the surface an enabled semantic
oracle family requires are a third outcome, distinct from both match
and drift: they are counted ``insufficient``, the trace and verdict
are dropped so a resubmission fuzzes fresh (with the richer capture),
and no drift incident is raised — the stored verdict never disagreed,
it just cannot be re-derived from what was stored.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..resilience.errors import TraceCorruption
from ..resilience.journal import _scan_to_doc
from ..scanner.oracles import ORACLE_VERSION
from ..semoracle.registry import InsufficientSurface, resolve_oracles
from ..traceir.codec import TRACEIR_VERSION
from ..traceir.pack import decode_pack, replay_scan

__all__ = ["ReverdictReport", "reverdict_store", "audit_traces"]


@dataclass
class ReverdictReport:
    """Outcome of one sweep (re-verdict or audit) over stored traces."""

    oracle_version: int
    traceir_version: int = TRACEIR_VERSION
    oracles: tuple = ()         # enabled family names, resolved
    replayed: int = 0           # traces decoded and re-scanned
    rewritten: int = 0          # verdicts rewritten with replay provenance
    matched: int = 0            # replay verdict == stored verdict
    drift: int = 0              # replay verdict != stored verdict
    corrupt: int = 0            # traces quarantined as TraceCorruption
    insufficient: int = 0       # intact packs lacking required surface
    orphaned: int = 0           # traces with no stored verdict to compare
    incidents: list = field(default_factory=list)

    def to_doc(self) -> dict:
        return {
            "oracle_version": self.oracle_version,
            "traceir_version": self.traceir_version,
            "oracles": list(self.oracles),
            "replayed": self.replayed,
            "rewritten": self.rewritten,
            "matched": self.matched,
            "drift": self.drift,
            "corrupt": self.corrupt,
            "insufficient": self.insufficient,
            "orphaned": self.orphaned,
            "incidents": list(self.incidents),
        }


def _quarantine_corrupt(store, key: str, module_hash: str,
                        exc: TraceCorruption,
                        report: ReverdictReport) -> None:
    """Handle one undecodable trace: quarantine, drop, re-scannable."""
    store.put_quarantine(key, module_hash, [f"trace corruption: {exc}"])
    store.delete_trace(key)
    # Dropping the verdict is what makes the module *re-scannable*: a
    # resubmission misses the dedup cache and fuzzes fresh, instead of
    # serving a verdict whose evidence can no longer be audited.
    store.delete_verdict(key)
    report.corrupt += 1
    report.incidents.append({
        "kind": "trace_corruption",
        "scan_key": key,
        "module_hash": module_hash,
        "detail": str(exc),
    })


def _requeue_insufficient(store, key: str, module_hash: str,
                          exc: InsufficientSurface,
                          report: ReverdictReport) -> None:
    """Handle one intact-but-too-old pack: drop, count, re-queue.

    Deliberately *not* quarantined: nothing is wrong with the module
    or the blob.  Dropping the trace and the verdict makes the module
    re-scannable — a resubmission misses the dedup cache and fuzzes
    fresh, capturing the richer surface the enabled families need.
    """
    store.delete_trace(key)
    store.delete_verdict(key)
    report.insufficient += 1
    report.incidents.append({
        "kind": "insufficient_surface",
        "scan_key": key,
        "module_hash": module_hash,
        "detail": str(exc),
        "missing": sorted(exc.missing),
    })


def _examine(store, key: str, report: ReverdictReport,
             extra_detectors=(), oracles=None) -> "tuple[dict, dict] | None":
    """Decode + replay one stored trace.

    Returns ``(trace_row, replay_scan_doc)`` or None when the key was
    consumed (corrupt and quarantined, insufficient and re-queued, or
    already gone).
    """
    row = store.get_trace(key)
    if row is None:
        return None
    try:
        pack = decode_pack(row["blob"])
        scan = replay_scan(pack, extra_detectors, oracles=oracles)
    except TraceCorruption as exc:
        _quarantine_corrupt(store, key, row["module_hash"], exc, report)
        return None
    except InsufficientSurface as exc:
        _requeue_insufficient(store, key, row["module_hash"], exc,
                              report)
        return None
    report.replayed += 1
    return row, _scan_to_doc(scan)


def reverdict_store(store, oracle_version: int | None = None,
                    extra_detectors=(), oracles=None) -> ReverdictReport:
    """Replay the oracles over every stored trace; rewrite verdicts.

    ``oracle_version`` is what the rewritten provenance records
    (default: the registered :data:`ORACLE_VERSION`).  ``oracles``
    selects the enabled families (None = the paper's five — the one
    set every stored pack can satisfy).  Each rewritten verdict keeps
    everything the fresh campaign reported except its scan doc, which
    is replaced by the replay's, and its provenance::

        {"oracle_version": N, "traceir_version": V,
         "oracles": [...], "source": "replay"}

    Drift (the replay disagreeing with the stored scan doc) is
    expected when the oracle set changed and alarming when it did not;
    either way it is counted and itemised, never silently absorbed.
    A pack that cannot satisfy an enabled family's required surface
    is counted ``insufficient`` and re-queued for a fresh scan — it
    is never compared, so it can never masquerade as drift.
    """
    version = ORACLE_VERSION if oracle_version is None else oracle_version
    names = resolve_oracles(oracles)
    report = ReverdictReport(oracle_version=version, oracles=names)
    for key in store.trace_keys():
        examined = _examine(store, key, report, extra_detectors,
                            oracles=oracles)
        if examined is None:
            continue
        row, scan_doc = examined
        record = store.verdict_record(key)
        if record is None:
            report.orphaned += 1
            continue
        result_doc = dict(record["result"])
        old_scan = result_doc.get("scans", {}).get(row["tool"])
        if old_scan == scan_doc:
            report.matched += 1
        else:
            report.drift += 1
            report.incidents.append({
                "kind": "verdict_drift",
                "scan_key": key,
                "module_hash": row["module_hash"],
                "tool": row["tool"],
                "before": old_scan,
                "after": scan_doc,
            })
        result_doc["scans"] = dict(result_doc.get("scans", {}))
        result_doc["scans"][row["tool"]] = scan_doc
        result_doc["provenance"] = {
            "oracle_version": version,
            "traceir_version": row["traceir_version"],
            "oracles": list(names),
            "source": "replay",
        }
        store.put_verdict(key, record["module_hash"],
                          record["config"], result_doc)
        report.rewritten += 1
    return report


def audit_traces(store, sample: int = 4, cursor: int = 0,
                 extra_detectors=(),
                 oracles=None) -> tuple[ReverdictReport, int]:
    """One drift-audit round: replay up to ``sample`` stored traces
    and compare against their verdicts without rewriting anything.

    ``cursor`` rotates deterministically through the key space across
    rounds so every stored pair is eventually audited; returns
    ``(report, next_cursor)``.  Corrupt traces get the full quarantine
    treatment even in audit mode — an undecodable blob must never
    survive to the next round.
    """
    report = ReverdictReport(oracle_version=ORACLE_VERSION,
                             oracles=resolve_oracles(oracles))
    keys = store.trace_keys()
    if not keys:
        return report, 0
    cursor %= len(keys)
    for key in (keys[(cursor + i) % len(keys)]
                for i in range(min(sample, len(keys)))):
        examined = _examine(store, key, report, extra_detectors,
                            oracles=oracles)
        if examined is None:
            continue
        row, scan_doc = examined
        record = store.verdict_record(key)
        if record is None:
            report.orphaned += 1
            continue
        old_scan = record["result"].get("scans", {}).get(row["tool"])
        if old_scan == scan_doc:
            report.matched += 1
        else:
            report.drift += 1
            report.incidents.append({
                "kind": "verdict_drift",
                "scan_key": key,
                "module_hash": row["module_hash"],
                "tool": row["tool"],
                "before": old_scan,
                "after": scan_doc,
            })
    return report, (cursor + min(sample, len(keys))) % len(keys)

"""The scan service core: admission, dedup, supervised workers,
circuit breakers and storage self-healing.

:class:`ScanService` glues the persistent :class:`ArtifactStore`, the
bounded :class:`JobQueue` and a supervised pool of worker threads into
the long-lived analyzer the HTTP daemon fronts.  One submission
travels::

    bytes -> ingest (sandboxed, typed reject) -> scan_key
          -> store hit?        -> cached verdict, no job runs
          -> in-flight twin?   -> coalesce onto the running job
          -> admission bounds  -> typed QueueFull shed
          -> queued -> running -> done | failed | quarantined | expired

Dedup levels:

* **store hit** — an identical module+config was already scanned
  (possibly in a previous process): the stored verdict is returned
  immediately and byte-identically, no worker involved;
* **single-flight coalescing** — an identical submission is already
  queued or running: the new submission attaches to that job instead
  of enqueuing a twin, so N concurrent identical uploads cost exactly
  one fuzzing campaign.

Self-healing (this PR's tentpole) has four pillars:

* **worker supervision** — workers run under a
  :class:`~repro.service.supervisor.WorkerSupervisor` watchdog.  Every
  job carries a *claim token* (``worker-name#generation``) stamped
  under the service lock; every completion path re-checks the claim,
  so when the watchdog reaps a dead or hung worker and requeues its
  job, whatever the zombie eventually produces is a no-op — the job is
  requeued *exactly once*.  A restart storm (too many replacements per
  window) degrades the service to draining instead of crash-looping.
* **circuit breakers** — a :class:`~repro.service.health.BreakerBoard`
  counts consecutive per-stage failures across jobs.  While a breaker
  on a degradable stage (symbolic replay, solver) is open, new jobs
  are forced into black-box-only scanning; one probe job per half-open
  window runs the full pipeline to test recovery.  Forced-black-box
  verdicts are *not* persisted: the store must never serve a weaker
  verdict for a scan key that promises the full pipeline.
* **storage integrity** — every store access routes through a healing
  wrapper: a typed :class:`StoreCorruption` (checksum mismatch or a
  malformed SQLite image) quarantines the corrupt database file aside
  and rebuilds a fresh store from the journal's verdict records.
  Budget exhaustion surfaces as typed disk backpressure
  (``QueueFull(kind="disk")``), never a crash.
* **chaos-ready chokepoints** — the worker loop, the store's disk
  guard and the journal writes all pass deterministic fault-injection
  chokepoints, so ``wasai chaos`` can rehearse every healing path
  against a live daemon.

Failure containment reuses the resilience policy end to end:
``run_campaign_task`` retries/degrades *inside* the job, and the
service retries whole failed jobs up to ``policy.max_retries`` before
benching the scan key after ``policy.quarantine_after`` failures.

Graceful drain checkpoints still-queued jobs into the JSONL journal;
:meth:`resume_from_journal` replays them exactly once (claim
tombstones make double replay impossible) and then compacts the
journal so it cannot grow without bound across daemon generations.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path

from ..eosio.abi import Abi
from ..metrics import ThroughputStats
from ..parallel.campaigns import CampaignTask, run_campaign_task
from ..resilience import (CampaignJournal, MalformedModule, Quarantine,
                          ResiliencePolicy, WorkerKill,
                          campaign_task_key)
from ..resilience.faultinject import inject
from ..wasm.hardening import load_untrusted_module
from .health import (BLACKBOX_GATED_STAGES, BREAKER_STAGES,
                     BreakerBoard)
from .integrity import StoreBudgetExceeded, StoreCorruption
from .overload import OverloadController
from .queue import Job, JobQueue, QueueFull
from .store import ArtifactStore
from .supervisor import WorkerRecord, WorkerSupervisor

__all__ = ["ScanService", "ScanServiceConfig", "Submission",
           "NodePartitioned", "DEFAULT_SCAN_CONFIG"]


class NodePartitioned(Exception):
    """This node believes it is on the minority side of a network
    partition: it refuses writes (new submissions) so a split brain
    can never produce two authoritative verdict histories, and serves
    reads marked ``stale`` until the partition heals and the journal
    replay catches it back up."""

    def __init__(self, message: str, *, retry_after_s: float = 5.0):
        super().__init__(message)
        self.retry_after_s = retry_after_s

DEFAULT_SCAN_CONFIG = {
    "tool": "wasai",
    "timeout_ms": 30_000.0,
    "rng_seed": 1,
    "address_pool": False,
    "divergence_check": True,
    # Enabled oracle families (any repro.semoracle.resolve_oracles
    # spec).  None = the paper's five; keeps scan keys byte-compatible
    # with pre-semantic stores.
    "oracles": None,
}


@dataclass(frozen=True)
class ScanServiceConfig:
    """Operator knobs for one daemon instance."""

    workers: int = 2
    max_depth: int = 64          # queued-job bound (backpressure)
    max_inflight: int | None = None  # queued+running bound; None = auto
    poll_s: float = 0.2          # worker queue poll interval
    default_timeout_ms: float = 30_000.0
    # -- self-healing knobs ------------------------------------------------
    job_ttl_s: float | None = None       # default per-job queue TTL
    promote_after_s: float | None = None  # anti-starvation promotion age
    task_deadline_s: float = 300.0       # claim age before "hung"
    watchdog_poll_s: float = 0.25
    max_restarts: int = 8                # per restart_window_s, then storm
    restart_window_s: float = 60.0
    restart_backoff_s: float = 0.05
    breaker_threshold: int = 3           # consecutive failures to trip
    breaker_cooldown_s: float = 30.0     # base open->half_open cooldown
    breaker_max_cooldown_s: float = 300.0
    store_max_bytes: int | None = None   # disk budget (typed shed)
    # -- trace IR / re-verdict knobs ---------------------------------------
    capture_traces: bool = False         # persist trace-IR packs
    drift_audit_s: float | None = None   # drift auditor cadence; None = off
    drift_audit_sample: int = 4          # traces replayed per audit round
    # -- semantic oracle knobs ---------------------------------------------
    oracles: "tuple | str | None" = None  # default family set for jobs
    # -- overload / brownout knobs -----------------------------------------
    # Job-latency SLO the AIMD controller defends; None = 30 s.  While
    # the observed p95 breaches it the effective inflight budget and
    # queue depth shrink (and recover additively once it is met again).
    target_p95_s: float | None = None
    min_inflight: int = 1                # AIMD floor
    # Housekeeping cadence: drives the idle-queue TTL/deadline sweep
    # and the controller's AIMD tick.  None disables the thread (tests
    # call housekeeping_once() by hand).
    housekeeping_s: float | None = 0.25
    overload_window_s: float = 60.0      # latency-sample horizon
    adjust_interval_s: float = 1.0       # min spacing of AIMD steps

    def inflight_budget(self) -> int:
        if self.max_inflight is not None:
            return self.max_inflight
        return self.max_depth + self.workers


@dataclass
class Submission:
    """What admission hands back: the job plus how it was satisfied."""

    job: Job
    # "queued" | "cached" | "coalesced" | "replayed" (brownout
    # replay-serve from a stored trace pack) | "deadline_exceeded"
    # (the caller's deadline had already passed at admission)
    outcome: str

    @property
    def cached(self) -> bool:
        return self.outcome == "cached"


class ScanService:
    """A long-lived scan scheduler over the store + queue + workers."""

    def __init__(self, store: "ArtifactStore | str" = ":memory:",
                 config: ScanServiceConfig | None = None,
                 policy: ResiliencePolicy | None = None,
                 journal: "CampaignJournal | str | None" = None,
                 ingest_budget=None):
        self.config = config or ScanServiceConfig()
        self.store = (store if isinstance(store, ArtifactStore)
                      else ArtifactStore(
                          store, max_bytes=self.config.store_max_bytes))
        self.policy = policy or ResiliencePolicy()
        if isinstance(journal, CampaignJournal) or journal is None:
            self.journal = journal
        else:
            self.journal = CampaignJournal(journal)
        self.ingest_budget = ingest_budget
        self.queue = JobQueue(max_depth=self.config.max_depth,
                              promote_after_s=self.config.promote_after_s,
                              on_expired=self._job_expired)
        self.quarantine = Quarantine(self.policy.quarantine_after)
        self.breakers = BreakerBoard(
            threshold=self.config.breaker_threshold,
            cooldown_s=self.config.breaker_cooldown_s,
            max_cooldown_s=self.config.breaker_max_cooldown_s)
        self.supervisor: WorkerSupervisor | None = None
        self.perf = ThroughputStats(jobs=self.config.workers)
        self.overload = OverloadController(
            self.config.inflight_budget(), self.config.max_depth,
            target_p95_s=(self.config.target_p95_s
                          if self.config.target_p95_s is not None
                          else 30.0),
            min_inflight=self.config.min_inflight,
            latency_window_s=self.config.overload_window_s,
            adjust_interval_s=self.config.adjust_interval_s)
        self.started_s = time.time()

        self._lock = threading.RLock()
        self._heal_lock = threading.Lock()     # store recovery critical section
        self._journal_lock = threading.Lock()  # append/compact exclusion
        self._jobs: dict[str, Job] = {}
        self._inflight: dict[str, Job] = {}   # scan_key -> live job
        self._running_jobs: set[str] = set()  # job ids claimed by workers
        self._submissions = 0
        self._cache_hits = 0
        self._coalesce_hits = 0
        self._admission_rejected = 0
        self._completed = 0
        self._failed = 0
        self._quarantined = 0
        self._expired = 0
        self._deadline_exceeded = 0
        self._replay_served = 0       # brownout replay-serve hits
        self._browned_out = 0         # jobs run with a shrunk budget
        self._forced_blackbox = 0
        self._store_recoveries = 0
        self._steals = 0              # jobs donated to fleet peers
        self._replica_applied = 0     # verdicts applied from peers
        self._storm = False
        self._accepting = True
        self._draining = False
        self._dead = False            # chaos kill(): node is gone
        self._partitioned = False
        self._partition_reason: str | None = None
        # -- housekeeping (sweeps + AIMD tick) ---------------------------
        self._housekeeper: threading.Thread | None = None
        self._housekeeper_stop = threading.Event()
        # -- trace IR / re-verdict state --------------------------------
        self._auditor: threading.Thread | None = None
        self._auditor_stop = threading.Event()
        self._audit_cursor = 0
        self._drift_audits = 0
        self._drift_incidents: list[dict] = []  # bounded, newest-last

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        if self.supervisor is not None:
            return
        cfg = self.config
        self.supervisor = WorkerSupervisor(
            self._worker_main, cfg.workers,
            task_deadline_s=cfg.task_deadline_s,
            watchdog_poll_s=cfg.watchdog_poll_s,
            max_restarts=cfg.max_restarts,
            restart_window_s=cfg.restart_window_s,
            restart_backoff_s=cfg.restart_backoff_s,
            on_reap=self._on_reap,
            on_storm=self._on_storm)
        self.supervisor.start()
        if cfg.drift_audit_s is not None and self._auditor is None:
            self._auditor_stop.clear()
            self._auditor = threading.Thread(
                target=self._auditor_main, name="drift-auditor",
                daemon=True)
            self._auditor.start()
        if cfg.housekeeping_s is not None and self._housekeeper is None:
            self._housekeeper_stop.clear()
            self._housekeeper = threading.Thread(
                target=self._housekeeper_main, name="housekeeper",
                daemon=True)
            self._housekeeper.start()

    def drain(self, wait_s: float = 30.0) -> int:
        """Graceful shutdown: refuse new work, finish running jobs,
        checkpoint whatever is still queued.  Returns the number of
        jobs checkpointed to the journal."""
        with self._lock:
            self._accepting = False
            self._draining = True
        self._auditor_stop.set()
        self._housekeeper_stop.set()
        if self._auditor is not None:
            self._auditor.join(wait_s)
            self._auditor = None
        if self._housekeeper is not None:
            self._housekeeper.join(wait_s)
            self._housekeeper = None
        if self.supervisor is not None:
            self.supervisor.stop()
            self.supervisor.join(wait_s)
        checkpointed = 0
        now = time.time()
        for job in self.queue.drain():
            if job.terminal:
                continue
            if job.deadline_remaining_s(now) <= 0.0:
                # Checkpointing this job would resurrect work whose
                # caller deadline already passed: finalize the typed
                # terminal doc instead, so resume cannot re-run it.
                with self._lock:
                    if not job.terminal:
                        self._deadline_locked(
                            job, "caller deadline passed during drain")
                continue
            if self._checkpoint(job):
                checkpointed += 1
        return checkpointed

    def stop(self, wait_s: float = 30.0) -> int:
        checkpointed = self.drain(wait_s)
        self.store.close()
        return checkpointed

    def kill(self) -> None:
        """Abrupt chaos-style death: no drain, no checkpoint, no
        store close.  Worker loops exit at their next poll; a worker
        mid-campaign becomes a zombie whose result is never consulted
        because the node is dead to its fleet.  The in-proc backend
        uses this to rehearse node-kill without a real process."""
        with self._lock:
            self._accepting = False
            self._draining = True
            self._dead = True
        if self.supervisor is not None:
            self.supervisor.abandon_all()

    @property
    def dead(self) -> bool:
        return self._dead

    # -- partition tolerance -----------------------------------------------
    def set_partitioned(self, partitioned: bool,
                        reason: str | None = None) -> None:
        """Enter/leave minority-partition mode.  While set, new
        submissions are refused with the typed
        :class:`NodePartitioned` and every health/stats read carries
        ``stale: true`` — the node keeps serving what it already
        knows, clearly labelled, but never diverges the write
        history.  Healing is the fleet's journal replay, not a local
        state change, so leaving the mode is just clearing the flag."""
        with self._lock:
            self._partitioned = partitioned
            self._partition_reason = reason if partitioned else None

    @property
    def partitioned(self) -> bool:
        with self._lock:
            return self._partitioned

    # -- storage self-healing ----------------------------------------------
    def _healed(self, op, default=None):
        """Run one store operation; on typed corruption, quarantine and
        rebuild the store, then retry once.  ``op`` must re-resolve
        ``self.store`` itself (the recovery swaps the instance)."""
        try:
            return op()
        except StoreCorruption as exc:
            self._recover_store(str(exc))
            try:
                return op()
            except StoreCorruption:
                return default

    def _recover_store(self, reason: str) -> int:
        """Quarantine the corrupt database file aside and rebuild a
        fresh store from the journal's verdict records.  Returns how
        many verdicts were restored."""
        # Lock order: the service lock may already be held by this
        # thread (recovery can fire from inside admission); the heal
        # lock must therefore never wrap an acquisition of self._lock.
        with self._lock:
            self._store_recoveries += 1
        with self._heal_lock:
            self.perf.integrity_repairs += 1
            old = self.store
            path = old.path
            try:
                old.close()
            except Exception:  # noqa: BLE001 - conn may be unusable
                pass
            if path != ":memory:":
                target = None
                for index in range(1000):
                    candidate = Path(f"{path}.corrupt-{index}")
                    if not candidate.exists():
                        target = candidate
                        break
                try:
                    if target is not None:
                        os.replace(path, target)
                except OSError:
                    pass
                for suffix in ("-wal", "-shm"):
                    # Sidecar files would resurrect the corrupt pages.
                    try:
                        os.remove(path + suffix)
                    except OSError:
                        pass
            self.store = ArtifactStore(path, max_bytes=old.max_bytes)
            return self._rebuild_store_from_journal()

    def _rebuild_store_from_journal(self) -> int:
        """Replay every journaled verdict into the (fresh) store."""
        if self.journal is None:
            return 0
        try:
            entries = self.journal.load()
        except OSError:
            return 0
        restored = 0
        for key, doc in entries.items():
            inner = doc.get("result")
            if not isinstance(inner, dict):
                continue
            verdict = inner.get("verdict")
            if not isinstance(verdict, dict):
                continue
            try:
                self.store.put_verdict(
                    key, verdict.get("module_hash", ""),
                    verdict.get("config", {}),
                    verdict.get("result", {}))
                restored += 1
            except (StoreBudgetExceeded, StoreCorruption):
                break
        return restored

    def integrity_sweep(self, repair: bool = True) -> dict:
        """Recompute every stored row's checksum; with ``repair`` the
        store is quarantined-and-rebuilt when anything is corrupt."""
        try:
            tables = self.store.verify_integrity()
        except StoreCorruption as exc:
            if not repair:
                raise
            self._recover_store(f"integrity sweep: {exc}")
            return {"tables": self.store.verify_integrity(),
                    "corrupt_rows": 0, "repaired": True}
        corrupt = sum(len(entry["corrupt"])
                      for entry in tables.values())
        repaired = False
        if corrupt and repair:
            self._recover_store(
                f"integrity sweep found {corrupt} corrupt rows")
            tables = self.store.verify_integrity()
            corrupt = sum(len(entry["corrupt"])
                          for entry in tables.values())
            repaired = True
        return {"tables": tables, "corrupt_rows": corrupt,
                "repaired": repaired}

    def _journal_record(self, key: str, doc: dict) -> bool:
        if self.journal is None:
            return False
        with self._journal_lock:
            self.journal.record(key, doc)
        return True

    def compact_journal(self) -> int:
        """Drop journal lines superseded by later writes (safe to run
        on a live service; appends are excluded while compacting)."""
        if self.journal is None:
            return 0
        with self._journal_lock:
            removed = self.journal.compact()
        self.perf.journal_compactions += 1
        return removed

    # -- admission ---------------------------------------------------------
    def submit_bytes(self, data: bytes, abi_json: "str | dict",
                     config: dict | None = None, client: str = "anon",
                     priority: int = 0,
                     ttl_s: float | None = None,
                     deadline_epoch_s: float | None = None) -> Submission:
        """Admit one scan request from raw (untrusted) contract bytes.

        Raises :class:`~repro.resilience.MalformedModule` when the
        bytes fail sandboxed ingestion (the hostile upload never
        reaches a worker) and :class:`QueueFull` when the queue depth,
        the in-flight budget, the store's disk budget or the brownout
        ladder refuses it.  ``deadline_epoch_s`` is the caller's
        absolute wall-clock deadline: an already-expired one returns a
        terminal ``deadline_exceeded`` job immediately (cache hits are
        still served — they cost nothing), and a live one rides the
        job end-to-end so every later hand-off re-checks it.
        """
        with self._lock:
            if self._partitioned:
                raise NodePartitioned(
                    "node is on the minority side of a network "
                    f"partition ({self._partition_reason or 'unknown'});"
                    " writes refused until the partition heals")
            if not self._accepting:
                self.perf.record_shed("draining")
                raise QueueFull("service is draining",
                                depth=self.queue.depth,
                                limit=self.config.max_depth,
                                kind="draining",
                                retry_after_s=self._retry_after(
                                    floor=30.0))
        # Sandboxed ingestion *before* admission: a hostile module is
        # rejected here with a typed MalformedModule diagnostic.
        try:
            module = load_untrusted_module(data,
                                           budget=self.ingest_budget)
        except MalformedModule:
            with self._lock:
                self._admission_rejected += 1
            raise
        if isinstance(abi_json, dict):
            import json as _json
            abi_json = _json.dumps(abi_json)
        abi = Abi.from_json(abi_json)
        merged = dict(DEFAULT_SCAN_CONFIG,
                      timeout_ms=self.config.default_timeout_ms,
                      oracles=self.config.oracles)
        merged.update(config or {})
        from ..engine.deploy import module_content_hash
        module_hash = module_content_hash(module)
        task = CampaignTask(
            module, abi, tools=(merged["tool"],),
            timeout_ms=float(merged["timeout_ms"]),
            rng_seed=int(merged["rng_seed"]),
            address_pool=bool(merged["address_pool"]),
            policy=self.policy,
            sample_key=f"{client}:{module_hash[:12]}",
            divergence_check=bool(merged["divergence_check"]),
            capture_traces=self.config.capture_traces,
            oracles=merged["oracles"],
            deadline_epoch_s=deadline_epoch_s)
        scan_key = campaign_task_key(task)
        stored_config = {key: merged[key] for key in DEFAULT_SCAN_CONFIG}
        if stored_config["oracles"] is not None:
            from ..semoracle.registry import resolve_oracles
            stored_config["oracles"] = list(
                resolve_oracles(stored_config["oracles"]))
        # Persist the upload before admission decisions: the journal's
        # drain checkpoints reference modules by hash, so the bytes
        # must already be durable by the time a job can be queued.  A
        # blown disk budget is typed backpressure, not a crash.
        try:
            self._healed(lambda: self.store.put_module(module_hash,
                                                       data))
        except StoreBudgetExceeded as exc:
            with self._lock:
                self.queue.shed += 1
                self.perf.record_shed("disk")
            raise QueueFull(
                f"store disk budget exhausted: {exc}",
                depth=self.queue.depth, limit=self.config.max_depth,
                kind="disk",
                retry_after_s=self._retry_after(floor=5.0)) from exc

        with self._lock:
            self._submissions += 1
            # Level 1: persistent store hit — serve the verdict now.
            result_doc = self._healed(
                lambda: self.store.get_verdict(scan_key))
            if result_doc is not None:
                self._cache_hits += 1
                job = Job(job_id=uuid.uuid4().hex[:12], client=client,
                          scan_key=scan_key, module_hash=module_hash,
                          config=stored_config, priority=priority,
                          state="done", outcome="cached",
                          submitted_s=time.time(),
                          result_doc=result_doc)
                job.finished_s = job.submitted_s
                self._jobs[job.job_id] = job
                return Submission(job, "cached")
            # Level 2: single-flight — attach to the live twin.
            twin = self._inflight.get(scan_key)
            if twin is not None and not twin.terminal:
                self._coalesce_hits += 1
                twin.waiters += 1
                return Submission(twin, "coalesced")
            # Caller deadline already passed: a fresh campaign budget
            # must never be spent on an answer nobody is waiting for.
            # Terminal typed doc, not a 429 — there is nothing to
            # retry, the caller's own clock ran out.
            now = time.time()
            if deadline_epoch_s is not None and now >= deadline_epoch_s:
                self.perf.record_shed("deadline")
                self._deadline_exceeded += 1
                job = Job(job_id=uuid.uuid4().hex[:12], client=client,
                          scan_key=scan_key, module_hash=module_hash,
                          config=stored_config, priority=priority,
                          state="deadline_exceeded",
                          outcome="deadline_exceeded",
                          submitted_s=now,
                          deadline_epoch_s=deadline_epoch_s,
                          error="caller deadline passed before "
                                "admission")
                job.finished_s = now
                self._jobs[job.job_id] = job
                return Submission(job, "deadline_exceeded")
            # Brownout ladder: under saturation, a stored trace pack
            # can answer by pure oracle replay — zero fuzzing — before
            # we consider refusing outright.
            level = self.overload.pressure
            if level in ("saturated", "shedding"):
                replay_doc = self._serve_from_replay_locked(scan_key)
                if replay_doc is not None:
                    self._replay_served += 1
                    job = Job(job_id=uuid.uuid4().hex[:12],
                              client=client, scan_key=scan_key,
                              module_hash=module_hash,
                              config=stored_config, priority=priority,
                              state="done", outcome="replayed",
                              submitted_s=now,
                              deadline_epoch_s=deadline_epoch_s,
                              result_doc=replay_doc)
                    job.finished_s = now
                    self._jobs[job.job_id] = job
                    return Submission(job, "replayed")
            if level == "shedding":
                self.queue.shed += 1
                self.perf.record_shed("brownout")
                raise QueueFull(
                    "brownout: pressure level 'shedding' — new "
                    "campaigns refused until the backlog drains",
                    depth=self.queue.depth,
                    limit=self.overload.effective_depth(),
                    kind="brownout",
                    retry_after_s=self._retry_after())
            cost = OverloadController.admission_cost(
                len(data), len(stored_config["oracles"] or ()) or 5)
            if self.overload.should_shed_cost(cost, priority):
                self.queue.shed += 1
                self.perf.record_shed("brownout")
                raise QueueFull(
                    f"brownout: campaign cost {cost:.1f} exceeds the "
                    f"priority-{priority} allowance at pressure level "
                    f"'{level}'",
                    depth=self.queue.depth,
                    limit=self.overload.effective_depth(),
                    kind="brownout",
                    retry_after_s=self._retry_after())
            # Admission control: adaptive in-flight budget + adaptive
            # queue depth (both AIMD-sized; never above the static
            # bounds, which remain the hard backstop).
            inflight = self.queue.depth + len(self._running_jobs)
            budget = self.overload.effective_inflight()
            if inflight >= budget:
                self.queue.shed += 1
                self.perf.record_shed("inflight")
                raise QueueFull(
                    f"in-flight budget {budget} "
                    f"exhausted ({inflight} admitted)",
                    depth=inflight,
                    limit=budget,
                    kind="inflight",
                    retry_after_s=self._retry_after())
            depth_bound = self.overload.effective_depth()
            if self.queue.depth >= depth_bound:
                self.queue.shed += 1
                self.perf.record_shed("queue")
                raise QueueFull(
                    f"queue depth {self.queue.depth} at effective "
                    f"bound {depth_bound} (pressure '{level}')",
                    depth=self.queue.depth, limit=depth_bound,
                    kind="queue",
                    retry_after_s=self._retry_after())
            job = Job(job_id=uuid.uuid4().hex[:12], client=client,
                      scan_key=scan_key, module_hash=module_hash,
                      config=stored_config, task=task,
                      priority=priority, submitted_s=now,
                      ttl_s=(ttl_s if ttl_s is not None
                             else self.config.job_ttl_s),
                      deadline_epoch_s=deadline_epoch_s)
            self.queue.put(job)          # may raise QueueFull (typed)
            self._jobs[job.job_id] = job
            self._inflight[scan_key] = job
        return Submission(job, "queued")

    def _serve_from_replay_locked(self, scan_key: str) -> "dict | None":
        """Brownout replay-serve: when a stored trace pack exists for
        this scan key (but no cached verdict — that was checked
        first), re-derive the verdict by pure oracle replay.  Costs
        milliseconds, no fuzzing, and carries honest ``replay``
        provenance stamped with the pressure level that triggered it.
        Never persisted — the store only holds verdicts produced by
        the path the scan key promises."""
        row = self._healed(lambda: self.store.get_trace(scan_key))
        if row is None:
            return None
        from ..resilience.errors import TraceCorruption
        from ..resilience.journal import _scan_to_doc
        from ..scanner.oracles import ORACLE_VERSION
        from ..semoracle.registry import (InsufficientSurface,
                                          resolve_oracles)
        from ..traceir.pack import decode_pack, replay_scan
        try:
            pack = decode_pack(row["blob"])
            scan = replay_scan(pack, oracles=self.config.oracles)
        except (TraceCorruption, InsufficientSurface):
            return None     # the reverdict sweep owns cleanup
        return {
            "scans": {row["tool"]: _scan_to_doc(scan)},
            "provenance": {
                "oracle_version": ORACLE_VERSION,
                "traceir_version": row["traceir_version"],
                "oracles": list(resolve_oracles(self.config.oracles)),
                "source": "replay",
                "pressure": self.overload.pressure,
            },
        }

    def job(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def submit_reverdict(self, oracle_version: int | None = None,
                         client: str = "reverdict",
                         priority: int = 0,
                         oracles=None) -> Submission:
        """Queue a fleet-wide re-verdict sweep as a first-class job.

        The sweep replays the scanner oracles over every stored
        trace-IR pack (see :mod:`repro.service.reverdict`) — zero
        re-fuzzing — and rewrites the affected verdicts with
        ``source: "replay"`` provenance.  Runs under the same worker
        supervision, claim protocol and admission gates as scan jobs.
        """
        with self._lock:
            if self._partitioned:
                raise NodePartitioned(
                    "node is on the minority side of a network "
                    f"partition ({self._partition_reason or 'unknown'});"
                    " writes refused until the partition heals")
            if not self._accepting:
                raise QueueFull("service is draining",
                                depth=self.queue.depth,
                                limit=self.config.max_depth,
                                kind="draining", retry_after_s=30.0)
            self._submissions += 1
            job_id = uuid.uuid4().hex[:12]
            job = Job(job_id=job_id, client=client,
                      scan_key=f"reverdict:{job_id}", module_hash="",
                      config={"kind": "reverdict", "tool": "wasai",
                              "oracle_version": oracle_version,
                              "oracles": (oracles if oracles is not None
                                          else self.config.oracles)},
                      priority=priority, submitted_s=time.time())
            self.queue.put(job)          # may raise QueueFull (typed)
            self._jobs[job.job_id] = job
            self._inflight[job.scan_key] = job
        return Submission(job, "queued")

    # -- workers -----------------------------------------------------------
    def _worker_main(self, record: WorkerRecord) -> None:
        """One supervised worker's loop (``record`` is its identity).

        The claim protocol: the job's ``claim`` field is stamped with
        this worker's token under the service lock *before* the
        campaign runs, and every completion path re-checks it.  When
        the watchdog revokes the claim (worker declared hung) the
        zombie's eventual result fails the check and is discarded —
        the requeued job is the only one that can complete.
        """
        while True:
            if self._draining or record.abandoned:
                return
            record.beat()
            job = self.queue.get(timeout=self.config.poll_s)
            if job is None:
                continue
            with self._lock:
                if self._draining or record.abandoned:
                    self.queue.put(job, force=True)  # back for drain
                    return
                if job.deadline_remaining_s() <= 0.0 \
                        and not job.terminal:
                    # Expired while queued (the sweep may not have
                    # seen it yet): terminal typed doc, no claim, no
                    # campaign budget spent.
                    self._deadline_locked(
                        job, "caller deadline passed while queued")
                    continue
                record.claim_job(job)
                job.claim = record.token
                job.state = "running"
                job.started_s = time.time()
                self._running_jobs.add(job.job_id)
                # Breaker gate: while a degradable-stage breaker is
                # open, this job runs black-box-only (one probe per
                # half-open window runs the full pipeline instead).
                forced = self.breakers.force_blackbox()
                if job.task is not None:
                    job.task.blackbox = forced
                if forced:
                    self._forced_blackbox += 1
                # Brownout ladder: under pressure, shrink the fuzzing
                # budget (elevated: x0.5, saturated+: x0.25 and force
                # black-box — PR 5's degraded labeling applies).  The
                # base budget is restored from the stored config each
                # dispatch so a watchdog re-queue under *recovered*
                # pressure runs at full size again.
                level = self.overload.pressure
                job.brownout = None
                if job.task is not None:
                    job.task.timeout_ms = float(
                        job.config.get("timeout_ms",
                                       job.task.timeout_ms))
                    if level != "normal":
                        job.brownout = level
                        self._browned_out += 1
                        job.task.timeout_ms *= \
                            self.overload.timeout_scale()
                        if level in ("saturated", "shedding"):
                            job.task.blackbox = True
            # The chaos chokepoint sits AFTER the claim on purpose: an
            # injected kill/hang leaves a claimed job behind, which is
            # exactly the mess the watchdog must be able to heal.
            inject("worker")
            self._run_job(job, record.token)
            record.release_job()

    def _run_job(self, job: Job, token: str) -> None:
        if job.config.get("kind") == "reverdict":
            self._run_reverdict_job(job, token)
            return
        tool = job.config["tool"]
        forced_blackbox = bool(job.task is not None
                               and job.task.blackbox)
        try:
            result = run_campaign_task(job.task)
        except WorkerKill:
            raise  # real worker death: the watchdog heals it
        except BaseException as exc:  # noqa: BLE001 - thread must survive
            self._job_failed(job, token,
                             f"{type(exc).__name__}: {exc}")
            return
        with self._lock:
            self._record_stage_outcomes(
                result, completed=tool in result.scans,
                forced_blackbox=forced_blackbox)
        doc_error = result.errors.get(tool)
        if tool not in result.scans:
            if (doc_error or {}).get("stage") == "deadline":
                # The caller's wall-clock budget ran out mid-campaign
                # (or before the tool started): terminal typed doc,
                # never the retry/quarantine path — there is nothing
                # to heal and nobody left waiting.
                self._job_deadline(
                    job, token,
                    (doc_error or {}).get("message",
                                          "caller deadline passed"))
                return
            message = (doc_error or {}).get("message", "campaign failed")
            self._job_failed(job, token, message)
            return
        from ..resilience.journal import campaign_result_to_doc
        result_doc = campaign_result_to_doc(result)
        # Trace-IR packs travel separately: the store's content-
        # addressed ``traces`` table holds the blob; the verdict doc
        # (and the journal line) must not carry a base64 twin of it.
        result_doc.pop("traces", None)
        if job.brownout is not None:
            # Honest provenance: a verdict produced under brownout
            # says so.  At pressure "normal" the key is absent, so
            # unpressured verdicts stay byte-identical to the seed's.
            provenance = dict(result_doc.get("provenance") or {})
            provenance["pressure"] = job.brownout
            result_doc["provenance"] = provenance
        with self._lock:
            if job.claim != token or job.terminal:
                return  # claim revoked: the requeued twin owns the job
        # A browned-out run (shrunk budget and/or forced black-box) is
        # ephemeral exactly like a breaker-forced one: it answers this
        # caller but must never become the cached verdict for the key.
        if not forced_blackbox and job.brownout is None:
            # Persist (and journal, for store rebuilds) only full-
            # pipeline verdicts: a breaker-degraded result must never
            # become the cached answer for this scan key.
            try:
                self._healed(lambda: self.store.put_verdict(
                    job.scan_key, job.module_hash, job.config,
                    result_doc))
                if result.coverage:
                    self._healed(lambda: self.store.put_coverage(
                        job.scan_key, result.coverage))
                if self.config.capture_traces and result.traces:
                    for trace_tool, blob in result.traces.items():
                        self._healed(
                            lambda t=trace_tool, b=blob:
                            self.store.put_trace(job.scan_key,
                                                 job.module_hash, t, b))
                        self.perf.traces_stored += 1
            except StoreBudgetExceeded:
                pass  # verdict still served from memory this once
            try:
                self._journal_record(job.scan_key, {"verdict": {
                    "module_hash": job.module_hash,
                    "config": dict(job.config),
                    "result": result_doc,
                }})
            except OSError:
                pass  # journal write failed; store still has it
        with self._lock:
            if job.claim != token or job.terminal:
                return
            job.claim = None
            self._running_jobs.discard(job.job_id)
            job.result_doc = result_doc
            job.state = "done"
            job.finished_s = time.time()
            self._completed += 1
            self._inflight.pop(job.scan_key, None)
            self._record_latency(job, result)
            self.overload.observe_completion()
            if job.started_s:
                self.overload.observe_latency(
                    job.finished_s - job.started_s)

    def _run_reverdict_job(self, job: Job, token: str) -> None:
        """Worker-side execution of one queued re-verdict sweep."""
        try:
            report = self.reverdict(
                oracle_version=job.config.get("oracle_version"),
                oracles=job.config.get("oracles"))
        except WorkerKill:
            raise  # real worker death: the watchdog heals it
        except BaseException as exc:  # noqa: BLE001 - thread must survive
            self._job_failed(job, token,
                             f"{type(exc).__name__}: {exc}")
            return
        with self._lock:
            if job.claim != token or job.terminal:
                return  # claim revoked: the requeued twin owns the job
            job.claim = None
            self._running_jobs.discard(job.job_id)
            job.result_doc = report.to_doc()
            job.state = "done"
            job.finished_s = time.time()
            self._completed += 1
            self._inflight.pop(job.scan_key, None)

    # -- trace IR: re-verdict + drift audit ---------------------------------
    def reverdict(self, oracle_version: int | None = None,
                  extra_detectors=(), oracles=None):
        """Replay the oracles over every stored trace and rewrite the
        verdicts (synchronous; :meth:`submit_reverdict` queues it).

        ``oracles`` selects the enabled families; None falls back to
        the service's configured default set.  A stored pack that
        cannot satisfy an enabled family's surface is counted
        ``insufficient`` and re-queued for a fresh scan, never
        reported as drift.
        """
        from .reverdict import ReverdictReport, reverdict_store
        if oracles is None:
            oracles = self.config.oracles
        report = self._healed(
            lambda: reverdict_store(self.store,
                                    oracle_version=oracle_version,
                                    extra_detectors=extra_detectors,
                                    oracles=oracles))
        if report is None:       # store unrecoverable: empty sweep
            from ..scanner.oracles import ORACLE_VERSION
            report = ReverdictReport(
                oracle_version=(ORACLE_VERSION if oracle_version is None
                                else oracle_version))
        self._absorb_reverdict(report)
        return report

    def audit_drift(self, sample: int | None = None):
        """One drift-audit round: replay a rotating sample of stored
        traces and compare against their verdicts without rewriting."""
        from .reverdict import ReverdictReport, audit_traces
        if sample is None:
            sample = self.config.drift_audit_sample
        out = self._healed(
            lambda: audit_traces(self.store, sample=sample,
                                 cursor=self._audit_cursor,
                                 oracles=self.config.oracles))
        if out is None:          # store unrecoverable: empty round
            from ..scanner.oracles import ORACLE_VERSION
            report = ReverdictReport(oracle_version=ORACLE_VERSION)
        else:
            report, self._audit_cursor = out
        self._absorb_reverdict(report, audit=True)
        return report

    def _absorb_reverdict(self, report, *, audit: bool = False) -> None:
        """Fold one sweep's outcome into counters + incident ledger."""
        with self._lock:
            if audit:
                self._drift_audits += 1
            self.perf.reverdicts += report.replayed
            self.perf.trace_corruptions += report.corrupt
            self.perf.verdict_drift += report.drift
            self.perf.insufficient_surface += getattr(
                report, "insufficient", 0)
            self._drift_incidents.extend(report.incidents)
            del self._drift_incidents[:-32]   # bounded, newest kept
        for incident in report.incidents:
            detail = incident.get("detail") or incident.get("tool", "")
            self.quarantine.record_failure(
                incident["scan_key"], f"{incident['kind']}: {detail}")

    def _auditor_main(self) -> None:
        """Background drift auditor: one sampled round per cadence."""
        cadence = self.config.drift_audit_s or 1.0
        while not self._auditor_stop.wait(cadence):
            try:
                self.audit_drift()
            except Exception:  # noqa: BLE001 - auditor outlives bad rounds
                continue

    # -- housekeeping: sweeps + adaptive admission --------------------------
    def housekeeping_once(self) -> dict:
        """One housekeeping tick: expire stale queued jobs even while
        no worker is polling (the TTL sweep used to run only inside
        ``get``), then feed current load to the overload controller's
        AIMD step and publish the refreshed pressure level."""
        swept = self.queue.sweep_expired()
        with self._lock:
            level = self.overload.update(self.queue.depth,
                                         len(self._running_jobs))
            self.perf.pressure = level
        return {"swept": swept, "pressure": level}

    def _housekeeper_main(self) -> None:
        cadence = self.config.housekeeping_s or 0.25
        while not self._housekeeper_stop.wait(cadence):
            try:
                self.housekeeping_once()
            except Exception:  # noqa: BLE001 - must outlive bad ticks
                continue

    def _retry_after(self, floor: float = 0.0) -> float:
        """Measured Retry-After hint for a shed at current backlog."""
        return max(floor, self.overload.retry_after_s(self.queue.depth))

    def _job_failed(self, job: Job, token: "str | None",
                    message: str) -> None:
        with self._lock:
            if token is not None and (job.claim != token
                                      or job.terminal):
                return  # claim revoked: failure already handled
            job.claim = None
            self._running_jobs.discard(job.job_id)
            self._fail_locked(job, message)

    def _job_deadline(self, job: Job, token: "str | None",
                      message: str) -> None:
        """Claim-checked wrapper around :meth:`_deadline_locked`."""
        with self._lock:
            if token is not None and (job.claim != token
                                      or job.terminal):
                return  # claim revoked: outcome already settled
            job.claim = None
            self._running_jobs.discard(job.job_id)
            self._deadline_locked(job, message)

    def _deadline_locked(self, job: Job, message: str) -> None:
        """Finalize one job whose caller deadline ran out (service
        lock held).  Terminal and typed — never the retry/quarantine
        path: the failure is the *caller's* clock, not the sample."""
        job.state = "deadline_exceeded"
        job.outcome = "deadline_exceeded"
        job.error = message
        job.finished_s = time.time()
        self._deadline_exceeded += 1
        self.perf.record_shed("deadline")
        if self._inflight.get(job.scan_key) is job:
            self._inflight.pop(job.scan_key, None)
        self.overload.observe_completion()

    def _fail_locked(self, job: Job, message: str) -> None:
        """Retry-or-quarantine one failed attempt (service lock held)."""
        job.attempts += 1
        job.error = message
        self.quarantine.record_failure(job.scan_key, message)
        if self.quarantine.is_quarantined(job.scan_key):
            job.state = "quarantined"
            job.finished_s = time.time()
            self._quarantined += 1
            self._inflight.pop(job.scan_key, None)
            self.overload.observe_completion()
            try:
                self._healed(lambda: self.store.put_quarantine(
                    job.scan_key, job.module_hash,
                    self.quarantine.quarantined().get(job.scan_key,
                                                      [])))
            except StoreBudgetExceeded:
                pass
            return
        if job.attempts <= self.policy.max_retries \
                and not self._draining:
            job.state = "queued"
            self.queue.put(job, force=True)  # containment re-queue
            return
        job.state = "failed"
        job.finished_s = time.time()
        self._failed += 1
        self._inflight.pop(job.scan_key, None)
        self.overload.observe_completion()

    # -- supervision callbacks ---------------------------------------------
    def _on_reap(self, record: WorkerRecord, reason: str) -> None:
        """The watchdog reaped ``record`` (died / hung): revoke its
        claim and requeue-or-quarantine the orphaned job exactly once."""
        job = record.job
        record.release_job()
        self.perf.worker_restarts += 1
        if job is None:
            return
        with self._lock:
            if job.claim != record.token or job.terminal:
                return  # completed (or already requeued) before the sweep
            job.claim = None
            self._running_jobs.discard(job.job_id)
            job.requeues += 1
            self._fail_locked(job, f"worker {record.token} {reason} "
                                   f"mid-campaign; job requeued")

    def _on_storm(self) -> None:
        """Too many worker restarts per window: something is
        systemically wrong — degrade to draining mode (stop accepting)
        instead of burning CPU in a crash loop."""
        with self._lock:
            self._storm = True
            self._accepting = False

    def _job_expired(self, job: Job) -> None:
        """Queue staleness callback (invoked outside the queue lock):
        either the caller's wall-clock deadline passed or the job's
        monotonic queue TTL ran out — the queue sweep polices both."""
        with self._lock:
            if job.terminal:
                return
            if job.deadline_remaining_s() <= 0.0:
                self._deadline_locked(
                    job, "caller deadline passed while queued")
                return
            job.state = "expired"
            job.error = (f"job exceeded its {job.ttl_s:g}s queue TTL "
                         "before a worker was free")
            job.finished_s = time.time()
            self._expired += 1
            if self._inflight.get(job.scan_key) is job:
                self._inflight.pop(job.scan_key, None)
            self.overload.observe_completion()

    def _record_stage_outcomes(self, result, *, completed: bool,
                               forced_blackbox: bool) -> None:
        """Feed per-stage outcomes of one campaign to the breaker
        board (service lock held).  A stage named in an error doc is a
        failure.  A *completed* campaign is a success for every other
        stage it exercised — with one carve-out: the black-box-gated
        stages (symbolic replay, solver) only count as successes when
        the campaign actually ran the full pipeline, i.e. it was
        neither breaker-forced into black-box mode nor internally
        degraded, so a degraded run can never close the very breaker
        that is protecting it."""
        failed_stages = set()
        for doc in result.errors.values():
            stage = doc.get("stage")
            if stage:
                failed_stages.add(stage)
        for stage in failed_stages:
            if self.breakers.record_failure(stage):
                self.perf.breaker_trips += 1
        if not completed:
            return
        ran_full = not forced_blackbox and not result.degraded
        for stage in BREAKER_STAGES:
            if stage in failed_stages:
                continue
            if stage in BLACKBOX_GATED_STAGES and not ran_full:
                continue
            if self.breakers.record_success(stage):
                self.perf.breaker_recoveries += 1

    def _record_latency(self, job: Job, result) -> None:
        if job.started_s and job.finished_s:
            self.perf.record_latency("job",
                                     job.finished_s - job.started_s)
        for stage, seconds in result.stage_seconds.items():
            self.perf.record_latency(stage, seconds)
        self.perf.campaigns += len(result.scans)
        self.perf.retries += result.retries
        self.perf.add_stage_seconds(result.stage_seconds)
        self.perf.add_cache_deltas(result.instr_cache_hits,
                                   result.instr_cache_misses,
                                   result.solver_cache_hits,
                                   result.solver_cache_misses,
                                   result.instr_disk_hits,
                                   result.instr_disk_misses,
                                   result.solver_disk_hits,
                                   result.solver_disk_misses,
                                   worker_id=result.worker_id or None)

    # -- checkpoint / resume ----------------------------------------------
    def _checkpoint(self, job: Job) -> bool:
        """Journal one still-queued job so ``--resume`` can replay it.
        The module bytes live in the store; the journal records the
        recipe (module hash + ABI + config + client)."""
        if self.journal is None:
            return False
        abi_json = job.task.abi.to_json() if job.task is not None else ""
        pending = {
            "module_hash": job.module_hash,
            "abi": abi_json,
            "config": dict(job.config),
            "client": job.client,
            "priority": job.priority,
        }
        if job.deadline_epoch_s is not None:
            # Absolute wall-clock survives the restart unchanged —
            # resume re-checks it, so an expired checkpoint is
            # tombstoned instead of resurrected.
            pending["deadline_epoch_s"] = job.deadline_epoch_s
        self._journal_record(job.scan_key, {"pending": pending})
        return True

    def resume_from_journal(self) -> int:
        """Resubmit every unclaimed pending job exactly once; returns
        how many were replayed.  A replayed key is immediately claimed
        with a tombstone line — the journal is append-only and
        last-wins, so a second resume (or a crash between replays)
        can never run the same checkpoint twice.  The journal is
        compacted afterwards so claim/verdict churn from previous
        daemon generations is dropped."""
        if self.journal is None:
            return 0
        replayed = 0
        for key, doc in self.journal.load().items():
            inner = doc.get("result")
            if not isinstance(inner, dict):
                continue
            pending = inner.get("pending")
            if not isinstance(pending, dict):
                continue  # claim tombstone / verdict / campaign result
            data = self._healed(lambda: self.store.get_module(
                pending.get("module_hash", "")))
            if data is None:
                self._journal_record(key, {"claimed": "module lost"})
                continue
            deadline = pending.get("deadline_epoch_s")
            if deadline is not None \
                    and time.time() >= float(deadline):
                # The caller's deadline passed while the daemon was
                # down: resurrecting the job would spend a campaign on
                # an answer nobody is waiting for.  Tombstone it.
                self._journal_record(key,
                                     {"claimed": "deadline_exceeded"})
                continue
            try:
                submission = self.submit_bytes(
                    data, pending.get("abi", "{}"),
                    config=pending.get("config"),
                    client=pending.get("client", "anon"),
                    priority=int(pending.get("priority", 0)),
                    deadline_epoch_s=(float(deadline)
                                      if deadline is not None
                                      else None))
            except QueueFull:
                continue  # stays pending for the next resume
            except MalformedModule:
                self._journal_record(key, {"claimed": "rejected"})
                continue
            self._journal_record(key,
                                 {"claimed": submission.job.job_id})
            replayed += 1
        try:
            self.compact_journal()
        except OSError:
            pass  # compaction is best-effort; the journal still works
        return replayed

    # -- fleet seam: work stealing -----------------------------------------
    def steal_unclaimed(self, max_jobs: int,
                        thief: str = "fleet") -> list[dict]:
        """Donate up to ``max_jobs`` *unclaimed* queue entries to a
        fleet peer; returns self-contained recipes the thief can
        resubmit (module bytes + ABI + config + client + priority).

        Only queued, unclaimed jobs are eligible — a claimed job left
        the queue when its worker took it, so stealing can never race
        an in-flight campaign.  Each stolen job is stamped with a
        thief claim token in the same ``owner#generation`` shape
        workers use: if the job ever reappears here (a zombie worker
        from an earlier hang-requeue cycle waking up late), the claim
        check discards its result exactly like any other revoked
        claim, so a stolen job resolves exactly once fleet-wide.

        Stealing is deadline-aware: jobs whose remaining wall-clock
        budget is below the controller's expected per-job latency are
        left with the donor — shipping them to a peer just to expire
        there wastes the transfer."""
        with self._lock:
            jobs = self.queue.steal(
                max_jobs,
                min_headroom_s=self.overload.expected_job_s())
            recipes: list[dict] = []
            for job in jobs:
                self._steals += 1
                token = f"{thief}#{self._steals}"
                job.claim = token
                job.stolen_by = token
                job.state = "stolen"
                job.outcome = "stolen"
                job.finished_s = time.time()
                if self._inflight.get(job.scan_key) is job:
                    self._inflight.pop(job.scan_key, None)
                abi_json = (job.task.abi.to_json()
                            if job.task is not None else "")
                data = self._healed(
                    lambda h=job.module_hash: self.store.get_module(h))
                if data is None:
                    # Module bytes lost (store rebuild raced the
                    # steal): fail the job locally instead of handing
                    # the thief an unrunnable recipe.
                    job.state = "failed"
                    job.error = "module bytes lost before steal"
                    self._failed += 1
                    continue
                recipe = {
                    "job_id": job.job_id,
                    "scan_key": job.scan_key,
                    "module_hash": job.module_hash,
                    "module": data,
                    "abi": abi_json,
                    "config": dict(job.config),
                    "client": job.client,
                    "priority": job.priority,
                }
                if job.deadline_epoch_s is not None:
                    recipe["deadline_epoch_s"] = job.deadline_epoch_s
                recipes.append(recipe)
        return recipes

    # -- fleet seam: journal shipping / read replicas ----------------------
    def ship_journal(self, cursor: int = 0) -> tuple[list[dict], int]:
        """Read journal entries appended since byte offset ``cursor``;
        returns ``(entries, new_cursor)``.

        The cursor is monotonic over one journal generation: it only
        ever advances past *complete* lines, so a torn tail is re-read
        next time.  If the file shrank below the cursor (compaction,
        or a truncating crash), the cursor resets to zero and the
        whole journal is re-shipped — replica application is
        idempotent (verdicts are deterministic in their scan key), so
        replay-from-zero is the catch-up path, not an error."""
        if self.journal is None:
            return [], cursor
        path = Path(self.journal.path)
        try:
            size = path.stat().st_size
        except OSError:
            return [], 0
        if cursor > size:
            cursor = 0              # truncated/compacted: replay all
        try:
            with open(path, "rb") as handle:
                handle.seek(cursor)
                blob = handle.read()
        except OSError:
            return [], cursor
        end = blob.rfind(b"\n") + 1
        entries: list[dict] = []
        for line in blob[:end].splitlines():
            try:
                doc = json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                continue            # malformed line: skip, keep cursor
            if isinstance(doc, dict):
                entries.append(doc)
        return entries, cursor + end

    def apply_replica_verdicts(self, entries: list[dict]) -> int:
        """Apply a peer's shipped journal entries to this node's store
        (read-replica ingestion).  Only verdict records are applied —
        pending checkpoints and claim tombstones are the primary's
        business.  Idempotent: a scan key this store already holds is
        skipped, so replay-from-zero after a cursor reset costs reads,
        never wrong writes."""
        applied = 0
        for doc in entries:
            key = doc.get("key")
            inner = doc.get("result")
            if not isinstance(key, str) or not isinstance(inner, dict):
                continue
            verdict = inner.get("verdict")
            if not isinstance(verdict, dict):
                continue
            if self._healed(lambda k=key: self.store.has_verdict(k),
                            default=False):
                continue
            try:
                self._healed(lambda k=key, v=verdict:
                             self.store.put_verdict(
                                 k, v.get("module_hash", ""),
                                 v.get("config", {}),
                                 v.get("result", {})))
            except StoreBudgetExceeded:
                break
            applied += 1
        if applied:
            with self._lock:
                self._replica_applied += applied
        return applied

    # -- health / stats ----------------------------------------------------
    def health(self) -> dict:
        """The liveness/readiness doc behind ``GET /healthz``.

        ``ok`` — accepting, all breakers closed; ``degraded`` — serving
        but some breaker is open/half-open (affected jobs run
        black-box-only); ``draining`` — not accepting (graceful drain
        or a restart storm)."""
        with self._lock:
            open_stages = self.breakers.open_stages()
            accepting = self._accepting
            storm = self._storm
            partitioned = self._partitioned
        status = "ok"
        if open_stages:
            status = "degraded"
        if not accepting:
            status = "draining"
        if partitioned:
            # Partition-mode reads are served but explicitly stale:
            # the node cannot know what the majority decided since.
            status = "partitioned"
        doc = {
            "status": status,
            "accepting": accepting and not partitioned,
            "stale": partitioned,
            "storm": storm,
            "pressure": self.overload.pressure,
            "breakers": {"open": open_stages},
            "workers": (self.supervisor.stats()
                        if self.supervisor is not None
                        else {"alive": 0,
                              "configured": self.config.workers,
                              "restarts": 0,
                              "reaps": {"died": 0, "hung": 0},
                              "storm": False}),
        }
        return doc

    def stats(self) -> dict:
        with self._lock:
            states: dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            total = self._cache_hits + self._coalesce_hits
            running = len(self._running_jobs)
            return {
                "uptime_s": time.time() - self.started_s,
                "queue_depth": self.queue.depth,
                "running": running,
                "inflight_budget": self.config.inflight_budget(),
                "workers": self.config.workers,
                "accepting": self._accepting and not self._partitioned,
                "stale": self._partitioned,
                "health": ("partitioned" if self._partitioned else
                           "draining" if not self._accepting else
                           "degraded" if self.breakers.open_stages()
                           else "ok"),
                "submissions": self._submissions,
                "jobs": states,
                "completed": self._completed,
                "failed": self._failed,
                "quarantined": self._quarantined,
                "expired": self._expired,
                "deadline_exceeded": self._deadline_exceeded,
                "promoted": self.queue.promoted,
                "admission_rejected": self._admission_rejected,
                "shed": self.queue.shed,
                "shed_by_kind": dict(self.perf.shed_by_kind),
                "pressure": self.overload.pressure,
                "overload": self.overload.snapshot(),
                "replay_served": self._replay_served,
                "browned_out": self._browned_out,
                "fleet": {
                    "stolen_away": self._steals,
                    "replica_applied": self._replica_applied,
                },
                "dedup": {
                    "cache_hits": self._cache_hits,
                    "coalesce_hits": self._coalesce_hits,
                    "hit_rate": (total / self._submissions
                                 if self._submissions else 0.0),
                },
                "breakers": self.breakers.snapshot(),
                "supervisor": (self.supervisor.stats()
                               if self.supervisor is not None else None),
                "resilience": {
                    "worker_restarts": self.perf.worker_restarts,
                    "breaker_trips": self.perf.breaker_trips,
                    "breaker_recoveries": self.perf.breaker_recoveries,
                    "integrity_repairs": self.perf.integrity_repairs,
                    "journal_compactions":
                        self.perf.journal_compactions,
                    "store_recoveries": self._store_recoveries,
                    "forced_blackbox": self._forced_blackbox,
                },
                "traceir": {
                    "traces_stored": self.perf.traces_stored,
                    "reverdicts": self.perf.reverdicts,
                    "trace_corruptions": self.perf.trace_corruptions,
                    "verdict_drift": self.perf.verdict_drift,
                    "insufficient_surface":
                        self.perf.insufficient_surface,
                    "drift_audits": self._drift_audits,
                    "drift_incidents":
                        list(self._drift_incidents[-8:]),
                },
                "latency": self.perf.latency_percentiles(),
                "store": self.store.counts(),
            }

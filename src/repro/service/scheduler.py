"""The scan service core: admission, single-flight dedup, workers.

:class:`ScanService` glues the persistent :class:`ArtifactStore`, the
bounded :class:`JobQueue` and a pool of worker threads into the
long-lived analyzer the HTTP daemon fronts.  One submission travels::

    bytes -> ingest (sandboxed, typed reject) -> scan_key
          -> store hit?        -> cached verdict, no job runs
          -> in-flight twin?   -> coalesce onto the running job
          -> admission bounds  -> typed QueueFull shed
          -> queued -> running -> done | failed | quarantined

Dedup levels:

* **store hit** — an identical module+config was already scanned
  (possibly in a previous process): the stored verdict is returned
  immediately and byte-identically, no worker involved;
* **single-flight coalescing** — an identical submission is already
  queued or running: the new submission attaches to that job instead
  of enqueuing a twin, so N concurrent identical uploads cost exactly
  one fuzzing campaign.

Failure containment reuses the resilience policy end to end:
``run_campaign_task`` retries/degrades *inside* the job, and the
service retries whole failed jobs up to ``policy.max_retries`` before
benching the scan key after ``policy.quarantine_after`` failures
(state ``quarantined``, recorded in the store's quarantine table).

Graceful drain checkpoints still-queued jobs into the PR-2 JSONL
journal (module bytes stay in the store; the journal records the
recipe); :meth:`resume_from_journal` replays them exactly once —
each replayed key is claimed with a tombstone line, and the
append-only last-wins journal makes double replay impossible.
"""

from __future__ import annotations

import threading
import time
import uuid
from dataclasses import dataclass

from ..eosio.abi import Abi
from ..metrics import ThroughputStats
from ..parallel.campaigns import CampaignTask, run_campaign_task
from ..resilience import (CampaignJournal, MalformedModule, Quarantine,
                          ResiliencePolicy, campaign_task_key)
from ..wasm.hardening import load_untrusted_module
from .queue import Job, JobQueue, QueueFull
from .store import ArtifactStore

__all__ = ["ScanService", "ScanServiceConfig", "Submission",
           "DEFAULT_SCAN_CONFIG"]

DEFAULT_SCAN_CONFIG = {
    "tool": "wasai",
    "timeout_ms": 30_000.0,
    "rng_seed": 1,
    "address_pool": False,
    "divergence_check": True,
}


@dataclass(frozen=True)
class ScanServiceConfig:
    """Operator knobs for one daemon instance."""

    workers: int = 2
    max_depth: int = 64          # queued-job bound (backpressure)
    max_inflight: int | None = None  # queued+running bound; None = auto
    poll_s: float = 0.2          # worker queue poll interval
    default_timeout_ms: float = 30_000.0

    def inflight_budget(self) -> int:
        if self.max_inflight is not None:
            return self.max_inflight
        return self.max_depth + self.workers


@dataclass
class Submission:
    """What admission hands back: the job plus how it was satisfied."""

    job: Job
    outcome: str            # "queued" | "cached" | "coalesced"

    @property
    def cached(self) -> bool:
        return self.outcome == "cached"


class ScanService:
    """A long-lived scan scheduler over the store + queue + workers."""

    def __init__(self, store: "ArtifactStore | str" = ":memory:",
                 config: ScanServiceConfig | None = None,
                 policy: ResiliencePolicy | None = None,
                 journal: "CampaignJournal | str | None" = None,
                 ingest_budget=None):
        self.store = (store if isinstance(store, ArtifactStore)
                      else ArtifactStore(store))
        self.config = config or ScanServiceConfig()
        self.policy = policy or ResiliencePolicy()
        if isinstance(journal, CampaignJournal) or journal is None:
            self.journal = journal
        else:
            self.journal = CampaignJournal(journal)
        self.ingest_budget = ingest_budget
        self.queue = JobQueue(max_depth=self.config.max_depth)
        self.quarantine = Quarantine(self.policy.quarantine_after)
        self.perf = ThroughputStats(jobs=self.config.workers)
        self.started_s = time.time()

        self._lock = threading.RLock()
        self._jobs: dict[str, Job] = {}
        self._inflight: dict[str, Job] = {}   # scan_key -> live job
        self._running = 0
        self._submissions = 0
        self._cache_hits = 0
        self._coalesce_hits = 0
        self._admission_rejected = 0
        self._completed = 0
        self._failed = 0
        self._quarantined = 0
        self._accepting = True
        self._draining = False
        self._threads: list[threading.Thread] = []

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        for index in range(self.config.workers):
            thread = threading.Thread(target=self._worker_loop,
                                      name=f"scan-worker-{index}",
                                      daemon=True)
            thread.start()
            self._threads.append(thread)

    def drain(self, wait_s: float = 30.0) -> int:
        """Graceful shutdown: refuse new work, finish running jobs,
        checkpoint whatever is still queued.  Returns the number of
        jobs checkpointed to the journal."""
        with self._lock:
            self._accepting = False
            self._draining = True
        deadline = time.monotonic() + wait_s
        for thread in self._threads:
            thread.join(max(0.0, deadline - time.monotonic()))
        checkpointed = 0
        for job in self.queue.drain():
            if self._checkpoint(job):
                checkpointed += 1
        return checkpointed

    def stop(self, wait_s: float = 30.0) -> int:
        checkpointed = self.drain(wait_s)
        self.store.close()
        return checkpointed

    # -- admission ---------------------------------------------------------
    def submit_bytes(self, data: bytes, abi_json: "str | dict",
                     config: dict | None = None, client: str = "anon",
                     priority: int = 0) -> Submission:
        """Admit one scan request from raw (untrusted) contract bytes.

        Raises :class:`~repro.resilience.MalformedModule` when the
        bytes fail sandboxed ingestion (the hostile upload never
        reaches a worker) and :class:`QueueFull` when the queue depth
        or the in-flight budget is exceeded.
        """
        with self._lock:
            if not self._accepting:
                raise QueueFull("service is draining",
                                depth=self.queue.depth,
                                limit=self.config.max_depth,
                                kind="draining")
        # Sandboxed ingestion *before* admission: a hostile module is
        # rejected here with a typed MalformedModule diagnostic.
        try:
            module = load_untrusted_module(data,
                                           budget=self.ingest_budget)
        except MalformedModule:
            with self._lock:
                self._admission_rejected += 1
            raise
        if isinstance(abi_json, dict):
            import json as _json
            abi_json = _json.dumps(abi_json)
        abi = Abi.from_json(abi_json)
        merged = dict(DEFAULT_SCAN_CONFIG,
                      timeout_ms=self.config.default_timeout_ms)
        merged.update(config or {})
        from ..engine.deploy import module_content_hash
        module_hash = module_content_hash(module)
        task = CampaignTask(
            module, abi, tools=(merged["tool"],),
            timeout_ms=float(merged["timeout_ms"]),
            rng_seed=int(merged["rng_seed"]),
            address_pool=bool(merged["address_pool"]),
            policy=self.policy,
            sample_key=f"{client}:{module_hash[:12]}",
            divergence_check=bool(merged["divergence_check"]))
        scan_key = campaign_task_key(task)
        stored_config = {key: merged[key] for key in DEFAULT_SCAN_CONFIG}
        # Persist the upload before admission decisions: the journal's
        # drain checkpoints reference modules by hash, so the bytes
        # must already be durable by the time a job can be queued.
        self.store.put_module(module_hash, data)

        with self._lock:
            self._submissions += 1
            # Level 1: persistent store hit — serve the verdict now.
            result_doc = self.store.get_verdict(scan_key)
            if result_doc is not None:
                self._cache_hits += 1
                job = Job(job_id=uuid.uuid4().hex[:12], client=client,
                          scan_key=scan_key, module_hash=module_hash,
                          config=stored_config, priority=priority,
                          state="done", outcome="cached",
                          submitted_s=time.time(),
                          result_doc=result_doc)
                job.finished_s = job.submitted_s
                self._jobs[job.job_id] = job
                return Submission(job, "cached")
            # Level 2: single-flight — attach to the live twin.
            twin = self._inflight.get(scan_key)
            if twin is not None and not twin.terminal:
                self._coalesce_hits += 1
                twin.waiters += 1
                return Submission(twin, "coalesced")
            # Admission control: bounded queue + in-flight budget.
            inflight = self.queue.depth + self._running
            if inflight >= self.config.inflight_budget():
                self.queue.shed += 1
                raise QueueFull(
                    f"in-flight budget {self.config.inflight_budget()} "
                    f"exhausted ({inflight} admitted)",
                    depth=inflight,
                    limit=self.config.inflight_budget(),
                    kind="inflight")
            job = Job(job_id=uuid.uuid4().hex[:12], client=client,
                      scan_key=scan_key, module_hash=module_hash,
                      config=stored_config, task=task,
                      priority=priority, submitted_s=time.time())
            self.queue.put(job)          # may raise QueueFull (typed)
            self._jobs[job.job_id] = job
            self._inflight[scan_key] = job
        return Submission(job, "queued")

    def job(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    # -- workers -----------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            if self._draining:
                return
            job = self.queue.get(timeout=self.config.poll_s)
            if job is None:
                continue
            with self._lock:
                job.state = "running"
                job.started_s = time.time()
                self._running += 1
            try:
                self._run_job(job)
            finally:
                with self._lock:
                    self._running -= 1

    def _run_job(self, job: Job) -> None:
        tool = job.config["tool"]
        try:
            result = run_campaign_task(job.task)
        except BaseException as exc:  # noqa: BLE001 - thread must survive
            self._job_failed(job, f"{type(exc).__name__}: {exc}")
            return
        doc_error = result.errors.get(tool)
        if tool not in result.scans:
            message = (doc_error or {}).get("message", "campaign failed")
            self._job_failed(job, message)
            return
        from ..resilience.journal import campaign_result_to_doc
        result_doc = campaign_result_to_doc(result)
        self.store.put_verdict(job.scan_key, job.module_hash,
                               job.config, result_doc)
        if result.coverage:
            self.store.put_coverage(job.scan_key, result.coverage)
        with self._lock:
            job.result_doc = result_doc
            job.state = "done"
            job.finished_s = time.time()
            self._completed += 1
            self._inflight.pop(job.scan_key, None)
            self._record_latency(job, result)

    def _job_failed(self, job: Job, message: str) -> None:
        with self._lock:
            job.attempts += 1
            job.error = message
            self.quarantine.record_failure(job.scan_key, message)
            if self.quarantine.is_quarantined(job.scan_key):
                job.state = "quarantined"
                job.finished_s = time.time()
                self._quarantined += 1
                self._inflight.pop(job.scan_key, None)
                self.store.put_quarantine(
                    job.scan_key, job.module_hash,
                    self.quarantine.quarantined().get(job.scan_key, []))
                return
            if job.attempts <= self.policy.max_retries \
                    and not self._draining:
                job.state = "queued"
                self.queue.put(job, force=True)  # containment re-queue
                return
            job.state = "failed"
            job.finished_s = time.time()
            self._failed += 1
            self._inflight.pop(job.scan_key, None)

    def _record_latency(self, job: Job, result) -> None:
        if job.started_s and job.finished_s:
            self.perf.record_latency("job",
                                     job.finished_s - job.started_s)
        for stage, seconds in result.stage_seconds.items():
            self.perf.record_latency(stage, seconds)
        self.perf.campaigns += len(result.scans)
        self.perf.retries += result.retries
        self.perf.add_stage_seconds(result.stage_seconds)
        self.perf.add_cache_deltas(result.instr_cache_hits,
                                   result.instr_cache_misses,
                                   result.solver_cache_hits,
                                   result.solver_cache_misses)

    # -- checkpoint / resume ----------------------------------------------
    def _checkpoint(self, job: Job) -> bool:
        """Journal one still-queued job so ``--resume`` can replay it.
        The module bytes live in the store; the journal records the
        recipe (module hash + ABI + config + client)."""
        if self.journal is None:
            return False
        abi_json = job.task.abi.to_json() if job.task is not None else ""
        self.journal.record(job.scan_key, {"pending": {
            "module_hash": job.module_hash,
            "abi": abi_json,
            "config": dict(job.config),
            "client": job.client,
            "priority": job.priority,
        }})
        return True

    def resume_from_journal(self) -> int:
        """Resubmit every unclaimed pending job exactly once; returns
        how many were replayed.  A replayed key is immediately claimed
        with a tombstone line — the journal is append-only and
        last-wins, so a second resume (or a crash between replays)
        can never run the same checkpoint twice."""
        if self.journal is None:
            return 0
        replayed = 0
        for key, doc in self.journal.load().items():
            inner = doc.get("result")
            if not isinstance(inner, dict):
                continue
            pending = inner.get("pending")
            if not isinstance(pending, dict):
                continue  # claimed tombstone or a campaign result
            data = self.store.get_module(pending.get("module_hash", ""))
            if data is None:
                self.journal.record(key, {"claimed": "module lost"})
                continue
            try:
                submission = self.submit_bytes(
                    data, pending.get("abi", "{}"),
                    config=pending.get("config"),
                    client=pending.get("client", "anon"),
                    priority=int(pending.get("priority", 0)))
            except QueueFull:
                continue  # stays pending for the next resume
            except MalformedModule:
                self.journal.record(key, {"claimed": "rejected"})
                continue
            self.journal.record(key,
                                {"claimed": submission.job.job_id})
            replayed += 1
        return replayed

    # -- stats -------------------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            states: dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            total = self._cache_hits + self._coalesce_hits
            return {
                "uptime_s": time.time() - self.started_s,
                "queue_depth": self.queue.depth,
                "running": self._running,
                "inflight_budget": self.config.inflight_budget(),
                "workers": self.config.workers,
                "accepting": self._accepting,
                "submissions": self._submissions,
                "jobs": states,
                "completed": self._completed,
                "failed": self._failed,
                "quarantined": self._quarantined,
                "admission_rejected": self._admission_rejected,
                "shed": self.queue.shed,
                "dedup": {
                    "cache_hits": self._cache_hits,
                    "coalesce_hits": self._coalesce_hits,
                    "hit_rate": (total / self._submissions
                                 if self._submissions else 0.0),
                },
                "latency": self.perf.latency_percentiles(),
                "store": self.store.counts(),
            }

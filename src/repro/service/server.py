"""The HTTP daemon: stdlib ``ThreadingHTTPServer`` over the API.

No web framework — ``http.server`` is enough for a JSON API and keeps
the dependency surface at zero.  Each request thread delegates to
:class:`~repro.service.api.ServiceApi`; the scan workers are separate
threads owned by the :class:`~repro.service.scheduler.ScanService`,
so slow fuzzing campaigns never block health checks or status polls.

``SIGTERM``/``SIGINT`` trigger a graceful drain: the daemon stops
accepting, lets running campaigns finish, checkpoints still-queued
jobs through the JSONL journal, and exits — ``wasai serve --resume``
replays the checkpoints exactly once.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .api import ServiceApi
from .scheduler import ScanService

__all__ = ["ScanServer", "make_server", "serve_forever"]

# Uploads larger than this are rejected before buffering the body
# (the ingest budget would reject them anyway, but only after a read).
MAX_BODY_BYTES = 32 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    """One request; all logic lives in the shared ServiceApi."""

    server_version = "wasai-scand/1.0"
    protocol_version = "HTTP/1.1"

    def _dispatch(self, method: str) -> None:
        api: ServiceApi = self.server.api  # type: ignore[attr-defined]
        body = b""
        if method == "POST":
            length = int(self.headers.get("Content-Length") or 0)
            if length > MAX_BODY_BYTES:
                self._reply(413, {"error": "body_too_large",
                                  "limit": MAX_BODY_BYTES})
                return
            body = self.rfile.read(length)
        try:
            status, doc = api.handle(method, self.path, body,
                                     headers=dict(self.headers))
        except Exception as exc:  # noqa: BLE001 - keep the daemon up
            status, doc = 500, {"error": "internal",
                                "detail": f"{type(exc).__name__}: {exc}"}
        self._reply(status, doc)

    def _reply(self, status: int, doc: dict) -> None:
        payload = json.dumps(doc, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        if status in (307, 308) and doc.get("location"):
            # Shard redirect: clients retry the same request verbatim
            # against the owning node.
            self.send_header("Location", str(doc["location"]))
        if status in (429, 503) and doc.get("retry_after_s") is not None:
            # The shed hint clients honor before retrying (RFC 9110
            # allows a delay in seconds; round up so 0.5s isn't "0").
            self.send_header(
                "Retry-After",
                str(max(1, int(-(-float(doc["retry_after_s"]) // 1)))))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")

    def log_message(self, fmt: str, *args) -> None:
        if getattr(self.server, "verbose", False):
            super().log_message(fmt, *args)


class ScanServer(ThreadingHTTPServer):
    """ThreadingHTTPServer wired to one ScanService."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: ScanService,
                 verbose: bool = False, tenants=None, router=None):
        super().__init__(address, _Handler)
        self.service = service
        self.api = ServiceApi(service, tenants=tenants, router=router)
        self.verbose = verbose


def make_server(service: ScanService, host: str = "127.0.0.1",
                port: int = 0, verbose: bool = False,
                tenants=None, router=None) -> ScanServer:
    """Bind (port 0 = ephemeral) and start the scan workers.

    ``tenants`` installs API-key/quota admission; ``router`` installs
    shard redirects (see :class:`~repro.service.api.ServiceApi`).
    """
    server = ScanServer((host, port), service, verbose=verbose,
                        tenants=tenants, router=router)
    service.start()
    return server


def serve_forever(server: ScanServer, drain_wait_s: float = 60.0,
                  install_signals: bool = True) -> int:
    """Serve until SIGTERM/SIGINT, then drain gracefully.

    Returns the number of jobs checkpointed to the journal on the way
    down (the count ``wasai serve --resume`` will replay).
    """
    stop = threading.Event()

    def _request_shutdown(signum=None, frame=None):
        stop.set()
        # shutdown() must not be called from the serve_forever thread.
        threading.Thread(target=server.shutdown, daemon=True).start()

    if install_signals:
        signal.signal(signal.SIGTERM, _request_shutdown)
        signal.signal(signal.SIGINT, _request_shutdown)
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        checkpointed = server.service.stop(wait_s=drain_wait_s)
        server.server_close()
    return checkpointed

"""SQLite-backed, content-addressed artifact store for the scan service.

The store is the service's memory across requests *and* across process
restarts: uploaded modules, scan verdicts, coverage timelines,
trace-IR packs and quarantine records all live in one SQLite file,
keyed by the same identities the rest of the pipeline already uses —

* modules by :func:`~repro.engine.module_content_hash` (the canonical
  ``sha256(encode_module(...))`` digest shared with the
  instrumentation cache and the checkpoint journal), and
* verdicts by :func:`~repro.resilience.campaign_task_key` (module hash
  + tool + virtual budget + RNG seed + flags — everything that
  determines a campaign's result).

Because campaigns are deterministic in that key, a stored verdict can
be served for a resubmitted identical module+config without re-fuzzing
and is guaranteed byte-identical to what a fresh campaign would
produce.  Verdicts are stored as the journal's ``CampaignResult`` JSON
docs, so the store and the checkpoint journal can never drift apart in
what a "result" means.

Integrity: every row carries an end-to-end sha256 content checksum
(:func:`~repro.service.integrity.content_checksum` over the row's key
+ payload), written at insert and verified on every read — a silently
bit-flipped page or a hand-edited row surfaces as a typed
:class:`~repro.service.integrity.StoreCorruption` instead of a wrong
verdict, and :meth:`ArtifactStore.verify_integrity` sweeps the whole
database on demand.  ``sqlite3.DatabaseError`` (malformed database
image) is lifted into the same type.  Writes pass a disk-budget guard
(``max_bytes``) that raises typed
:class:`~repro.service.integrity.StoreBudgetExceeded` backpressure
instead of crashing into a full disk; the guard doubles as the
``disk`` fault-injection chokepoint for chaos drills.

SQLite specifics: one connection (``check_same_thread=False``) behind
an ``RLock`` — the daemon serves concurrent HTTP threads; WAL mode so
readers never block the writer.  ``path=":memory:"`` gives the tests a
throwaway store.  Pre-checksum (PR-4) database files are migrated in
place: the ``checksum`` column is added and backfilled on open.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from pathlib import Path

from ..resilience.errors import CampaignError
from ..resilience.faultinject import inject, should_corrupt
from .integrity import (StoreBudgetExceeded, StoreCorruption,
                        content_checksum)

__all__ = ["ArtifactStore"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS modules (
    content_hash TEXT PRIMARY KEY,
    size         INTEGER NOT NULL,
    data         BLOB NOT NULL,
    created_s    REAL NOT NULL,
    checksum     TEXT
);
CREATE TABLE IF NOT EXISTS verdicts (
    scan_key     TEXT PRIMARY KEY,
    module_hash  TEXT NOT NULL,
    config       TEXT NOT NULL,
    result       TEXT NOT NULL,
    created_s    REAL NOT NULL,
    checksum     TEXT
);
CREATE TABLE IF NOT EXISTS coverage (
    scan_key     TEXT PRIMARY KEY,
    timeline     TEXT NOT NULL,
    created_s    REAL NOT NULL,
    checksum     TEXT
);
CREATE TABLE IF NOT EXISTS quarantine (
    scan_key     TEXT PRIMARY KEY,
    module_hash  TEXT NOT NULL,
    reasons      TEXT NOT NULL,
    created_s    REAL NOT NULL,
    checksum     TEXT
);
CREATE TABLE IF NOT EXISTS traces (
    scan_key        TEXT PRIMARY KEY,
    module_hash     TEXT NOT NULL,
    tool            TEXT NOT NULL,
    traceir_version INTEGER NOT NULL,
    size            INTEGER NOT NULL,
    blob            BLOB NOT NULL,
    created_s       REAL NOT NULL,
    checksum        TEXT
);
"""

_TABLES = ("modules", "verdicts", "coverage", "quarantine", "traces")


class ArtifactStore:
    """Persistent artifacts of every scan the service has ever run."""

    def __init__(self, path: "str | Path" = ":memory:",
                 max_bytes: int | None = None):
        self.path = str(path)
        self.max_bytes = max_bytes
        if self.path != ":memory:":
            Path(self.path).parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(self.path,
                                     check_same_thread=False)
        try:
            with self._lock, self._conn:
                if self.path != ":memory:":
                    self._conn.execute("PRAGMA journal_mode=WAL")
                self._conn.executescript(_SCHEMA)
                self._migrate()
        except sqlite3.DatabaseError as exc:
            # A mangled database image fails at open time, before any
            # row read; the typed error routes it into the service's
            # quarantine-and-rebuild path like row corruption would.
            raise StoreCorruption(
                f"cannot open store {self.path!r}: {exc}") from exc

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    # -- integrity plumbing ------------------------------------------------
    def _migrate(self) -> None:
        """Add + backfill the checksum column on pre-checksum stores
        (the CREATE above only covers fresh databases)."""
        for table in _TABLES:
            columns = [row[1] for row in self._conn.execute(
                f"PRAGMA table_info({table})")]
            if "checksum" not in columns:
                self._conn.execute(
                    f"ALTER TABLE {table} ADD COLUMN checksum TEXT")
        for hash_, data in self._conn.execute(
                "SELECT content_hash, data FROM modules "
                "WHERE checksum IS NULL").fetchall():
            self._conn.execute(
                "UPDATE modules SET checksum = ? WHERE content_hash = ?",
                (content_checksum(hash_, bytes(data)), hash_))
        for key, blob in self._conn.execute(
                "SELECT scan_key, blob FROM traces "
                "WHERE checksum IS NULL").fetchall():
            self._conn.execute(
                "UPDATE traces SET checksum = ? WHERE scan_key = ?",
                (content_checksum(key, bytes(blob)), key))
        for table, key_col, payload_col in (
                ("verdicts", "scan_key", "result"),
                ("coverage", "scan_key", "timeline"),
                ("quarantine", "scan_key", "reasons")):
            for key, payload in self._conn.execute(
                    f"SELECT {key_col}, {payload_col} FROM {table} "
                    "WHERE checksum IS NULL").fetchall():
                self._conn.execute(
                    f"UPDATE {table} SET checksum = ? "
                    f"WHERE {key_col} = ?",
                    (content_checksum(key, payload), key))

    def _write_checksum(self, *parts: "bytes | str") -> str:
        """The checksum to store for a new row — deliberately wrong
        when a ``store``-scope corruption fault is armed, so chaos
        tests can seed a detectable defect through the real path."""
        checksum = content_checksum(*parts)
        if should_corrupt("store"):
            return "corrupt:" + checksum
        return checksum

    def _verify(self, table: str, key: str, stored: "str | None",
                *parts: "bytes | str") -> None:
        if stored is not None and stored != content_checksum(*parts):
            raise StoreCorruption(
                f"checksum mismatch in {table} row {key!r}",
                table=table, key=key)

    def _guard_write(self, incoming: int) -> None:
        """Disk-budget guard (and the ``disk`` chaos chokepoint)."""
        try:
            inject("disk")
        except CampaignError as exc:
            raise StoreBudgetExceeded(
                f"store write refused: {exc}",
                used_bytes=self.size_bytes(),
                budget_bytes=self.max_bytes or 0) from exc
        if self.max_bytes is not None \
                and self.size_bytes() + incoming > self.max_bytes:
            raise StoreBudgetExceeded(
                f"store at {self.size_bytes()} bytes; writing "
                f"{incoming} more would exceed the {self.max_bytes}"
                f"-byte budget",
                used_bytes=self.size_bytes(),
                budget_bytes=self.max_bytes)

    def size_bytes(self) -> int:
        with self._lock:
            pages = self._conn.execute(
                "PRAGMA page_count").fetchone()[0]
            page_size = self._conn.execute(
                "PRAGMA page_size").fetchone()[0]
        return int(pages) * int(page_size)

    def _execute(self, sql: str, params: tuple = ()):
        """Run one statement, lifting driver-level corruption into the
        typed :class:`StoreCorruption` the scheduler heals from."""
        try:
            return self._conn.execute(sql, params)
        except sqlite3.DatabaseError as exc:
            raise StoreCorruption(f"sqlite failure: {exc}") from exc

    # -- modules -----------------------------------------------------------
    def put_module(self, content_hash: str, data: bytes) -> None:
        """Store the raw uploaded bytes under the module's canonical
        content hash (idempotent; first write wins)."""
        self._guard_write(len(data))
        with self._lock, self._conn:
            self._execute(
                "INSERT OR IGNORE INTO modules "
                "(content_hash, size, data, created_s, checksum) "
                "VALUES (?, ?, ?, ?, ?)",
                (content_hash, len(data), data, time.time(),
                 self._write_checksum(content_hash, data)))

    def get_module(self, content_hash: str) -> bytes | None:
        with self._lock:
            row = self._execute(
                "SELECT data, checksum FROM modules "
                "WHERE content_hash = ?", (content_hash,)).fetchone()
        if not row:
            return None
        data = bytes(row[0])
        self._verify("modules", content_hash, row[1], content_hash,
                     data)
        return data

    # -- verdicts ----------------------------------------------------------
    def put_verdict(self, scan_key: str, module_hash: str,
                    config: dict, result_doc: dict) -> None:
        """Record one completed campaign's result doc (last wins —
        campaigns are deterministic in ``scan_key``, so a rewrite can
        only ever store the same value)."""
        result_json = json.dumps(result_doc, sort_keys=True)
        self._guard_write(len(result_json))
        with self._lock, self._conn:
            self._execute(
                "INSERT OR REPLACE INTO verdicts "
                "(scan_key, module_hash, config, result, created_s, "
                "checksum) VALUES (?, ?, ?, ?, ?, ?)",
                (scan_key, module_hash,
                 json.dumps(config, sort_keys=True),
                 result_json, time.time(),
                 self._write_checksum(scan_key, result_json)))

    def delete_verdict(self, scan_key: str) -> None:
        """Drop one verdict (marks the module re-scannable after its
        backing trace was quarantined)."""
        with self._lock, self._conn:
            self._execute("DELETE FROM verdicts WHERE scan_key = ?",
                          (scan_key,))

    def verdict_record(self, scan_key: str) -> dict | None:
        """The full verdict row (module hash + config + result doc),
        checksum-verified — what a re-verdict sweep rewrites."""
        with self._lock:
            row = self._execute(
                "SELECT module_hash, config, result, checksum "
                "FROM verdicts WHERE scan_key = ?",
                (scan_key,)).fetchone()
        if not row:
            return None
        self._verify("verdicts", scan_key, row[3], scan_key, row[2])
        return {"scan_key": scan_key, "module_hash": row[0],
                "config": json.loads(row[1]),
                "result": json.loads(row[2])}

    def has_verdict(self, scan_key: str) -> bool:
        """Existence check without checksum verification — the cheap
        idempotence probe replica ingestion runs per shipped entry (a
        corrupt row still surfaces on the eventual read)."""
        with self._lock:
            row = self._execute(
                "SELECT 1 FROM verdicts WHERE scan_key = ?",
                (scan_key,)).fetchone()
        return row is not None

    def get_verdict(self, scan_key: str) -> dict | None:
        """The stored ``CampaignResult`` doc, or None on a miss."""
        with self._lock:
            row = self._execute(
                "SELECT result, checksum FROM verdicts "
                "WHERE scan_key = ?", (scan_key,)).fetchone()
        if not row:
            return None
        self._verify("verdicts", scan_key, row[1], scan_key, row[0])
        return json.loads(row[0])

    # -- coverage timelines ------------------------------------------------
    def put_coverage(self, scan_key: str, coverage: dict) -> None:
        timeline = json.dumps(coverage, sort_keys=True)
        self._guard_write(len(timeline))
        with self._lock, self._conn:
            self._execute(
                "INSERT OR REPLACE INTO coverage "
                "(scan_key, timeline, created_s, checksum) "
                "VALUES (?, ?, ?, ?)",
                (scan_key, timeline, time.time(),
                 self._write_checksum(scan_key, timeline)))

    def get_coverage(self, scan_key: str) -> dict | None:
        with self._lock:
            row = self._execute(
                "SELECT timeline, checksum FROM coverage "
                "WHERE scan_key = ?", (scan_key,)).fetchone()
        if not row:
            return None
        self._verify("coverage", scan_key, row[1], scan_key, row[0])
        return json.loads(row[0])

    # -- trace IR blobs ----------------------------------------------------
    def put_trace(self, scan_key: str, module_hash: str, tool: str,
                  blob: bytes, traceir_version: int | None = None) -> None:
        """Store one campaign's encoded trace-IR pack alongside its
        verdict (same key).  Checksummed like every other row and
        counted against the disk budget; last write wins."""
        if traceir_version is None:
            from ..traceir.codec import TRACEIR_VERSION
            traceir_version = TRACEIR_VERSION
        blob = bytes(blob)
        self._guard_write(len(blob))
        with self._lock, self._conn:
            self._execute(
                "INSERT OR REPLACE INTO traces "
                "(scan_key, module_hash, tool, traceir_version, size, "
                "blob, created_s, checksum) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (scan_key, module_hash, tool, traceir_version,
                 len(blob), blob, time.time(),
                 self._write_checksum(scan_key, blob)))

    def get_trace(self, scan_key: str) -> dict | None:
        """The stored trace row, or None.  Row-level corruption (a
        flipped page) surfaces as :class:`StoreCorruption`; blob-level
        damage is the trace IR decoder's to judge."""
        with self._lock:
            row = self._execute(
                "SELECT module_hash, tool, traceir_version, blob, "
                "checksum FROM traces WHERE scan_key = ?",
                (scan_key,)).fetchone()
        if not row:
            return None
        blob = bytes(row[3])
        self._verify("traces", scan_key, row[4], scan_key, blob)
        return {"scan_key": scan_key, "module_hash": row[0],
                "tool": row[1], "traceir_version": row[2],
                "blob": blob}

    def trace_keys(self) -> list[str]:
        with self._lock:
            rows = self._execute(
                "SELECT scan_key FROM traces ORDER BY scan_key")
            return [row[0] for row in rows.fetchall()]

    def delete_trace(self, scan_key: str) -> None:
        with self._lock, self._conn:
            self._execute("DELETE FROM traces WHERE scan_key = ?",
                          (scan_key,))

    # -- quarantine records ------------------------------------------------
    def put_quarantine(self, scan_key: str, module_hash: str,
                       reasons: list[str]) -> None:
        reasons_json = json.dumps(list(reasons))
        self._guard_write(len(reasons_json))
        with self._lock, self._conn:
            self._execute(
                "INSERT OR REPLACE INTO quarantine "
                "(scan_key, module_hash, reasons, created_s, checksum) "
                "VALUES (?, ?, ?, ?, ?)",
                (scan_key, module_hash, reasons_json, time.time(),
                 self._write_checksum(scan_key, reasons_json)))

    def get_quarantine(self, scan_key: str) -> list[str] | None:
        with self._lock:
            row = self._execute(
                "SELECT reasons, checksum FROM quarantine "
                "WHERE scan_key = ?", (scan_key,)).fetchone()
        if not row:
            return None
        self._verify("quarantine", scan_key, row[1], scan_key, row[0])
        return json.loads(row[0])

    def quarantined_keys(self) -> list[str]:
        with self._lock:
            rows = self._execute(
                "SELECT scan_key FROM quarantine ORDER BY scan_key")
            return [row[0] for row in rows.fetchall()]

    # -- integrity sweep ---------------------------------------------------
    def verify_integrity(self) -> dict[str, dict]:
        """Recompute every row's checksum; returns a per-table report
        ``{"rows": n, "corrupt": [keys...]}``.  Raises
        :class:`StoreCorruption` if SQLite itself cannot read the
        database (malformed image)."""
        specs = (
            ("modules", "content_hash", "data",
             lambda key, payload: (key, bytes(payload))),
            ("verdicts", "scan_key", "result",
             lambda key, payload: (key, payload)),
            ("coverage", "scan_key", "timeline",
             lambda key, payload: (key, payload)),
            ("quarantine", "scan_key", "reasons",
             lambda key, payload: (key, payload)),
            ("traces", "scan_key", "blob",
             lambda key, payload: (key, bytes(payload))),
        )
        report: dict[str, dict] = {}
        with self._lock:
            for table, key_col, payload_col, parts in specs:
                rows = self._execute(
                    f"SELECT {key_col}, {payload_col}, checksum "
                    f"FROM {table}").fetchall()
                corrupt = [
                    key for key, payload, stored in rows
                    if stored is not None
                    and stored != content_checksum(*parts(key, payload))
                ]
                report[table] = {"rows": len(rows), "corrupt": corrupt}
        return report

    # -- accounting --------------------------------------------------------
    def counts(self) -> dict[str, int]:
        out = {}
        with self._lock:
            for table in _TABLES:
                row = self._execute(
                    f"SELECT COUNT(*) FROM {table}").fetchone()
                out[table] = row[0]
        return out

"""SQLite-backed, content-addressed artifact store for the scan service.

The store is the service's memory across requests *and* across process
restarts: uploaded modules, scan verdicts, coverage timelines and
quarantine records all live in one SQLite file, keyed by the same
identities the rest of the pipeline already uses —

* modules by :func:`~repro.engine.module_content_hash` (the canonical
  ``sha256(encode_module(...))`` digest shared with the
  instrumentation cache and the checkpoint journal), and
* verdicts by :func:`~repro.resilience.campaign_task_key` (module hash
  + tool + virtual budget + RNG seed + flags — everything that
  determines a campaign's result).

Because campaigns are deterministic in that key, a stored verdict can
be served for a resubmitted identical module+config without re-fuzzing
and is guaranteed byte-identical to what a fresh campaign would
produce.  Verdicts are stored as the journal's ``CampaignResult`` JSON
docs, so the store and the checkpoint journal can never drift apart in
what a "result" means.

SQLite specifics: one connection (``check_same_thread=False``) behind
an ``RLock`` — the daemon serves concurrent HTTP threads; WAL mode so
readers never block the writer.  ``path=":memory:"`` gives the tests a
throwaway store.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from pathlib import Path

__all__ = ["ArtifactStore"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS modules (
    content_hash TEXT PRIMARY KEY,
    size         INTEGER NOT NULL,
    data         BLOB NOT NULL,
    created_s    REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS verdicts (
    scan_key     TEXT PRIMARY KEY,
    module_hash  TEXT NOT NULL,
    config       TEXT NOT NULL,
    result       TEXT NOT NULL,
    created_s    REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS coverage (
    scan_key     TEXT PRIMARY KEY,
    timeline     TEXT NOT NULL,
    created_s    REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS quarantine (
    scan_key     TEXT PRIMARY KEY,
    module_hash  TEXT NOT NULL,
    reasons      TEXT NOT NULL,
    created_s    REAL NOT NULL
);
"""


class ArtifactStore:
    """Persistent artifacts of every scan the service has ever run."""

    def __init__(self, path: "str | Path" = ":memory:"):
        self.path = str(path)
        if self.path != ":memory:":
            Path(self.path).parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(self.path,
                                     check_same_thread=False)
        with self._lock, self._conn:
            if self.path != ":memory:":
                self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.executescript(_SCHEMA)

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    # -- modules -----------------------------------------------------------
    def put_module(self, content_hash: str, data: bytes) -> None:
        """Store the raw uploaded bytes under the module's canonical
        content hash (idempotent; first write wins)."""
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT OR IGNORE INTO modules VALUES (?, ?, ?, ?)",
                (content_hash, len(data), data, time.time()))

    def get_module(self, content_hash: str) -> bytes | None:
        with self._lock:
            row = self._conn.execute(
                "SELECT data FROM modules WHERE content_hash = ?",
                (content_hash,)).fetchone()
        return bytes(row[0]) if row else None

    # -- verdicts ----------------------------------------------------------
    def put_verdict(self, scan_key: str, module_hash: str,
                    config: dict, result_doc: dict) -> None:
        """Record one completed campaign's result doc (last wins —
        campaigns are deterministic in ``scan_key``, so a rewrite can
        only ever store the same value)."""
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO verdicts VALUES (?, ?, ?, ?, ?)",
                (scan_key, module_hash,
                 json.dumps(config, sort_keys=True),
                 json.dumps(result_doc, sort_keys=True), time.time()))

    def get_verdict(self, scan_key: str) -> dict | None:
        """The stored ``CampaignResult`` doc, or None on a miss."""
        with self._lock:
            row = self._conn.execute(
                "SELECT result FROM verdicts WHERE scan_key = ?",
                (scan_key,)).fetchone()
        return json.loads(row[0]) if row else None

    # -- coverage timelines ------------------------------------------------
    def put_coverage(self, scan_key: str, coverage: dict) -> None:
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO coverage VALUES (?, ?, ?)",
                (scan_key, json.dumps(coverage, sort_keys=True),
                 time.time()))

    def get_coverage(self, scan_key: str) -> dict | None:
        with self._lock:
            row = self._conn.execute(
                "SELECT timeline FROM coverage WHERE scan_key = ?",
                (scan_key,)).fetchone()
        return json.loads(row[0]) if row else None

    # -- quarantine records ------------------------------------------------
    def put_quarantine(self, scan_key: str, module_hash: str,
                       reasons: list[str]) -> None:
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO quarantine VALUES (?, ?, ?, ?)",
                (scan_key, module_hash,
                 json.dumps(list(reasons)), time.time()))

    def get_quarantine(self, scan_key: str) -> list[str] | None:
        with self._lock:
            row = self._conn.execute(
                "SELECT reasons FROM quarantine WHERE scan_key = ?",
                (scan_key,)).fetchone()
        return json.loads(row[0]) if row else None

    def quarantined_keys(self) -> list[str]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT scan_key FROM quarantine ORDER BY scan_key")
            return [row[0] for row in rows.fetchall()]

    # -- accounting --------------------------------------------------------
    def counts(self) -> dict[str, int]:
        out = {}
        with self._lock:
            for table in ("modules", "verdicts", "coverage",
                          "quarantine"):
                row = self._conn.execute(
                    f"SELECT COUNT(*) FROM {table}").fetchone()
                out[table] = row[0]
        return out

"""Worker supervision: heartbeats, a watchdog, restart-storm guard.

The PR-4 service ran scan workers as bare daemon threads: a worker
that died took a queue slot with it forever, and a worker wedged
inside a campaign held its job hostage invisibly.  The supervisor
makes worker death and worker hang *normal, healed events*:

* every worker has a :class:`WorkerRecord` — its thread, a heartbeat
  timestamp (beaten on every queue poll and job claim) and the job it
  currently holds, claimed under the scheduler's lock;
* a watchdog thread sweeps the records: a **dead** thread that did not
  exit cleanly is reaped (its claimed job handed to ``on_reap`` for
  exactly-once requeue) and replaced; a thread whose claimed job has
  outlived ``task_deadline_s`` with no completion is declared **hung**
  — the record is *abandoned* (the zombie thread keeps running but its
  claim is revoked, so whatever it eventually produces is discarded),
  the job is reaped, and a fresh worker takes its slot;
* replacements are throttled by exponential backoff and a
  **restart-storm** budget: more than ``max_restarts`` replacements in
  ``restart_window_s`` means something is systemically wrong — the
  supervisor stops replacing and fires ``on_storm`` so the service can
  degrade to draining mode instead of burning CPU in a crash loop.

The supervisor knows nothing about queues or stores: the service
passes a ``worker_main(record)`` loop and two callbacks.  Reap
exactly-once is guaranteed structurally — a record's job is handed to
``on_reap`` at most once (death and hang paths both clear it), and the
scheduler's claim tokens make any later write by a zombie a no-op.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable

__all__ = ["WorkerRecord", "WorkerSupervisor"]


class WorkerRecord:
    """One worker slot: the thread, its heartbeat and its claim."""

    def __init__(self, name: str, generation: int,
                 clock: Callable[[], float]):
        self.name = name
        self.generation = generation
        self._clock = clock
        self.thread: threading.Thread | None = None
        self.job = None                 # the claimed Job, if any
        self.claimed_s: float | None = None
        self.heartbeat_s = clock()
        self.abandoned = False          # hung: claim revoked, zombie
        self.retired = False            # exited its loop cleanly
        self.reaped = False             # death already handled

    @property
    def token(self) -> str:
        """The claim token this worker stamps on jobs it runs."""
        return f"{self.name}#{self.generation}"

    def beat(self) -> None:
        self.heartbeat_s = self._clock()

    def heartbeat_age_s(self) -> float:
        return self._clock() - self.heartbeat_s

    def claim_job(self, job) -> None:
        self.job = job
        self.claimed_s = self._clock()
        self.beat()

    def release_job(self) -> None:
        self.job = None
        self.claimed_s = None


class WorkerSupervisor:
    """Spawn, watch, reap and replace the service's worker threads."""

    def __init__(self, worker_main: Callable[[WorkerRecord], None],
                 workers: int, *,
                 task_deadline_s: float = 300.0,
                 watchdog_poll_s: float = 0.25,
                 max_restarts: int = 8,
                 restart_window_s: float = 60.0,
                 restart_backoff_s: float = 0.05,
                 on_reap: "Callable[[WorkerRecord, str], None] | None" = None,
                 on_storm: "Callable[[], None] | None" = None,
                 name_prefix: str = "scan-worker",
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep):
        self.worker_main = worker_main
        self.workers = workers
        self.task_deadline_s = task_deadline_s
        self.watchdog_poll_s = watchdog_poll_s
        self.max_restarts = max_restarts
        self.restart_window_s = restart_window_s
        self.restart_backoff_s = restart_backoff_s
        self.on_reap = on_reap or (lambda record, reason: None)
        self.on_storm = on_storm or (lambda: None)
        self.name_prefix = name_prefix
        self._clock = clock
        self._sleep = sleep
        self._lock = threading.Lock()
        self._records: list[WorkerRecord] = []
        self._generation = 0
        self._restart_times: deque[float] = deque()
        self._stop = threading.Event()
        self._watchdog: threading.Thread | None = None
        self.restarts = 0
        self.reaps_died = 0
        self.reaps_hung = 0
        self.storm_tripped = False

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        for index in range(self.workers):
            self._spawn(f"{self.name_prefix}-{index}")
        self._watchdog = threading.Thread(
            target=self._watch_loop, name=f"{self.name_prefix}-watchdog",
            daemon=True)
        self._watchdog.start()

    def stop(self) -> None:
        """Stop the watchdog (workers exit through the service's own
        draining flag; join them with :meth:`join`)."""
        self._stop.set()
        if self._watchdog is not None:
            self._watchdog.join(timeout=2.0)

    def abandon_all(self) -> None:
        """Chaos-style abrupt death: revoke every worker's slot at
        once, with no drain and no reaping.  Each loop exits at its
        next poll; a worker mid-campaign becomes a zombie whose claim
        token no longer matters because the whole node is dead to its
        fleet — its eventual result is simply never consulted."""
        self._stop.set()
        for record in list(self._records):
            record.abandoned = True
        if self._watchdog is not None:
            self._watchdog.join(timeout=2.0)

    def join(self, deadline_s: float) -> None:
        deadline = time.monotonic() + deadline_s
        for record in list(self._records):
            if record.thread is not None:
                record.thread.join(
                    max(0.0, deadline - time.monotonic()))

    # -- spawning ----------------------------------------------------------
    def _spawn(self, name: str) -> WorkerRecord:
        with self._lock:
            self._generation += 1
            record = WorkerRecord(name, self._generation, self._clock)
            self._records.append(record)
        thread = threading.Thread(target=self._entry, args=(record,),
                                  name=record.token, daemon=True)
        record.thread = thread
        thread.start()
        return record

    def _entry(self, record: WorkerRecord) -> None:
        try:
            self.worker_main(record)
            record.retired = True       # clean exit (drain / abandoned)
        except BaseException:  # noqa: BLE001 - death IS the signal
            pass                        # retired stays False: watchdog reaps

    # -- the watchdog ------------------------------------------------------
    def _watch_loop(self) -> None:
        while not self._stop.wait(self.watchdog_poll_s):
            self.check_once()

    def check_once(self) -> None:
        """One watchdog sweep (public so tests and the chaos harness
        can drive detection without waiting for the poll interval)."""
        now = self._clock()
        for record in list(self._records):
            thread = record.thread
            if thread is None:
                continue
            if not thread.is_alive():
                if record.retired or record.reaped:
                    self._forget_if_done(record)
                    continue
                # Died mid-loop: reap the claim, replace the slot.
                record.reaped = True
                self.reaps_died += 1
                self.on_reap(record, "died")
                self._replace(record.name)
                continue
            if record.abandoned or record.job is None \
                    or record.claimed_s is None:
                continue
            if now - record.claimed_s > self.task_deadline_s:
                # Hung inside a task: revoke by abandonment.  The
                # zombie thread finishes eventually and exits; its
                # claim token no longer matches, so its result is
                # discarded by the scheduler.
                record.abandoned = True
                self.reaps_hung += 1
                self.on_reap(record, "hung")
                self._replace(record.name)

    def _forget_if_done(self, record: WorkerRecord) -> None:
        if record.job is None:
            with self._lock:
                if record in self._records:
                    self._records.remove(record)

    def _replace(self, name: str) -> None:
        if self._stop.is_set():
            return
        now = self._clock()
        while self._restart_times and \
                now - self._restart_times[0] > self.restart_window_s:
            self._restart_times.popleft()
        if len(self._restart_times) >= self.max_restarts:
            if not self.storm_tripped:
                self.storm_tripped = True
                self.on_storm()
            return
        self._restart_times.append(now)
        self.restarts += 1
        backoff = self.restart_backoff_s * \
            (2 ** max(0, len(self._restart_times) - 1))
        if backoff > 0:
            self._sleep(min(backoff, 1.0))
        self._spawn(name)

    # -- observability -----------------------------------------------------
    def alive(self) -> int:
        return sum(1 for record in self._records
                   if record.thread is not None
                   and record.thread.is_alive()
                   and not record.abandoned)

    def stats(self) -> dict:
        beats = [record.heartbeat_age_s() for record in self._records
                 if record.thread is not None
                 and record.thread.is_alive() and not record.abandoned]
        return {
            "alive": self.alive(),
            "configured": self.workers,
            "restarts": self.restarts,
            "reaps": {"died": self.reaps_died, "hung": self.reaps_hung},
            "storm": self.storm_tripped,
            "max_heartbeat_age_s": max(beats) if beats else 0.0,
        }

"""Per-tenant API keys with admission-time quota enforcement.

A fleet serving many teams cannot let one hot client starve the rest
or silently burn the whole capacity budget, so admission (the fleet
coordinator's ``submit`` and each node's ``POST /scans``) consults a
:class:`TenantBook` *before* any module is parsed or queued:

* an unknown (or missing, when keys are required) API key is refused
  with the typed :class:`UnknownApiKey` — HTTP 401, never a scan;
* a known tenant passes through a **token-bucket rate limit**
  (``rate_per_s`` sustained, ``burst`` instantaneous) and an optional
  **absolute submission quota** (``max_submissions`` over the book's
  lifetime).  Either bound exhausted raises :class:`QuotaExceeded` —
  a :class:`~repro.service.queue.QueueFull` subclass with
  ``kind="quota"``, so the HTTP layer sheds it as the same typed 429
  + ``Retry-After`` schema the disk-budget and queue-depth sheds use.

The book is a pure state machine over an injectable monotonic clock:
no threads, no sleeps, deterministic under test.  Buckets refill
continuously (``elapsed * rate``), so ``retry_after_s`` is an exact
hint — the earliest instant the next token exists — not a guess.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from .queue import QueueFull

__all__ = ["TenantBook", "TenantQuota", "QuotaExceeded",
           "UnknownApiKey"]


class UnknownApiKey(Exception):
    """The API key is missing or matches no registered tenant."""


class QuotaExceeded(QueueFull):
    """A tenant's rate limit or absolute quota is exhausted: the
    submission is shed with the service's standard typed-429 schema
    (``kind="quota"``) before it costs any parsing or queue space."""

    def __init__(self, message: str, *, tenant: str, depth: int,
                 limit: int, retry_after_s: float):
        super().__init__(message, depth=depth, limit=limit,
                         kind="quota", retry_after_s=retry_after_s)
        self.tenant = tenant


class TenantQuota:
    """One tenant's admission state: identity + bucket + counters."""

    def __init__(self, name: str, *, rate_per_s: float | None = None,
                 burst: int = 10, max_submissions: int | None = None):
        self.name = name
        self.rate_per_s = rate_per_s
        self.burst = max(1, burst)
        self.max_submissions = max_submissions
        self.tokens = float(self.burst)
        self.refilled_s: float | None = None
        self.admitted = 0
        self.shed = 0


class TenantBook:
    """API-key registry + admission gate for a node or a fleet."""

    def __init__(self, *, require_key: bool = False,
                 clock: Callable[[], float] = time.monotonic):
        self.require_key = require_key
        self._clock = clock
        self._lock = threading.Lock()
        self._by_key: dict[str, TenantQuota] = {}

    @classmethod
    def from_doc(cls, doc: dict, *,
                 clock: Callable[[], float] = time.monotonic
                 ) -> "TenantBook":
        """Build a book from operator config::

            {"require_key": true,
             "tenants": [{"name": "teamA", "api_key": "ka",
                          "rate_per_s": 5, "burst": 10,
                          "max_submissions": 1000}, ...]}
        """
        book = cls(require_key=bool(doc.get("require_key", False)),
                   clock=clock)
        for entry in doc.get("tenants", ()):
            book.register(
                str(entry["name"]), str(entry["api_key"]),
                rate_per_s=(float(entry["rate_per_s"])
                            if entry.get("rate_per_s") is not None
                            else None),
                burst=int(entry.get("burst", 10)),
                max_submissions=(int(entry["max_submissions"])
                                 if entry.get("max_submissions")
                                 is not None else None))
        return book

    def register(self, name: str, api_key: str, *,
                 rate_per_s: float | None = None, burst: int = 10,
                 max_submissions: int | None = None) -> None:
        with self._lock:
            self._by_key[api_key] = TenantQuota(
                name, rate_per_s=rate_per_s, burst=burst,
                max_submissions=max_submissions)

    def validate(self, api_key: str | None) -> None:
        """Cheap identity check without charging anything: raises
        :class:`UnknownApiKey` exactly when :meth:`admit` would.  Used
        where a request might be redirected elsewhere (wrong shard) —
        the owning node is the one that charges the quota, so a
        redirect must cost the tenant nothing here."""
        if api_key is None:
            if self.require_key:
                raise UnknownApiKey(
                    "an API key is required (X-Api-Key header or "
                    "api_key body field)")
            return
        with self._lock:
            if api_key not in self._by_key:
                raise UnknownApiKey("unknown API key")

    def admit(self, api_key: str | None) -> str | None:
        """Charge one submission against ``api_key``'s tenant.

        Returns the tenant name (``None`` for an anonymous submission
        when keys are optional).  Raises :class:`UnknownApiKey` or
        :class:`QuotaExceeded`; on success the tenant's bucket is
        debited atomically, so concurrent admission threads can never
        overspend a quota."""
        if api_key is None:
            if self.require_key:
                raise UnknownApiKey(
                    "an API key is required (X-Api-Key header or "
                    "api_key body field)")
            return None
        with self._lock:
            tenant = self._by_key.get(api_key)
            if tenant is None:
                raise UnknownApiKey("unknown API key")
            if tenant.max_submissions is not None \
                    and tenant.admitted >= tenant.max_submissions:
                tenant.shed += 1
                raise QuotaExceeded(
                    f"tenant {tenant.name!r} exhausted its "
                    f"{tenant.max_submissions}-submission quota",
                    tenant=tenant.name, depth=tenant.admitted,
                    limit=tenant.max_submissions,
                    retry_after_s=3600.0)
            if tenant.rate_per_s is not None:
                now = self._clock()
                if tenant.refilled_s is not None:
                    tenant.tokens = min(
                        float(tenant.burst),
                        tenant.tokens
                        + (now - tenant.refilled_s) * tenant.rate_per_s)
                tenant.refilled_s = now
                if tenant.tokens < 1.0:
                    tenant.shed += 1
                    wait_s = (1.0 - tenant.tokens) / tenant.rate_per_s
                    raise QuotaExceeded(
                        f"tenant {tenant.name!r} over its "
                        f"{tenant.rate_per_s:g}/s rate limit",
                        tenant=tenant.name, depth=tenant.burst,
                        limit=tenant.burst, retry_after_s=wait_s)
                tenant.tokens -= 1.0
            tenant.admitted += 1
            return tenant.name

    def snapshot(self) -> dict:
        """Per-tenant admission counters for ``/stats``."""
        with self._lock:
            return {
                tenant.name: {
                    "admitted": tenant.admitted,
                    "shed": tenant.shed,
                    "rate_per_s": tenant.rate_per_s,
                    "max_submissions": tenant.max_submissions,
                }
                for tenant in self._by_key.values()
            }

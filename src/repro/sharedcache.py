"""Cross-process warm caching: a shared on-disk cache tier.

The parallel executor runs campaigns in separate worker processes
(``parallel/executor.py``), so the in-memory instrumentation and solver
caches are per-worker: at ``--jobs 4`` every worker re-instruments and
re-solves what a sibling already computed.  This module provides the
shared tier both caches promote into — one file per key under a cache
directory, so siblings (and later runs pointed at the same directory)
start warm.

Concurrency model: writers serialise into a unique temporary file in
the cache directory and ``os.replace`` it over the final name, so
readers only ever observe complete entries (rename is atomic on POSIX).
Two workers racing on the same key both write the same deterministic
content; last rename wins and nothing is lost.  Any read error — a
missing file, a truncated entry from a legacy crash, a corrupt pickle —
degrades to a cache miss, never to a failure of the campaign.

The tier is off by default (``shared_cache_dir()`` is None) and enabled
either programmatically via :func:`configure_shared_cache` or through
the ``REPRO_CACHE_DIR`` environment variable, which worker processes
inherit on fork.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
import tempfile

__all__ = ["SharedDiskCache", "configure_shared_cache", "shared_cache_dir"]

_CACHE_DIR: str | None = os.environ.get("REPRO_CACHE_DIR") or None

# Keys become file names; digests pass through untouched, anything
# else is re-hashed so hostile key material cannot escape the dir.
_SAFE_KEY = re.compile(r"^[A-Za-z0-9_.-]{1,200}$")


def configure_shared_cache(directory: "str | os.PathLike | None",
                           ) -> str | None:
    """Set (or, with None, disable) the process-wide cache directory.

    Returns the new directory.  Existing :class:`SharedDiskCache`
    instances that were created without an explicit directory pick the
    change up immediately — they resolve the directory per operation.
    """
    global _CACHE_DIR
    _CACHE_DIR = os.fspath(directory) if directory else None
    return _CACHE_DIR


def shared_cache_dir() -> str | None:
    """The process-wide shared cache directory (None when disabled)."""
    return _CACHE_DIR


class SharedDiskCache:
    """File-per-key cache namespace under the shared cache directory.

    ``serializer`` selects the on-disk encoding: "pickle" for arbitrary
    object graphs (instrumented modules), "json" for plain data (solver
    verdicts) where a human-inspectable entry is worth more than
    generality.  A cache created without ``directory`` follows the
    process-wide setting dynamically, so it can sit in a module global
    and still honour a later :func:`configure_shared_cache` call or the
    inherited ``REPRO_CACHE_DIR`` of a worker process.
    """

    def __init__(self, namespace: str, directory: str | None = None,
                 serializer: str = "pickle"):
        if serializer not in ("pickle", "json"):
            raise ValueError(f"unknown serializer {serializer!r}")
        if not _SAFE_KEY.match(namespace):
            raise ValueError(f"invalid cache namespace {namespace!r}")
        self.namespace = namespace
        self._directory = os.fspath(directory) if directory else None
        self.serializer = serializer
        self.hits = 0
        self.misses = 0
        self.errors = 0

    # -- plumbing --------------------------------------------------------
    def _root(self) -> str | None:
        return self._directory if self._directory is not None else _CACHE_DIR

    @property
    def enabled(self) -> bool:
        return self._root() is not None

    def _path(self, key: str) -> str | None:
        root = self._root()
        if root is None:
            return None
        if not _SAFE_KEY.match(key):
            key = hashlib.sha256(key.encode("utf-8")).hexdigest()
        suffix = "json" if self.serializer == "json" else "bin"
        return os.path.join(root, self.namespace, f"{key}.{suffix}")

    # -- cache interface -------------------------------------------------
    def get(self, key: str):
        """The stored value, or None on a miss (including any entry
        that fails to read back — corruption degrades to a miss)."""
        path = self._path(key)
        if path is None:
            return None
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
            if self.serializer == "json":
                value = json.loads(blob.decode("utf-8"))
            else:
                value = pickle.loads(blob)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            self.errors += 1
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, key: str, value) -> bool:
        """Store ``value`` atomically; returns False when the tier is
        disabled or the write fails (a full disk must not kill the
        campaign — the entry is simply not shared)."""
        path = self._path(key)
        if path is None:
            return False
        try:
            if self.serializer == "json":
                blob = json.dumps(value, sort_keys=True).encode("utf-8")
            else:
                blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            parent = os.path.dirname(path)
            os.makedirs(parent, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(dir=parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp_path, path)
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
        except Exception:
            self.errors += 1
            return False
        return True

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats_dict(self) -> dict[str, "int | float"]:
        return {"disk_hits": self.hits, "disk_misses": self.misses,
                "disk_errors": self.errors, "disk_hit_rate": self.hit_rate,
                "enabled": self.enabled}

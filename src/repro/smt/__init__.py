"""repro.smt — a pure-Python SMT layer over bitvectors.

This package replaces the Z3 backend the WASAI paper uses (see
DESIGN.md, "Substitutions").  It provides:

* :mod:`repro.smt.terms` — hash-consed bitvector/boolean expressions
  with a z3py-flavoured construction API,
* :mod:`repro.smt.solver` — a layered solver (rewriting, interval
  propagation, bit-blasting into a CDCL SAT solver),
* :mod:`repro.smt.sat` / :mod:`repro.smt.bitblast` — the complete
  decision procedure.
"""

from .sat import SAT, UNKNOWN, UNSAT, SatSolver
from .solver import (Model, Solver, SolverCache, SolverStats,
                     configure_solver_cache, solver_cache)
from .terms import (And, BitVec, BitVecVal, BoolVal, Clz, Concat, Ctz, Eq,
                    Extract, FALSE, Implies, Ite, Ne, Not, Or, Popcnt, Rotl,
                    Rotr, SGE, SGT, SLE, SLT, SignExt, TRUE, Term, UGE, UGT,
                    ULE, ULT, Xor, ZeroExt, evaluate, free_variables, mask,
                    substitute, to_signed, to_unsigned)
from .terms import AShr, SDiv, SRem, UDiv, URem

__all__ = [
    "SAT", "UNKNOWN", "UNSAT", "SatSolver", "Model", "Solver", "SolverStats",
    "SolverCache", "solver_cache", "configure_solver_cache",
    "And", "BitVec", "BitVecVal", "BoolVal", "Clz", "Concat", "Ctz", "Eq",
    "Extract", "FALSE", "Implies", "Ite", "Ne", "Not", "Or", "Popcnt",
    "Rotl", "Rotr", "SGE", "SGT", "SLE", "SLT", "SignExt", "TRUE", "Term",
    "UGE", "UGT", "ULE", "ULT", "Xor", "ZeroExt", "evaluate",
    "free_variables", "mask", "substitute", "to_signed", "to_unsigned",
    "AShr", "SDiv", "SRem", "UDiv", "URem",
]

"""Tseitin bit-blasting of bitvector terms to CNF.

The complete back end of :mod:`repro.smt.solver`: every bitvector term
is translated into per-bit SAT literals, and boolean terms into single
literals, over a shared :class:`~repro.smt.sat.SatSolver` instance.

Encodings are the textbook ones — ripple-carry adders, shift-add
multipliers, barrel shifters for variable shift amounts, and an adder
tree for ``popcnt`` (which the paper's obfuscation benchmark leans on).
"""

from __future__ import annotations

from .sat import SatSolver
from .terms import Term, mask

__all__ = ["BitBlaster"]


class BitBlaster:
    """Translate terms into clauses of a :class:`SatSolver`.

    Bitvectors become lists of literals, LSB first.  The blaster caches
    per-term encodings, so shared sub-terms (the common case with
    hash-consed DAGs) are encoded once.
    """

    def __init__(self, solver: SatSolver):
        self.solver = solver
        self._bv_cache: dict[int, list[int]] = {}
        self._bool_cache: dict[int, int] = {}
        self._true_lit: int | None = None
        self.var_bits: dict[str, list[int]] = {}

    # -- literal helpers -------------------------------------------------
    def true_lit(self) -> int:
        if self._true_lit is None:
            self._true_lit = self.solver.new_var()
            self.solver.add_clause([self._true_lit])
        return self._true_lit

    def false_lit(self) -> int:
        return -self.true_lit()

    def const_bits(self, value: int, width: int) -> list[int]:
        t = self.true_lit()
        return [t if (value >> i) & 1 else -t for i in range(width)]

    def fresh(self) -> int:
        return self.solver.new_var()

    # -- gates -------------------------------------------------------------
    def gate_and(self, a: int, b: int) -> int:
        if a == b:
            return a
        if a == -b:
            return self.false_lit()
        out = self.fresh()
        self.solver.add_clause([-out, a])
        self.solver.add_clause([-out, b])
        self.solver.add_clause([out, -a, -b])
        return out

    def gate_or(self, a: int, b: int) -> int:
        return -self.gate_and(-a, -b)

    def gate_xor(self, a: int, b: int) -> int:
        if a == b:
            return self.false_lit()
        if a == -b:
            return self.true_lit()
        out = self.fresh()
        self.solver.add_clause([-out, a, b])
        self.solver.add_clause([-out, -a, -b])
        self.solver.add_clause([out, -a, b])
        self.solver.add_clause([out, a, -b])
        return out

    def gate_mux(self, sel: int, then: int, other: int) -> int:
        """``sel ? then : other``."""
        if then == other:
            return then
        out = self.fresh()
        self.solver.add_clause([-out, -sel, then])
        self.solver.add_clause([-out, sel, other])
        self.solver.add_clause([out, -sel, -then])
        self.solver.add_clause([out, sel, -other])
        return out

    def gate_and_many(self, lits: list[int]) -> int:
        out = self.true_lit()
        for lit in lits:
            out = self.gate_and(out, lit)
        return out

    def gate_or_many(self, lits: list[int]) -> int:
        out = self.false_lit()
        for lit in lits:
            out = self.gate_or(out, lit)
        return out

    # -- arithmetic building blocks -----------------------------------------
    def full_adder(self, a: int, b: int, cin: int) -> tuple[int, int]:
        s = self.gate_xor(self.gate_xor(a, b), cin)
        carry = self.gate_or(self.gate_and(a, b),
                             self.gate_and(cin, self.gate_xor(a, b)))
        return s, carry

    def adder(self, xs: list[int], ys: list[int], cin: int) -> list[int]:
        out = []
        carry = cin
        for a, b in zip(xs, ys):
            s, carry = self.full_adder(a, b, carry)
            out.append(s)
        return out

    def negate(self, xs: list[int]) -> list[int]:
        inverted = [-x for x in xs]
        return self.adder(inverted, self.const_bits(0, len(xs)), self.true_lit())

    def subtract(self, xs: list[int], ys: list[int]) -> list[int]:
        return self.adder(xs, [-y for y in ys], self.true_lit())

    def multiplier(self, xs: list[int], ys: list[int]) -> list[int]:
        width = len(xs)
        acc = self.const_bits(0, width)
        for i, y in enumerate(ys):
            partial = ([self.false_lit()] * i
                       + [self.gate_and(x, y) for x in xs[: width - i]])
            acc = self.adder(acc, partial, self.false_lit())
        return acc

    def less_than(self, xs: list[int], ys: list[int], signed: bool) -> int:
        """Literal that is true iff xs < ys."""
        lt = self.false_lit()
        # Walk from LSB to MSB so the last comparison dominates.
        pairs = list(zip(xs, ys))
        msb_index = len(pairs) - 1
        for i, (a, b) in enumerate(pairs):
            if signed and i == msb_index:
                # For the sign bit the sense flips: a=1,b=0 means a < b.
                bit_lt = self.gate_and(a, -b)
            else:
                bit_lt = self.gate_and(-a, b)
            eq = -self.gate_xor(a, b)
            lt = self.gate_or(bit_lt, self.gate_and(eq, lt))
        return lt

    def equals(self, xs: list[int], ys: list[int]) -> int:
        eqs = [-self.gate_xor(a, b) for a, b in zip(xs, ys)]
        return self.gate_and_many(eqs)

    def shifter(self, xs: list[int], amount: list[int], kind: str) -> list[int]:
        """Barrel shifter. ``kind`` in {shl, lshr, ashr, rotl, rotr}.

        Wasm semantics: the shift amount is taken modulo the width, so
        only the low log2(width) bits of ``amount`` participate.
        """
        width = len(xs)
        stages = max(1, (width - 1).bit_length())
        cur = list(xs)
        fill = xs[-1] if kind == "ashr" else self.false_lit()
        for stage in range(stages):
            shift = 1 << stage
            sel = amount[stage] if stage < len(amount) else self.false_lit()
            nxt = []
            for i in range(width):
                if kind == "shl":
                    src = cur[i - shift] if i - shift >= 0 else self.false_lit()
                elif kind in ("lshr", "ashr"):
                    src = cur[i + shift] if i + shift < width else fill
                elif kind == "rotl":
                    src = cur[(i - shift) % width]
                else:  # rotr
                    src = cur[(i + shift) % width]
                nxt.append(self.gate_mux(sel, src, cur[i]))
            cur = nxt
        return cur

    def popcount(self, xs: list[int]) -> list[int]:
        """Population count as a chain of 1-bit additions."""
        width = len(xs)
        total = self.const_bits(0, width)
        for x in xs:
            one = [x] + [self.false_lit()] * (width - 1)
            total = self.adder(total, one, self.false_lit())
        return total

    # -- term translation ----------------------------------------------------
    def blast_bv(self, term: Term) -> list[int]:
        cached = self._bv_cache.get(id(term))
        if cached is not None:
            return cached
        bits = self._blast_bv(term)
        assert len(bits) == term.width, (term.op, len(bits), term.width)
        self._bv_cache[id(term)] = bits
        return bits

    def _blast_bv(self, term: Term) -> list[int]:
        op = term.op
        width = term.width
        if op == "bvconst":
            return self.const_bits(term.const_value(), width)
        if op == "bvvar":
            name = term.payload[0]
            if name not in self.var_bits:
                self.var_bits[name] = [self.fresh() for _ in range(width)]
            return self.var_bits[name]
        if op in ("bvadd", "bvsub", "bvmul", "bvand", "bvor", "bvxor",
                  "bvshl", "bvlshr", "bvashr", "bvrotl", "bvrotr",
                  "bvudiv", "bvurem", "bvsdiv", "bvsrem"):
            xs = self.blast_bv(term.args[0])
            ys = self.blast_bv(term.args[1])
            if op == "bvadd":
                return self.adder(xs, ys, self.false_lit())
            if op == "bvsub":
                return self.subtract(xs, ys)
            if op == "bvmul":
                return self.multiplier(xs, ys)
            if op == "bvand":
                return [self.gate_and(a, b) for a, b in zip(xs, ys)]
            if op == "bvor":
                return [self.gate_or(a, b) for a, b in zip(xs, ys)]
            if op == "bvxor":
                return [self.gate_xor(a, b) for a, b in zip(xs, ys)]
            if op in ("bvshl", "bvlshr", "bvashr", "bvrotl", "bvrotr"):
                kind = {"bvshl": "shl", "bvlshr": "lshr", "bvashr": "ashr",
                        "bvrotl": "rotl", "bvrotr": "rotr"}[op]
                return self.shifter(xs, ys, kind)
            return self._division(op, xs, ys)
        if op == "bvnot":
            return [-x for x in self.blast_bv(term.args[0])]
        if op == "bvneg":
            xs = self.blast_bv(term.args[0])
            return self.adder([-x for x in xs], self.const_bits(0, width),
                              self.true_lit())
        if op == "bvpopcnt":
            return self.popcount(self.blast_bv(term.args[0]))
        if op in ("bvclz", "bvctz"):
            return self._count_zeros(op, self.blast_bv(term.args[0]))
        if op == "concat":
            bits: list[int] = []
            for part in reversed(term.args):  # LSB-first storage
                bits.extend(self.blast_bv(part))
            return bits
        if op == "extract":
            hi, lo = term.payload
            return self.blast_bv(term.args[0])[lo:hi + 1]
        if op == "zeroext":
            inner = self.blast_bv(term.args[0])
            return inner + [self.false_lit()] * term.payload[0]
        if op == "signext":
            inner = self.blast_bv(term.args[0])
            return inner + [inner[-1]] * term.payload[0]
        if op == "ite":
            sel = self.blast_bool(term.args[0])
            xs = self.blast_bv(term.args[1])
            ys = self.blast_bv(term.args[2])
            return [self.gate_mux(sel, a, b) for a, b in zip(xs, ys)]
        raise ValueError(f"cannot bit-blast bitvector op {op}")

    def _division(self, op: str, xs: list[int], ys: list[int]) -> list[int]:
        """Encode division via the multiplication identity
        ``n = q*d + r`` with ``r < d`` when ``d != 0``; Wasm traps on
        division by zero, but WASAI's traces never reach that case, so
        we use the SMT-LIB convention (q = all-ones, r = n)."""
        width = len(xs)
        if op in ("bvsdiv", "bvsrem"):
            # Lower signed division onto unsigned via sign/magnitude.
            sign_x, sign_y = xs[-1], ys[-1]
            ax = self._abs(xs)
            ay = self._abs(ys)
            q = self._division("bvudiv", ax, ay)
            r = self._division("bvurem", ax, ay)
            if op == "bvsdiv":
                neg = self.gate_xor(sign_x, sign_y)
                nq = self.adder([-b for b in q], self.const_bits(0, width),
                                self.true_lit())
                return [self.gate_mux(neg, a, b) for a, b in zip(nq, q)]
            nr = self.adder([-b for b in r], self.const_bits(0, width),
                            self.true_lit())
            return [self.gate_mux(sign_x, a, b) for a, b in zip(nr, r)]
        q = [self.fresh() for _ in range(width)]
        r = [self.fresh() for _ in range(width)]
        d_zero = self.gate_and_many([-y for y in ys])
        # q*d (full 2w product must not overflow): extend to 2w bits.
        ext = [self.false_lit()] * width
        prod = self.multiplier_wide(q, ys)
        total = self.adder(prod, r + ext, self.false_lit())
        n_ext = xs + ext
        ok = self.equals(total, n_ext)
        r_lt_d = self.less_than(r, ys, signed=False)
        q_ones = self.equals(q, self.const_bits(mask(width), width))
        r_eq_n = self.equals(r, xs)
        # d != 0 -> (n == q*d + r and r < d); d == 0 -> q=~0, r=n.
        self.solver.add_clause([d_zero, ok])
        self.solver.add_clause([d_zero, r_lt_d])
        self.solver.add_clause([-d_zero, q_ones])
        self.solver.add_clause([-d_zero, r_eq_n])
        return q if op == "bvudiv" else r

    def multiplier_wide(self, xs: list[int], ys: list[int]) -> list[int]:
        """Full 2w-bit product of two w-bit inputs."""
        width = len(xs)
        out_width = 2 * width
        acc = self.const_bits(0, out_width)
        for i, y in enumerate(ys):
            partial = ([self.false_lit()] * i
                       + [self.gate_and(x, y) for x in xs]
                       + [self.false_lit()] * (out_width - i - width))
            acc = self.adder(acc, partial, self.false_lit())
        return acc

    def _abs(self, xs: list[int]) -> list[int]:
        width = len(xs)
        neg = self.adder([-x for x in xs], self.const_bits(0, width),
                         self.true_lit())
        sign = xs[-1]
        return [self.gate_mux(sign, n, x) for n, x in zip(neg, xs)]

    def _count_zeros(self, op: str, xs: list[int]) -> list[int]:
        """clz/ctz via a chain of 'still counting' flags."""
        width = len(xs)
        order = list(reversed(xs)) if op == "bvclz" else list(xs)
        counting = self.true_lit()
        total = self.const_bits(0, width)
        for bit in order:
            cell = self.gate_and(counting, -bit)
            one = [cell] + [self.false_lit()] * (width - 1)
            total = self.adder(total, one, self.false_lit())
            counting = cell
        return total

    # -- boolean terms ---------------------------------------------------------
    def blast_bool(self, term: Term) -> int:
        cached = self._bool_cache.get(id(term))
        if cached is not None:
            return cached
        lit = self._blast_bool(term)
        self._bool_cache[id(term)] = lit
        return lit

    def _blast_bool(self, term: Term) -> int:
        op = term.op
        if op == "true":
            return self.true_lit()
        if op == "false":
            return self.false_lit()
        if op == "not":
            return -self.blast_bool(term.args[0])
        if op == "and":
            return self.gate_and_many([self.blast_bool(a) for a in term.args])
        if op == "or":
            return self.gate_or_many([self.blast_bool(a) for a in term.args])
        if op == "xor":
            return self.gate_xor(self.blast_bool(term.args[0]),
                                 self.blast_bool(term.args[1]))
        if op == "eq":
            lhs, rhs = term.args
            if lhs.is_bool():
                return -self.gate_xor(self.blast_bool(lhs), self.blast_bool(rhs))
            return self.equals(self.blast_bv(lhs), self.blast_bv(rhs))
        if op in ("bvult", "bvule", "bvslt", "bvsle"):
            xs = self.blast_bv(term.args[0])
            ys = self.blast_bv(term.args[1])
            signed = op.startswith("bvs")
            if op.endswith("lt"):
                return self.less_than(xs, ys, signed)
            return -self.less_than(ys, xs, signed)
        raise ValueError(f"cannot bit-blast boolean op {op}")

    def assert_term(self, term: Term) -> None:
        """Assert a boolean term as a top-level constraint."""
        self.solver.add_clause([self.blast_bool(term)])

    # -- model decoding ----------------------------------------------------------
    def decode(self, model: dict[int, bool]) -> dict[str, int]:
        """Turn a SAT model into unsigned integer variable values."""
        out: dict[str, int] = {}
        for name, bits in self.var_bits.items():
            value = 0
            for i, lit in enumerate(bits):
                bit = model.get(abs(lit), False)
                if lit < 0:
                    bit = not bit
                if bit:
                    value |= 1 << i
            out[name] = value
        return out

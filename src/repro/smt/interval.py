"""Unsigned interval domain used by the solver's propagation fast path.

Most constraints WASAI flips are of the shape ``input <op> constant``
(Listing 4's entry guards, the complicated-verification injections of
RQ3, asset-amount thresholds ...).  Those are decided here without
touching the SAT back end, which is what keeps the fuzzer's throughput
competitive — the same trade the paper makes by capping Z3 at 3,000 ms
per query.
"""

from __future__ import annotations

from .terms import Term, mask, to_signed, to_unsigned

__all__ = ["Interval", "propagate_comparison"]


class Interval:
    """A closed unsigned interval ``[lo, hi]`` over ``width`` bits,
    optionally with a set of excluded point values."""

    __slots__ = ("width", "lo", "hi", "holes")

    def __init__(self, width: int, lo: int = 0, hi: int | None = None,
                 holes: frozenset[int] | None = None):
        self.width = width
        self.lo = lo
        self.hi = mask(width) if hi is None else hi
        self.holes = holes or frozenset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Interval[{self.lo}, {self.hi}]w{self.width}"

    def is_empty(self) -> bool:
        if self.lo > self.hi:
            return True
        size = self.hi - self.lo + 1
        if len(self.holes) >= size:
            covered = sum(1 for h in self.holes if self.lo <= h <= self.hi)
            return covered >= size
        return False

    def with_bounds(self, lo: int | None = None, hi: int | None = None) -> "Interval":
        return Interval(self.width,
                        self.lo if lo is None else max(self.lo, lo),
                        self.hi if hi is None else min(self.hi, hi),
                        self.holes)

    def without(self, value: int) -> "Interval":
        if value == self.lo:
            return Interval(self.width, self.lo + 1, self.hi, self.holes)
        if value == self.hi:
            return Interval(self.width, self.lo, self.hi - 1, self.holes)
        return Interval(self.width, self.lo, self.hi, self.holes | {value})

    def pick(self) -> int | None:
        """Choose a witness value, preferring small ones."""
        candidate = self.lo
        while candidate <= self.hi:
            if candidate not in self.holes:
                return candidate
            candidate += 1
        return None


def propagate_comparison(op: str, var_interval: Interval, constant: int,
                         var_on_left: bool) -> Interval | None:
    """Refine ``var_interval`` by ``var <op> constant`` (or the mirrored
    form).  Returns None when the constraint shape is not supported by
    the unsigned domain (signed compares fall through to SAT)."""
    width = var_interval.width
    c = to_unsigned(constant, width)
    if op == "eq":
        return var_interval.with_bounds(lo=c, hi=c)
    if op == "ne":
        return var_interval.without(c)
    if op in ("bvslt", "bvsle"):
        return _propagate_signed(op, var_interval, c, var_on_left)
    if op == "bvult":
        if var_on_left:
            if c == 0:
                return Interval(width, 1, 0)  # empty
            return var_interval.with_bounds(hi=c - 1)
        if c == mask(width):
            return Interval(width, 1, 0)
        return var_interval.with_bounds(lo=c + 1)
    if op == "bvule":
        if var_on_left:
            return var_interval.with_bounds(hi=c)
        return var_interval.with_bounds(lo=c)
    return None


def _propagate_signed(op: str, var_interval: Interval, c: int,
                      var_on_left: bool) -> Interval | None:
    """Signed comparisons only propagate when the constant and the
    interval live in a single sign half; otherwise defer to SAT."""
    width = var_interval.width
    half = 1 << (width - 1)
    sc = to_signed(c, width)
    # Non-negative half only: then signed order == unsigned order.
    if sc >= 0 and var_interval.hi < half:
        unsigned_op = "bvult" if op == "bvslt" else "bvule"
        return propagate_comparison(unsigned_op, var_interval, c, var_on_left)
    return None

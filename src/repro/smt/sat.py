"""A CDCL SAT solver.

This is the complete decision procedure at the bottom of
:mod:`repro.smt`.  The WASAI paper hands its flipped path constraints to
Z3; offline we bit-blast them (:mod:`repro.smt.bitblast`) and decide the
resulting CNF here.

The solver implements the standard modern recipe:

* two watched literals per clause,
* first-UIP conflict analysis with clause learning,
* VSIDS-style variable activity with exponential decay,
* geometric restarts,
* optional conflict budget so callers can emulate the paper's
  3,000 ms per-query solver cap deterministically.

Literals use the DIMACS convention: variable ``v`` (a positive int) has
literals ``v`` and ``-v``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["SatSolver", "SatResult", "SAT", "UNSAT", "UNKNOWN"]

SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"


class SatResult:
    """Outcome of a :meth:`SatSolver.solve` call."""

    __slots__ = ("status", "model", "conflicts")

    def __init__(self, status: str, model: dict[int, bool] | None = None,
                 conflicts: int = 0):
        self.status = status
        self.model = model or {}
        self.conflicts = conflicts

    def __bool__(self) -> bool:
        return self.status == SAT

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SatResult({self.status}, conflicts={self.conflicts})"


class SatSolver:
    """CDCL solver over integer literals.

    Typical use::

        solver = SatSolver()
        a = solver.new_var()
        b = solver.new_var()
        solver.add_clause([a, b])
        solver.add_clause([-a])
        result = solver.solve()
        assert result.status == SAT and result.model[b] is True
    """

    def __init__(self) -> None:
        self._num_vars = 0
        self._clauses: list[list[int]] = []
        # assignment[v] is True/False/None (unassigned).
        self._assign: list[bool | None] = [None]
        self._level: list[int] = [0]
        self._reason: list[list[int] | None] = [None]
        self._activity: list[float] = [0.0]
        self._watches: dict[int, list[list[int]]] = {}
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._prop_head = 0
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._unsat = False

    # -- construction ----------------------------------------------------
    def new_var(self) -> int:
        self._num_vars += 1
        self._assign.append(None)
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        return self._num_vars

    @property
    def num_vars(self) -> int:
        return self._num_vars

    def add_clause(self, literals: Iterable[int]) -> None:
        """Add a clause; duplicates are removed and tautologies dropped."""
        seen: set[int] = set()
        clause: list[int] = []
        for lit in literals:
            if lit == 0 or abs(lit) > self._num_vars:
                raise ValueError(f"literal {lit} out of range")
            if -lit in seen:
                return  # tautology
            if lit not in seen:
                seen.add(lit)
                clause.append(lit)
        if not clause:
            self._unsat = True
            return
        # Drop literals already falsified at level 0; satisfied clauses
        # at level 0 can be dropped entirely.
        filtered: list[int] = []
        for lit in clause:
            value = self._lit_value(lit)
            if value is True and self._level[abs(lit)] == 0:
                return
            if value is False and self._level[abs(lit)] == 0:
                continue
            filtered.append(lit)
        clause = filtered
        if not clause:
            self._unsat = True
            return
        if len(clause) == 1:
            if not self._enqueue(clause[0], None):
                self._unsat = True
            return
        self._attach(clause)

    def _attach(self, clause: list[int]) -> None:
        self._clauses.append(clause)
        self._watches.setdefault(clause[0], []).append(clause)
        self._watches.setdefault(clause[1], []).append(clause)

    # -- assignment helpers ----------------------------------------------
    def _lit_value(self, lit: int) -> bool | None:
        value = self._assign[abs(lit)]
        if value is None:
            return None
        return value if lit > 0 else not value

    def _enqueue(self, lit: int, reason: list[int] | None) -> bool:
        value = self._lit_value(lit)
        if value is not None:
            return value
        var = abs(lit)
        self._assign[var] = lit > 0
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(lit)
        return True

    def _propagate(self) -> list[int] | None:
        """Unit propagation; returns a conflicting clause or None."""
        while self._prop_head < len(self._trail):
            lit = self._trail[self._prop_head]
            self._prop_head += 1
            false_lit = -lit
            watching = self._watches.get(false_lit)
            if not watching:
                continue
            kept: list[list[int]] = []
            idx = 0
            while idx < len(watching):
                clause = watching[idx]
                idx += 1
                # Normalise: watched literal in position 1.
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._lit_value(first) is True:
                    kept.append(clause)
                    continue
                # Look for a replacement watch.
                replaced = False
                for k in range(2, len(clause)):
                    if self._lit_value(clause[k]) is not False:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watches.setdefault(clause[1], []).append(clause)
                        replaced = True
                        break
                if replaced:
                    continue
                kept.append(clause)
                if self._lit_value(first) is False:
                    # Conflict: keep remaining watches before returning.
                    kept.extend(watching[idx:])
                    self._watches[false_lit] = kept
                    return clause
                self._enqueue(first, clause)
            self._watches[false_lit] = kept
        return None

    # -- conflict analysis -------------------------------------------------
    def _analyze(self, conflict: list[int]) -> tuple[list[int], int]:
        """First-UIP conflict analysis; returns (learnt clause, backjump
        level).  learnt[0] is the asserting literal."""
        current_level = len(self._trail_lim)
        learnt: list[int] = []
        seen: set[int] = set()
        counter = 0
        lit = None
        reason: Sequence[int] = conflict
        index = len(self._trail) - 1
        while True:
            for q in reason:
                var = abs(q)
                if var in seen or self._level[var] == 0:
                    continue
                seen.add(var)
                self._bump(var)
                if self._level[var] == current_level:
                    counter += 1
                else:
                    learnt.append(q)
            # Find the next literal to resolve on.
            while abs(self._trail[index]) not in seen:
                index -= 1
            lit = self._trail[index]
            index -= 1
            counter -= 1
            seen.discard(abs(lit))
            if counter == 0:
                break
            clause_reason = self._reason[abs(lit)]
            assert clause_reason is not None
            reason = [q for q in clause_reason if q != lit]
        learnt.insert(0, -lit)
        if len(learnt) == 1:
            return learnt, 0
        # Backjump to the second highest decision level in the clause.
        max_i = 1
        for i in range(2, len(learnt)):
            if self._level[abs(learnt[i])] > self._level[abs(learnt[max_i])]:
                max_i = i
        learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
        return learnt, self._level[abs(learnt[1])]

    def _bump(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self._num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100

    def _decay(self) -> None:
        self._var_inc /= self._var_decay

    def _backjump(self, level: int) -> None:
        while len(self._trail_lim) > level:
            limit = self._trail_lim.pop()
            while len(self._trail) > limit:
                lit = self._trail.pop()
                var = abs(lit)
                self._assign[var] = None
                self._reason[var] = None
        self._prop_head = min(self._prop_head, len(self._trail))

    def _decide(self) -> int | None:
        """Pick the unassigned variable with the highest activity."""
        best = None
        best_activity = -1.0
        for var in range(1, self._num_vars + 1):
            if self._assign[var] is None and self._activity[var] > best_activity:
                best = var
                best_activity = self._activity[var]
        if best is None:
            return None
        return -best  # negative-first polarity: small models for bitvectors

    # -- main loop ---------------------------------------------------------
    def solve(self, assumptions: Sequence[int] = (),
              max_conflicts: int | None = None) -> SatResult:
        """Decide satisfiability under the given assumption literals.

        ``max_conflicts`` bounds the search; exceeding it yields
        :data:`UNKNOWN` (mirrors the paper's per-query SMT budget).
        """
        if self._unsat:
            return SatResult(UNSAT)
        conflicts = 0
        conflict = self._propagate()
        if conflict is not None:
            return SatResult(UNSAT)
        for lit in assumptions:
            if self._lit_value(lit) is False:
                self._backjump(0)
                return SatResult(UNSAT, conflicts=conflicts)
            if self._lit_value(lit) is None:
                self._trail_lim.append(len(self._trail))
                self._enqueue(lit, None)
                conflict = self._propagate()
                if conflict is not None:
                    self._backjump(0)
                    return SatResult(UNSAT, conflicts=conflicts)
        base_level = len(self._trail_lim)
        restart_limit = 100
        restart_conflicts = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                conflicts += 1
                restart_conflicts += 1
                if len(self._trail_lim) == base_level:
                    self._backjump(0)
                    return SatResult(UNSAT, conflicts=conflicts)
                if max_conflicts is not None and conflicts > max_conflicts:
                    self._backjump(0)
                    return SatResult(UNKNOWN, conflicts=conflicts)
                learnt, back_level = self._analyze(conflict)
                self._backjump(max(back_level, base_level))
                if len(learnt) == 1:
                    if not self._enqueue(learnt[0], None):
                        self._backjump(0)
                        return SatResult(UNSAT, conflicts=conflicts)
                else:
                    self._attach(learnt)
                    self._enqueue(learnt[0], learnt)
                self._decay()
                if restart_conflicts >= restart_limit:
                    restart_conflicts = 0
                    restart_limit = int(restart_limit * 1.5)
                    self._backjump(base_level)
                continue
            lit = self._decide()
            if lit is None:
                model = {v: bool(self._assign[v])
                         for v in range(1, self._num_vars + 1)
                         if self._assign[v] is not None}
                # Unassigned vars (eliminated at level 0) default to False.
                for v in range(1, self._num_vars + 1):
                    model.setdefault(v, False)
                self._backjump(0)
                return SatResult(SAT, model, conflicts)
            self._trail_lim.append(len(self._trail))
            self._enqueue(lit, None)

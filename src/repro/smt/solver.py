"""The layered constraint solver (the repo's Z3 substitute).

:class:`Solver` exposes the z3py-flavoured ``add`` / ``check`` /
``model`` interface the symbolic engine expects.  Internally it runs
three layers, cheapest first:

1. **Rewriting** — constraints are built through the simplifying
   constructors in :mod:`repro.smt.terms`, so trivially true/false
   branches never reach a search.
2. **Propagation** — single-variable comparisons against constants are
   decided in the unsigned interval domain
   (:mod:`repro.smt.interval`), which covers most constraints WASAI
   flips during fuzzing.
3. **Bit-blasting + CDCL** — the complete fallback
   (:mod:`repro.smt.bitblast` + :mod:`repro.smt.sat`), budgeted by a
   conflict limit that plays the role of the paper's 3,000 ms cap.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

from ..resilience import faultinject
from ..resilience.errors import CampaignError, SolverError
from ..sharedcache import SharedDiskCache
from .bitblast import BitBlaster
from .interval import Interval, propagate_comparison
from .sat import SAT, UNKNOWN, UNSAT, SatSolver
from .terms import (FALSE, TRUE, Term, evaluate, free_variables, mask)

__all__ = ["Solver", "Model", "SolverStats", "SolverCache", "solver_cache",
           "configure_solver_cache", "constraint_digest",
           "SAT", "UNSAT", "UNKNOWN"]


class Model:
    """A satisfying assignment: variable name -> unsigned int value."""

    def __init__(self, values: dict[str, int]):
        self._values = dict(values)

    def __getitem__(self, key: "Term | str") -> int:
        name = key if isinstance(key, str) else key.payload[0]
        return self._values.get(name, 0)

    def __contains__(self, key: "Term | str") -> bool:
        name = key if isinstance(key, str) else key.payload[0]
        return name in self._values

    def as_dict(self) -> dict[str, int]:
        return dict(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._values.items()))
        return f"Model({inner})"


class SolverStats:
    """Counters for the ablation benchmarks."""

    def __init__(self) -> None:
        self.checks = 0
        self.fast_path_hits = 0
        self.sat_calls = 0
        self.sat_conflicts = 0
        self.unknowns = 0
        self.cache_hits = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "checks": self.checks,
            "fast_path_hits": self.fast_path_hits,
            "sat_calls": self.sat_calls,
            "sat_conflicts": self.sat_conflicts,
            "unknowns": self.unknowns,
            "cache_hits": self.cache_hits,
        }


# Per-term structural digests.  Terms are interned and the intern
# table is never pruned, so ids are stable for the process lifetime
# and the memo can be keyed on them; the digest itself is computed
# from structure only (op, payload, sort, child digests), so it is
# identical across processes — that is what makes it usable as the
# shared on-disk cache key.
_DIGEST_MEMO: dict[int, str] = {}


def _term_digest(root: Term) -> str:
    memo = _DIGEST_MEMO
    found = memo.get(id(root))
    if found is not None:
        return found
    # Iterative post-order: symbolic expressions from long traces can
    # nest past the recursion limit.
    stack = [root]
    while stack:
        term = stack[-1]
        if id(term) in memo:
            stack.pop()
            continue
        pending = [c for c in term.args if id(c) not in memo]
        if pending:
            stack.extend(pending)
            continue
        stack.pop()
        width = getattr(term.sort, "width", None)
        sort_tag = "b" if width is None else f"v{width}"
        body = "\x1f".join((term.op, repr(term.payload), sort_tag,
                            *(memo[id(c)] for c in term.args)))
        memo[id(term)] = hashlib.sha256(body.encode("utf-8")).hexdigest()
    return memo[id(root)]


def constraint_digest(constraints: "list[Term]",
                      max_conflicts: int) -> str:
    """A process-independent content key for a solver query.

    The in-memory cache keys on interned term identity, which only
    means something inside one process; the shared disk tier needs a
    key two workers derive identically, so this walks the constraint
    DAG and hashes structure.  Order-preserving, like the in-memory
    key: a hit returns exactly what a fresh solve would have."""
    parts = [str(max_conflicts)]
    parts.extend(_term_digest(c) for c in constraints)
    return hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()


class SolverCache:
    """A bounded memo of solved conjunctions.

    The fuzzer re-poses near-identical flip queries across iterations
    (same path prefix, same flipped branch); because terms are interned,
    a repeated conjunction is the *same* tuple of term objects, so the
    canonical key is simply the constraint tuple plus the conflict
    budget.  Only decided results (sat with its model, unsat) are
    cached — "unknown" depends on the budget and is always re-solved.
    The key preserves constraint order, so a hit returns byte-for-byte
    the model a fresh solve would have produced: caching can never
    change a campaign's behaviour, only its speed.
    """

    def __init__(self, max_entries: int = 4096):
        self.max_entries = max_entries
        self._entries: "OrderedDict[tuple, tuple[str, dict | None]]" \
            = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # Shared on-disk tier (repro.sharedcache), consulted only when
        # a query is headed for the expensive bit-blasting layer — the
        # fast paths are cheaper than a disk read.
        self.disk = SharedDiskCache("solver", serializer="json")

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: tuple) -> "tuple[str, dict | None] | None":
        found = self._entries.get(key)
        if found is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return found

    def store(self, key: tuple, status: str,
              model_values: dict | None) -> None:
        self._entries[key] = (status, model_values)
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats_dict(self) -> dict[str, "int | float"]:
        stats = {"hits": self.hits, "misses": self.misses,
                 "evictions": self.evictions, "entries": len(self._entries),
                 "hit_rate": self.hit_rate}
        stats.update(self.disk.stats_dict())
        return stats


# One cache per process; worker processes each grow their own.
_SOLVER_CACHE: SolverCache | None = SolverCache()


def solver_cache() -> SolverCache | None:
    """The process-wide solver result cache (None when disabled)."""
    return _SOLVER_CACHE


def configure_solver_cache(enabled: bool = True,
                           max_entries: int = 4096) -> SolverCache | None:
    """Replace the process-wide cache (or disable it); returns the new
    cache.  Used by the determinism tests and the ablation benches."""
    global _SOLVER_CACHE
    _SOLVER_CACHE = SolverCache(max_entries) if enabled else None
    return _SOLVER_CACHE


class Solver:
    """Check satisfiability of a conjunction of boolean terms."""

    def __init__(self, max_conflicts: int = 20_000,
                 stats: SolverStats | None = None,
                 use_cache: bool = True):
        self._constraints: list[Term] = []
        self._stack: list[int] = []
        self.max_conflicts = max_conflicts
        self._model: Model | None = None
        self.stats = stats or SolverStats()
        self.use_cache = use_cache

    # -- z3py-flavoured interface ------------------------------------------
    def add(self, *constraints: Term) -> None:
        for c in constraints:
            if not c.is_bool():
                raise TypeError("constraints must be boolean terms")
            self._constraints.append(c)

    def push(self) -> None:
        self._stack.append(len(self._constraints))

    def pop(self) -> None:
        if not self._stack:
            raise RuntimeError(
                "Solver.pop() called with no matching push(): the "
                "assertion scope stack is empty")
        size = self._stack.pop()
        del self._constraints[size:]

    def assertions(self) -> list[Term]:
        return list(self._constraints)

    def check(self, *extra: Term) -> str:
        """Return "sat", "unsat" or "unknown".

        An internal failure of the search layers is raised as a typed
        :class:`~repro.resilience.SolverError` (never a bare
        exception), so campaign containment can degrade to black-box
        fuzzing instead of aborting.
        """
        self.stats.checks += 1
        faultinject.inject("solve")
        constraints = self._constraints + list(extra)
        self._model = None
        if any(c is FALSE for c in constraints):
            return UNSAT
        constraints = [c for c in constraints if c is not TRUE]
        if not constraints:
            self._model = Model({})
            return SAT
        cache = _SOLVER_CACHE if self.use_cache else None
        key = (tuple(constraints), self.max_conflicts)
        if cache is not None:
            cached = cache.lookup(key)
            if cached is not None:
                status, values = cached
                self.stats.cache_hits += 1
                if status == SAT:
                    self._model = Model(values)
                return status
        digest: str | None = None
        from_disk = False
        try:
            result = self._try_fast_path(constraints)
            if result is not None:
                self.stats.fast_path_hits += 1
            else:
                # The query is headed for bit-blasting; that is the
                # point where a sibling worker's result (shared disk
                # tier) is worth a file read.
                if cache is not None and cache.disk.enabled:
                    digest = constraint_digest(constraints,
                                               self.max_conflicts)
                    result = self._lookup_disk(cache.disk, digest)
                    from_disk = result is not None
                if result is None:
                    result = self._check_sat(constraints)
        except CampaignError:
            raise
        except Exception as exc:
            raise SolverError.wrap(exc)
        if cache is not None and result in (SAT, UNSAT):
            values = self._model.as_dict() if result == SAT else None
            cache.store(key, result, values)
            if digest is not None and not from_disk:
                cache.disk.put(digest, {"status": result, "model": values})
        return result

    def _lookup_disk(self, disk, digest: str) -> str | None:
        """A decided verdict from the shared disk tier, or None.

        Anything malformed degrades to a miss — the solve just runs."""
        entry = disk.get(digest)
        if not isinstance(entry, dict):
            return None
        status = entry.get("status")
        if status == UNSAT:
            return UNSAT
        if status == SAT:
            values = entry.get("model")
            if not isinstance(values, dict):
                return None
            self._model = Model({str(k): int(v) for k, v in values.items()})
            return SAT
        return None

    def model(self) -> Model:
        if self._model is None:
            raise RuntimeError("model() called without a sat check()")
        return self._model

    # -- layer 2: interval propagation ----------------------------------------
    def _try_fast_path(self, constraints: list[Term]) -> str | None:
        """Decide conjunctions of single-variable compares-to-constant.

        Returns None when any constraint falls outside the supported
        shape, punting to the SAT layer.
        """
        intervals: dict[str, Interval] = {}
        widths: dict[str, int] = {}
        for constraint in constraints:
            parsed = _parse_atom(constraint)
            if parsed is None:
                return None
            op, var, constant, var_on_left = parsed
            name = var.payload[0]
            widths[name] = var.width
            interval = intervals.get(name, Interval(var.width))
            refined = propagate_comparison(op, interval, constant, var_on_left)
            if refined is None:
                return None
            intervals[name] = refined
        values: dict[str, int] = {}
        for name, interval in intervals.items():
            if interval.is_empty():
                return UNSAT
            witness = interval.pick()
            if witness is None:
                return UNSAT
            values[name] = witness
        # Double-check the witness (holes interact with bounds).
        assignment = dict(values)
        for constraint in constraints:
            if not evaluate(constraint, assignment):
                return None  # fall through to SAT rather than mis-answer
        self._model = Model(values)
        return SAT

    # -- layer 3: bit-blasting -----------------------------------------------
    def _check_sat(self, constraints: list[Term]) -> str:
        self.stats.sat_calls += 1
        sat_solver = SatSolver()
        blaster = BitBlaster(sat_solver)
        # Pre-declare free variables so the model covers all of them.
        for constraint in constraints:
            for var in free_variables(constraint):
                blaster.blast_bv(var)
        try:
            for constraint in constraints:
                blaster.assert_term(constraint)
        except ValueError:
            self.stats.unknowns += 1
            return UNKNOWN
        result = sat_solver.solve(max_conflicts=self.max_conflicts)
        self.stats.sat_conflicts += result.conflicts
        if result.status == SAT:
            self._model = Model(blaster.decode(result.model))
            return SAT
        if result.status == UNSAT:
            return UNSAT
        self.stats.unknowns += 1
        return UNKNOWN


def _parse_atom(term: Term) -> tuple[str, Term, int, bool] | None:
    """Recognise ``var <op> const`` atoms (and negations / mirrored
    forms).  Returns (op, var, constant, var_on_left) or None."""
    negated = False
    if term.op == "not":
        negated = True
        term = term.args[0]
    op = term.op
    if op not in ("eq", "bvult", "bvule", "bvslt", "bvsle"):
        return None
    lhs, rhs = term.args
    if lhs.is_bool() or rhs.is_bool():
        return None
    if lhs.op == "bvvar" and rhs.is_const():
        var, constant, var_on_left = lhs, rhs.const_value(), True
    elif rhs.op == "bvvar" and lhs.is_const():
        var, constant, var_on_left = rhs, lhs.const_value(), False
    else:
        return None
    if negated:
        if op == "eq":
            return ("ne", var, constant, var_on_left)
        flipped = {"bvult": "bvule", "bvule": "bvult",
                   "bvslt": "bvsle", "bvsle": "bvslt"}[op]
        # not (a < b)  ==  b <= a : mirror sides.
        return (flipped, var, constant, not var_on_left)
    if op == "eq":
        return ("eq", var, constant, var_on_left)
    return (op, var, constant, var_on_left)

"""Hash-consed bitvector/boolean expression terms.

This module is the foundation of :mod:`repro.smt`, the pure-Python SMT
layer that replaces the Z3 backend used by the WASAI paper.  Terms are
immutable and interned: structurally identical terms are the same
object, which makes equality checks O(1) and keeps the symbolic
machine-state updates (performed once per executed Wasm instruction)
cheap.

The public constructors mirror the small slice of the z3py API that
WASAI relies on (``BitVec``, ``BitVecVal``, ``Concat``, ``Extract``,
``ULT`` ...), so the symbolic engine reads like the paper's
description.
"""

from __future__ import annotations

from typing import Iterable

__all__ = [
    "Term",
    "BoolSort",
    "BitVecSort",
    "BitVec",
    "BitVecVal",
    "BoolVal",
    "TRUE",
    "FALSE",
    "Concat",
    "Extract",
    "ZeroExt",
    "SignExt",
    "And",
    "Or",
    "Not",
    "Xor",
    "Implies",
    "Ite",
    "Eq",
    "Ne",
    "ULT",
    "ULE",
    "UGT",
    "UGE",
    "SLT",
    "SLE",
    "SGT",
    "SGE",
    "Popcnt",
    "Clz",
    "Ctz",
    "Rotl",
    "Rotr",
    "free_variables",
    "substitute",
    "mask",
    "to_signed",
    "to_unsigned",
]


def mask(width: int) -> int:
    """Return the all-ones bit mask for ``width`` bits."""
    return (1 << width) - 1


def to_signed(value: int, width: int) -> int:
    """Interpret ``value`` (an unsigned ``width``-bit int) as signed."""
    value &= mask(width)
    if value >= 1 << (width - 1):
        value -= 1 << width
    return value


def to_unsigned(value: int, width: int) -> int:
    """Normalise ``value`` into the unsigned ``width``-bit range."""
    return value & mask(width)


class Sort:
    """Base class for term sorts."""

    __slots__ = ()


class BoolSort(Sort):
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Bool"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BoolSort)

    def __hash__(self) -> int:
        return hash("BoolSort")


class BitVecSort(Sort):
    __slots__ = ("width",)

    def __init__(self, width: int):
        if width <= 0:
            raise ValueError(f"bitvector width must be positive, got {width}")
        self.width = width

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BitVec({self.width})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BitVecSort) and other.width == self.width

    def __hash__(self) -> int:
        return hash(("BitVecSort", self.width))


BOOL = BoolSort()

# Interning table: key -> Term.  Keys embed the op, sort and child ids.
_INTERN: dict[tuple, "Term"] = {}


class Term:
    """An immutable, interned SMT term.

    ``op`` is a short string tag (e.g. ``"bvadd"``); ``args`` holds child
    terms and ``payload`` holds non-term attributes (variable name,
    constant value, extract bounds ...).
    """

    __slots__ = ("op", "args", "payload", "sort", "_hash")

    def __new__(
        cls,
        op: str,
        args: tuple["Term", ...] = (),
        payload: tuple = (),
        sort: Sort = BOOL,
    ):
        key = (op, tuple(id(a) for a in args), payload, sort)
        found = _INTERN.get(key)
        if found is not None:
            return found
        term = object.__new__(cls)
        term.op = op
        term.args = args
        term.payload = payload
        term.sort = sort
        term._hash = hash((op, args, payload, sort))
        _INTERN[key] = term
        return term

    # -- basic protocol -------------------------------------------------
    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return render(self)

    @property
    def width(self) -> int:
        """Bit width (only meaningful for bitvector terms)."""
        if not isinstance(self.sort, BitVecSort):
            raise TypeError(f"term {self.op} is not a bitvector")
        return self.sort.width

    def is_const(self) -> bool:
        return self.op in ("bvconst", "true", "false")

    def is_bool(self) -> bool:
        return isinstance(self.sort, BoolSort)

    def const_value(self) -> int:
        """Return the Python value of a constant term."""
        if self.op == "bvconst":
            return self.payload[0]
        if self.op == "true":
            return True
        if self.op == "false":
            return False
        raise ValueError(f"term {self.op} is not a constant")

    # -- operator sugar (bitvector arithmetic defaults to unsigned) -----
    def __add__(self, other: "Term | int") -> "Term":
        return bv_binop("bvadd", self, _coerce(other, self))

    def __radd__(self, other: int) -> "Term":
        return bv_binop("bvadd", _coerce(other, self), self)

    def __sub__(self, other: "Term | int") -> "Term":
        return bv_binop("bvsub", self, _coerce(other, self))

    def __rsub__(self, other: int) -> "Term":
        return bv_binop("bvsub", _coerce(other, self), self)

    def __mul__(self, other: "Term | int") -> "Term":
        return bv_binop("bvmul", self, _coerce(other, self))

    def __rmul__(self, other: int) -> "Term":
        return bv_binop("bvmul", _coerce(other, self), self)

    def __and__(self, other: "Term | int") -> "Term":
        return bv_binop("bvand", self, _coerce(other, self))

    def __or__(self, other: "Term | int") -> "Term":
        return bv_binop("bvor", self, _coerce(other, self))

    def __xor__(self, other: "Term | int") -> "Term":
        return bv_binop("bvxor", self, _coerce(other, self))

    def __lshift__(self, other: "Term | int") -> "Term":
        return bv_binop("bvshl", self, _coerce(other, self))

    def __rshift__(self, other: "Term | int") -> "Term":
        """Logical (unsigned) right shift, matching Wasm ``shr_u``."""
        return bv_binop("bvlshr", self, _coerce(other, self))

    def __invert__(self) -> "Term":
        return bv_unop("bvnot", self)

    def __neg__(self) -> "Term":
        return bv_unop("bvneg", self)


def _coerce(value: "Term | int", like: Term) -> Term:
    """Turn a Python int into a constant of ``like``'s width."""
    if isinstance(value, Term):
        return value
    return BitVecVal(value, like.width)


# ---------------------------------------------------------------------------
# Leaf constructors
# ---------------------------------------------------------------------------

def BitVec(name: str, width: int) -> Term:
    """A free bitvector variable."""
    return Term("bvvar", (), (name,), BitVecSort(width))


def BitVecVal(value: int, width: int) -> Term:
    """A bitvector constant (value is normalised to unsigned)."""
    return Term("bvconst", (), (to_unsigned(value, width),), BitVecSort(width))


TRUE = Term("true")
FALSE = Term("false")


def BoolVal(value: bool) -> Term:
    return TRUE if value else FALSE


# ---------------------------------------------------------------------------
# Bitvector operations (with constant folding and light rewrites)
# ---------------------------------------------------------------------------

_COMMUTATIVE = {"bvadd", "bvmul", "bvand", "bvor", "bvxor"}


def _fold_binop(op: str, a: int, b: int, width: int) -> int:
    m = mask(width)
    if op == "bvadd":
        return (a + b) & m
    if op == "bvsub":
        return (a - b) & m
    if op == "bvmul":
        return (a * b) & m
    if op == "bvand":
        return a & b
    if op == "bvor":
        return a | b
    if op == "bvxor":
        return a ^ b
    # Shifts follow Wasm semantics: the amount is taken modulo the width.
    if op == "bvshl":
        return (a << (b % width)) & m
    if op == "bvlshr":
        return a >> (b % width)
    if op == "bvashr":
        sa = to_signed(a, width)
        return to_unsigned(sa >> (b % width), width)
    if op == "bvudiv":
        return m if b == 0 else (a // b) & m
    if op == "bvurem":
        return a if b == 0 else a % b
    if op == "bvsdiv":
        if b == 0:
            # SMT-LIB: -1 for non-negative dividends, +1 for negative
            # (Wasm traps before this case can ever matter).
            return m if to_signed(a, width) >= 0 else 1
        sa, sb = to_signed(a, width), to_signed(b, width)
        q = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            q = -q
        return to_unsigned(q, width)
    if op == "bvsrem":
        if b == 0:
            return a
        sa, sb = to_signed(a, width), to_signed(b, width)
        r = abs(sa) % abs(sb)
        if sa < 0:
            r = -r
        return to_unsigned(r, width)
    if op == "bvrotl":
        b %= width
        return ((a << b) | (a >> (width - b))) & m if b else a
    if op == "bvrotr":
        b %= width
        return ((a >> b) | (a << (width - b))) & m if b else a
    raise ValueError(f"unknown binop {op}")


def bv_binop(op: str, lhs: Term, rhs: Term) -> Term:
    """Build a binary bitvector operation, folding constants."""
    if lhs.width != rhs.width:
        raise ValueError(f"{op}: width mismatch {lhs.width} vs {rhs.width}")
    width = lhs.width
    if lhs.is_const() and rhs.is_const():
        return BitVecVal(_fold_binop(op, lhs.const_value(), rhs.const_value(), width), width)
    # Canonicalise: constants to the right for commutative ops.
    if op in _COMMUTATIVE and lhs.is_const():
        lhs, rhs = rhs, lhs
    if rhs.is_const():
        c = rhs.const_value()
        if op in ("bvadd", "bvsub", "bvor", "bvxor", "bvshl", "bvlshr", "bvashr",
                  "bvrotl", "bvrotr") and c == 0:
            return lhs
        if op == "bvmul":
            if c == 0:
                return rhs
            if c == 1:
                return lhs
        if op == "bvand":
            if c == 0:
                return rhs
            if c == mask(width):
                return lhs
        if op == "bvor" and c == mask(width):
            return rhs
        if op == "bvudiv" and c == 1:
            return lhs
    if lhs is rhs:
        if op == "bvxor":
            return BitVecVal(0, width)
        if op == "bvsub":
            return BitVecVal(0, width)
        if op in ("bvand", "bvor"):
            return lhs
    return Term(op, (lhs, rhs), (), BitVecSort(width))


def bv_unop(op: str, arg: Term) -> Term:
    width = arg.width
    if arg.is_const():
        v = arg.const_value()
        if op == "bvnot":
            return BitVecVal(~v, width)
        if op == "bvneg":
            return BitVecVal(-v, width)
        if op == "bvpopcnt":
            return BitVecVal(bin(v).count("1"), width)
        if op == "bvclz":
            return BitVecVal(width - v.bit_length(), width)
        if op == "bvctz":
            if v == 0:
                return BitVecVal(width, width)
            return BitVecVal((v & -v).bit_length() - 1, width)
    if op == "bvnot" and arg.op == "bvnot":
        return arg.args[0]
    if op == "bvneg" and arg.op == "bvneg":
        return arg.args[0]
    return Term(op, (arg,), (), BitVecSort(width))


def Popcnt(arg: Term) -> Term:
    """Population count (number of 1 bits), as used by the paper's
    popcount data-flow obfuscation."""
    return bv_unop("bvpopcnt", arg)


def Clz(arg: Term) -> Term:
    return bv_unop("bvclz", arg)


def Ctz(arg: Term) -> Term:
    return bv_unop("bvctz", arg)


def Rotl(lhs: Term, rhs: Term | int) -> Term:
    return bv_binop("bvrotl", lhs, _coerce(rhs, lhs))


def Rotr(lhs: Term, rhs: Term | int) -> Term:
    return bv_binop("bvrotr", lhs, _coerce(rhs, lhs))


def UDiv(lhs: Term, rhs: Term | int) -> Term:
    return bv_binop("bvudiv", lhs, _coerce(rhs, lhs))


def URem(lhs: Term, rhs: Term | int) -> Term:
    return bv_binop("bvurem", lhs, _coerce(rhs, lhs))


def SDiv(lhs: Term, rhs: Term | int) -> Term:
    return bv_binop("bvsdiv", lhs, _coerce(rhs, lhs))


def SRem(lhs: Term, rhs: Term | int) -> Term:
    return bv_binop("bvsrem", lhs, _coerce(rhs, lhs))


def AShr(lhs: Term, rhs: Term | int) -> Term:
    return bv_binop("bvashr", lhs, _coerce(rhs, lhs))


def Concat(*parts: Term) -> Term:
    """Concatenate bitvectors; the first argument holds the most
    significant bits (z3 convention)."""
    if not parts:
        raise ValueError("Concat requires at least one argument")
    if len(parts) == 1:
        return parts[0]
    total = sum(p.width for p in parts)
    if all(p.is_const() for p in parts):
        value = 0
        for p in parts:
            value = (value << p.width) | p.const_value()
        return BitVecVal(value, total)
    # Flatten nested concats for canonical form.
    flat: list[Term] = []
    for p in parts:
        if p.op == "concat":
            flat.extend(p.args)
        else:
            flat.append(p)
    # Merge adjacent constants and adjacent extracts of the same term
    # (byte-split/reassemble round trips are common in the memory model).
    merged: list[Term] = []
    for p in flat:
        if merged and merged[-1].is_const() and p.is_const():
            prev = merged.pop()
            merged.append(
                BitVecVal((prev.const_value() << p.width) | p.const_value(),
                          prev.width + p.width))
        elif (merged and merged[-1].op == "extract" and p.op == "extract"
              and merged[-1].args[0] is p.args[0]
              and merged[-1].payload[1] == p.payload[0] + 1):
            prev = merged.pop()
            merged.append(Extract(prev.payload[0], p.payload[1], p.args[0]))
        else:
            merged.append(p)
    if len(merged) == 1:
        return merged[0]
    return Term("concat", tuple(merged), (), BitVecSort(total))


def Extract(hi: int, lo: int, arg: Term) -> Term:
    """Extract bits ``hi..lo`` inclusive (z3 convention)."""
    if not 0 <= lo <= hi < arg.width:
        raise ValueError(f"Extract({hi}, {lo}) out of range for width {arg.width}")
    width = hi - lo + 1
    if width == arg.width:
        return arg
    if arg.is_const():
        return BitVecVal(arg.const_value() >> lo, width)
    if arg.op == "extract":
        inner_lo = arg.payload[1]
        return Extract(hi + inner_lo, lo + inner_lo, arg.args[0])
    if arg.op == "concat":
        # Peel parts that lie fully outside the extraction window.
        offset = arg.width
        selected: list[Term] = []
        for part in arg.args:
            offset -= part.width
            part_lo, part_hi = offset, offset + part.width - 1
            if part_hi < lo or part_lo > hi:
                continue
            sub_hi = min(hi, part_hi) - part_lo
            sub_lo = max(lo, part_lo) - part_lo
            selected.append(Extract(sub_hi, sub_lo, part))
        if selected:
            return Concat(*selected)
    if arg.op == "zeroext" and lo >= arg.args[0].width:
        return BitVecVal(0, width)
    if arg.op == "zeroext" and hi < arg.args[0].width:
        return Extract(hi, lo, arg.args[0])
    return Term("extract", (arg,), (hi, lo), BitVecSort(width))


def ZeroExt(extra: int, arg: Term) -> Term:
    """Widen ``arg`` by ``extra`` zero bits (z3 convention)."""
    if extra < 0:
        raise ValueError("ZeroExt amount must be non-negative")
    if extra == 0:
        return arg
    if arg.is_const():
        return BitVecVal(arg.const_value(), arg.width + extra)
    return Term("zeroext", (arg,), (extra,), BitVecSort(arg.width + extra))


def SignExt(extra: int, arg: Term) -> Term:
    if extra < 0:
        raise ValueError("SignExt amount must be non-negative")
    if extra == 0:
        return arg
    if arg.is_const():
        return BitVecVal(to_signed(arg.const_value(), arg.width), arg.width + extra)
    return Term("signext", (arg,), (extra,), BitVecSort(arg.width + extra))


# ---------------------------------------------------------------------------
# Boolean operations
# ---------------------------------------------------------------------------

def Not(arg: Term) -> Term:
    if arg is TRUE:
        return FALSE
    if arg is FALSE:
        return TRUE
    if arg.op == "not":
        return arg.args[0]
    return Term("not", (arg,))


def And(*args: Term) -> Term:
    flat: list[Term] = []
    for a in _flatten(args):
        if a is FALSE:
            return FALSE
        if a is TRUE:
            continue
        if a.op == "and":
            flat.extend(a.args)
        else:
            flat.append(a)
    flat = _dedupe(flat)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    for a in flat:
        if Not(a) in flat:
            return FALSE
    return Term("and", tuple(flat))


def Or(*args: Term) -> Term:
    flat: list[Term] = []
    for a in _flatten(args):
        if a is TRUE:
            return TRUE
        if a is FALSE:
            continue
        if a.op == "or":
            flat.extend(a.args)
        else:
            flat.append(a)
    flat = _dedupe(flat)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    for a in flat:
        if Not(a) in flat:
            return TRUE
    return Term("or", tuple(flat))


def Xor(lhs: Term, rhs: Term) -> Term:
    if lhs is rhs:
        return FALSE
    if lhs is TRUE:
        return Not(rhs)
    if rhs is TRUE:
        return Not(lhs)
    if lhs is FALSE:
        return rhs
    if rhs is FALSE:
        return lhs
    return Term("xor", (lhs, rhs))


def Implies(lhs: Term, rhs: Term) -> Term:
    return Or(Not(lhs), rhs)


def _flatten(args: Iterable[Term | list | tuple]) -> list[Term]:
    out: list[Term] = []
    for a in args:
        if isinstance(a, (list, tuple)):
            out.extend(_flatten(a))
        else:
            out.append(a)
    return out


def _dedupe(terms: list[Term]) -> list[Term]:
    seen: set[int] = set()
    out = []
    for t in terms:
        if id(t) not in seen:
            seen.add(id(t))
            out.append(t)
    return out


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------

def Eq(lhs: Term, rhs: Term | int) -> Term:
    rhs = _coerce(rhs, lhs) if isinstance(rhs, int) else rhs
    if lhs.is_bool() != rhs.is_bool():
        raise TypeError("Eq between bool and bitvector")
    if lhs is rhs:
        return TRUE
    if lhs.is_const() and rhs.is_const():
        return BoolVal(lhs.const_value() == rhs.const_value())
    if not lhs.is_bool() and lhs.width != rhs.width:
        raise ValueError(f"Eq width mismatch: {lhs.width} vs {rhs.width}")
    # Canonicalise argument order via the interning hash.
    if lhs._hash > rhs._hash:
        lhs, rhs = rhs, lhs
    return Term("eq", (lhs, rhs))


def Ne(lhs: Term, rhs: Term | int) -> Term:
    return Not(Eq(lhs, rhs))


def _compare(op: str, lhs: Term, rhs: Term | int, signed: bool) -> Term:
    rhs = _coerce(rhs, lhs) if isinstance(rhs, int) else rhs
    if lhs.width != rhs.width:
        raise ValueError(f"{op}: width mismatch {lhs.width} vs {rhs.width}")
    if lhs.is_const() and rhs.is_const():
        a, b = lhs.const_value(), rhs.const_value()
        if signed:
            a, b = to_signed(a, lhs.width), to_signed(b, lhs.width)
        result = a < b if op.endswith("lt") else a <= b
        return BoolVal(result)
    if lhs is rhs:
        return FALSE if op.endswith("lt") else TRUE
    return Term(op, (lhs, rhs))


def ULT(lhs: Term, rhs: Term | int) -> Term:
    return _compare("bvult", lhs, rhs, signed=False)


def ULE(lhs: Term, rhs: Term | int) -> Term:
    return _compare("bvule", lhs, rhs, signed=False)


def UGT(lhs: Term, rhs: Term | int) -> Term:
    rhs = _coerce(rhs, lhs) if isinstance(rhs, int) else rhs
    return ULT(rhs, lhs)


def UGE(lhs: Term, rhs: Term | int) -> Term:
    rhs = _coerce(rhs, lhs) if isinstance(rhs, int) else rhs
    return ULE(rhs, lhs)


def SLT(lhs: Term, rhs: Term | int) -> Term:
    return _compare("bvslt", lhs, rhs, signed=True)


def SLE(lhs: Term, rhs: Term | int) -> Term:
    return _compare("bvsle", lhs, rhs, signed=True)


def SGT(lhs: Term, rhs: Term | int) -> Term:
    rhs = _coerce(rhs, lhs) if isinstance(rhs, int) else rhs
    return SLT(rhs, lhs)


def SGE(lhs: Term, rhs: Term | int) -> Term:
    rhs = _coerce(rhs, lhs) if isinstance(rhs, int) else rhs
    return SLE(rhs, lhs)


def Ite(cond: Term, then: Term, other: Term) -> Term:
    """If-then-else over bitvectors or booleans."""
    if cond is TRUE:
        return then
    if cond is FALSE:
        return other
    if then is other:
        return then
    if then.is_bool():
        return Or(And(cond, then), And(Not(cond), other))
    if then.width != other.width:
        raise ValueError("Ite arm width mismatch")
    return Term("ite", (cond, then, other), (), then.sort)


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------

def free_variables(term: Term) -> set[Term]:
    """Collect the free bitvector variables reachable from ``term``."""
    seen: set[int] = set()
    out: set[Term] = set()
    stack = [term]
    while stack:
        t = stack.pop()
        if id(t) in seen:
            continue
        seen.add(id(t))
        if t.op == "bvvar":
            out.add(t)
        stack.extend(t.args)
    return out


def substitute(term: Term, bindings: dict[Term, Term]) -> Term:
    """Replace variables per ``bindings``, rebuilding (and therefore
    re-simplifying) the term bottom-up."""
    cache: dict[int, Term] = {}

    def walk(t: Term) -> Term:
        hit = cache.get(id(t))
        if hit is not None:
            return hit
        if t in bindings:
            result = bindings[t]
        elif not t.args:
            result = t
        else:
            new_args = tuple(walk(a) for a in t.args)
            if all(n is o for n, o in zip(new_args, t.args)):
                result = t
            else:
                result = rebuild(t.op, new_args, t.payload, t.sort)
        cache[id(t)] = result
        return result

    return walk(term)


_BINOPS = {
    "bvadd", "bvsub", "bvmul", "bvand", "bvor", "bvxor", "bvshl",
    "bvlshr", "bvashr", "bvudiv", "bvurem", "bvsdiv", "bvsrem",
    "bvrotl", "bvrotr",
}
_UNOPS = {"bvnot", "bvneg", "bvpopcnt", "bvclz", "bvctz"}


def rebuild(op: str, args: tuple[Term, ...], payload: tuple, sort: Sort) -> Term:
    """Reconstruct a term through the simplifying constructors."""
    if op in _BINOPS:
        return bv_binop(op, *args)
    if op in _UNOPS:
        return bv_unop(op, args[0])
    if op == "concat":
        return Concat(*args)
    if op == "extract":
        return Extract(payload[0], payload[1], args[0])
    if op == "zeroext":
        return ZeroExt(payload[0], args[0])
    if op == "signext":
        return SignExt(payload[0], args[0])
    if op == "eq":
        return Eq(*args)
    if op == "not":
        return Not(args[0])
    if op == "and":
        return And(*args)
    if op == "or":
        return Or(*args)
    if op == "xor":
        return Xor(*args)
    if op in ("bvult", "bvule"):
        return _compare(op, args[0], args[1], signed=False)
    if op in ("bvslt", "bvsle"):
        return _compare(op, args[0], args[1], signed=True)
    if op == "ite":
        return Ite(*args)
    return Term(op, args, payload, sort)


def render(term: Term) -> str:
    """A compact s-expression rendering used by ``repr``."""
    if term.op == "bvconst":
        return f"#x{term.const_value():0{(term.width + 3) // 4}x}"
    if term.op == "bvvar":
        return term.payload[0]
    if term.op in ("true", "false"):
        return term.op
    if term.op == "extract":
        return f"(extract {term.payload[0]} {term.payload[1]} {render(term.args[0])})"
    inner = " ".join(render(a) for a in term.args)
    if term.payload:
        inner = " ".join(str(p) for p in term.payload) + " " + inner
    return f"({term.op} {inner})"


def evaluate(term: Term, assignment: dict[str, int]) -> int | bool:
    """Evaluate ``term`` under a concrete assignment (unsigned ints for
    bitvector variables).  Used by tests and by model validation."""
    cache: dict[int, int | bool] = {}

    def walk(t: Term) -> int | bool:
        hit = cache.get(id(t))
        if hit is not None:
            return hit
        result = _eval_node(t, walk, assignment)
        cache[id(t)] = result
        return result

    return walk(term)


def _eval_node(t: Term, walk, assignment: dict[str, int]) -> int | bool:
    op = t.op
    if op == "bvconst":
        return t.const_value()
    if op == "bvvar":
        name = t.payload[0]
        if name not in assignment:
            raise KeyError(f"no assignment for variable {name}")
        return to_unsigned(assignment[name], t.width)
    if op == "true":
        return True
    if op == "false":
        return False
    if op in _BINOPS:
        return _fold_binop(op, walk(t.args[0]), walk(t.args[1]), t.width)
    if op == "bvnot":
        return to_unsigned(~walk(t.args[0]), t.width)
    if op == "bvneg":
        return to_unsigned(-walk(t.args[0]), t.width)
    if op == "bvpopcnt":
        return bin(walk(t.args[0])).count("1")
    if op == "bvclz":
        v = walk(t.args[0])
        return t.width - v.bit_length()
    if op == "bvctz":
        v = walk(t.args[0])
        return t.width if v == 0 else (v & -v).bit_length() - 1
    if op == "concat":
        value = 0
        for part in t.args:
            value = (value << part.width) | walk(part)
        return value
    if op == "extract":
        hi, lo = t.payload
        return (walk(t.args[0]) >> lo) & mask(hi - lo + 1)
    if op == "zeroext":
        return walk(t.args[0])
    if op == "signext":
        inner = t.args[0]
        return to_unsigned(to_signed(walk(inner), inner.width), t.width)
    if op == "eq":
        return walk(t.args[0]) == walk(t.args[1])
    if op == "not":
        return not walk(t.args[0])
    if op == "and":
        return all(walk(a) for a in t.args)
    if op == "or":
        return any(walk(a) for a in t.args)
    if op == "xor":
        return bool(walk(t.args[0])) != bool(walk(t.args[1]))
    if op == "bvult":
        return walk(t.args[0]) < walk(t.args[1])
    if op == "bvule":
        return walk(t.args[0]) <= walk(t.args[1])
    if op == "bvslt":
        w = t.args[0].width
        return to_signed(walk(t.args[0]), w) < to_signed(walk(t.args[1]), w)
    if op == "bvsle":
        w = t.args[0].width
        return to_signed(walk(t.args[0]), w) <= to_signed(walk(t.args[1]), w)
    if op == "ite":
        return walk(t.args[1]) if walk(t.args[0]) else walk(t.args[2])
    raise ValueError(f"cannot evaluate op {op}")

"""The RQ4 in-the-wild study as a reusable pipeline (§4.4).

Runs WASAI over a corpus of deployed-contract stand-ins, aggregates
the per-class counts and the maintenance statistics (still operating /
patched / exposed) the paper reports, and formats the summary.  Used
by ``benchmarks/test_rq4_wild.py`` and ``examples/wild_study.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from .benchgen.corpus import WildContract, build_wild_corpus
from .metrics import ThroughputStats
from .parallel import CampaignTask, run_campaign_task
from .resilience import ResiliencePolicy, run_resilient_tasks
from .scanner import ScanResult, VULN_TITLES

__all__ = ["WildStudyResult", "run_wild_study", "format_wild_study"]


@dataclass
class WildStudyResult:
    """Aggregated outcome of one wild-corpus scan."""

    total: int
    scans: list[tuple[WildContract, ScanResult]]
    # Contracts with no usable scan (crash/timeout/quarantine), as
    # (sample key, reason) — reported, never silently dropped.
    skipped: list[tuple[str, str]] = field(default_factory=list)
    # Contracts whose campaign tripped the divergence sentinel, as
    # (sample key, first alarm) — their findings are not counted.
    divergent: list[tuple[str, str]] = field(default_factory=list)

    # -- aggregates --------------------------------------------------------
    @property
    def flagged(self) -> list[tuple[WildContract, ScanResult]]:
        return [(entry, scan) for entry, scan in self.scans
                if scan.is_vulnerable()]

    @property
    def flagged_fraction(self) -> float:
        return len(self.flagged) / max(self.total, 1)

    def per_type_counts(self) -> dict[str, int]:
        return {vuln_type: sum(1 for _, scan in self.scans
                               if scan.detected(vuln_type))
                for vuln_type in VULN_TITLES}

    @property
    def still_operating(self) -> list[WildContract]:
        return [entry for entry, _ in self.flagged
                if entry.still_operating]

    @property
    def patched(self) -> list[WildContract]:
        return [entry for entry in self.still_operating
                if entry.patched_later]

    @property
    def exposed_count(self) -> int:
        return len(self.still_operating) - len(self.patched)

    def ground_truth_agreement(self) -> float:
        agree = total = 0
        for entry, scan in self.scans:
            for vuln_type, truth in entry.ground_truth.items():
                agree += int(scan.detected(vuln_type) == truth)
                total += 1
        return agree / max(total, 1)


def run_wild_study(scale: float = 0.05, timeout_ms: float = 20_000.0,
                   seed: int = 991, rng_base: int = 3000,
                   address_pool: bool = False, jobs: int = 1,
                   task_timeout_s: float | None = None,
                   perf: ThroughputStats | None = None,
                   policy: ResiliencePolicy | None = None,
                   journal: "str | None" = None,
                   resume: bool = False) -> WildStudyResult:
    """Scan the wild corpus with WASAI and aggregate the findings.

    ``jobs`` > 1 runs the independent campaigns on a worker pool (see
    :mod:`repro.parallel`); each contract keeps its deterministic
    ``rng_base + index`` seed, so the aggregate is identical to a
    serial run.  A crashed or timed-out campaign is retried and, if it
    keeps failing, quarantined under ``policy`` and reported in
    ``WildStudyResult.skipped`` (it contributes an empty scan so the
    aggregate fractions stay conservative).  ``journal``/``resume``
    checkpoint completed campaigns exactly as in
    :func:`repro.harness.evaluate_corpus`.
    """
    policy = policy or ResiliencePolicy()
    corpus = build_wild_corpus(scale=scale, seed=seed)
    tasks = [CampaignTask(entry.contract.module, entry.contract.abi,
                          ("wasai",), timeout_ms, rng_base + index,
                          address_pool=address_pool, policy=policy,
                          sample_key=f"wild[{index}]")
             for index, entry in enumerate(corpus)]
    wall_started = time.perf_counter()
    run = run_resilient_tasks(run_campaign_task, tasks, jobs=jobs,
                              timeout_s=task_timeout_s, policy=policy,
                              journal=journal, resume=resume)
    wall_s = time.perf_counter() - wall_started
    scans = []
    skipped: list[tuple[str, str]] = []
    divergent: list[tuple[str, str]] = []
    for index, (entry, result) in enumerate(zip(corpus, run.results)):
        reason = run.skip_reason(index)
        if reason is None and result.value.scans.get("wasai") is None:
            error = result.value.errors.get("wasai", {})
            reason = error.get("message", "campaign failed")
        if reason is not None:
            skipped.append((tasks[index].sample_key, reason))
            scans.append((entry, ScanResult(target_account=0)))
            continue
        scan = result.value.scans["wasai"]
        if scan.divergences:
            # Untrustworthy trace: contribute an empty scan so the
            # aggregate fractions stay conservative, and report it.
            divergent.append((tasks[index].sample_key,
                              scan.divergences[0]))
            scans.append((entry, ScanResult(target_account=0)))
            continue
        scans.append((entry, scan))
    if perf is not None:
        perf.jobs = jobs
        perf.wall_s += wall_s
        perf.failures += run.failed_attempts
        perf.retries += run.retries
        perf.quarantined += len(run.quarantine.quarantined())
        for index, result in enumerate(run.results):
            if not result.ok or index in run.reused_indices:
                continue
            perf.campaigns += 1
            perf.retries += result.value.retries
            perf.add_stage_seconds(result.value.stage_seconds)
            perf.add_cache_deltas(result.value.instr_cache_hits,
                                  result.value.instr_cache_misses,
                                  result.value.solver_cache_hits,
                                  result.value.solver_cache_misses)
    return WildStudyResult(len(corpus), scans, skipped=skipped,
                           divergent=divergent)


def format_wild_study(result: WildStudyResult) -> str:
    lines = [
        f"WASAI wild study: {result.total} profitable contracts",
        f"  flagged vulnerable: {len(result.flagged)} "
        f"({result.flagged_fraction:.1%}; paper: 71.3%)",
    ]
    for vuln_type, count in result.per_type_counts().items():
        lines.append(f"    {vuln_type:<13} {count:4d}")
    operating = result.still_operating
    lines.append(f"  flagged & still operating: {len(operating)} "
                 f"({len(operating) / max(len(result.flagged), 1):.1%}; "
                 "paper: 58.4%)")
    lines.append(f"  patched in a later version: {len(result.patched)}")
    lines.append(f"  still exposed to attackers: {result.exposed_count} "
                 "(paper: 341)")
    lines.append(f"  agreement with ground truth: "
                 f"{result.ground_truth_agreement():.1%}")
    if result.skipped:
        lines.append(f"  skipped (failed campaigns): "
                     f"{len(result.skipped)}")
        for key, reason in result.skipped:
            lines.append(f"    {key}: {reason}")
    if result.divergent:
        lines.append(f"  divergent (sentinel tripped): "
                     f"{len(result.divergent)}")
        for key, reason in result.divergent:
            lines.append(f"    {key}: {reason}")
    return "\n".join(lines)

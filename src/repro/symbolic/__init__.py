"""repro.symbolic — Symback, the EOSVM simulator for symbolic replay.

Implements the paper's §3.4: the concrete-address memory model (C2),
the calling-convention input inference (C3), trace simulation under
Table 3's operational semantics, and constraint flipping for adaptive
seed generation.
"""

from .calling import SeedLayout, SymbolicParam, scalar_width
from .flip import AdaptiveSeed, FlipQuery, flip_queries, solve_flips
from .machine import Frame, MachineState, as_term
from .memory import SymbolicLoad, SymbolicMemory
from .simulate import (BranchRecord, ReplayResult, branch_coverage_ids,
                       locate_action_call, replay_action)

__all__ = [
    "SeedLayout", "SymbolicParam", "scalar_width", "AdaptiveSeed",
    "FlipQuery", "flip_queries", "solve_flips", "Frame", "MachineState",
    "as_term", "SymbolicLoad", "SymbolicMemory", "BranchRecord",
    "ReplayResult", "branch_coverage_ids", "locate_action_call",
    "replay_action",
]

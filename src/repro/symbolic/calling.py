"""Calling-convention input inference (challenge C3, §3.4.2).

WASAI skips the dispatcher and the deserialising methods: symbolic
execution starts at the action function, whose Local section holds the
deserialised input.  This module builds the Table 2 layout — one
symbolic expression per seed parameter ρ_i bound to Local slot i+1,
with pointer-typed parameters (asset, string) expanded into symbolic
memory content at the *concrete* pointer captured in the trace — and
maps solver models back onto concrete seeds for mutation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..eosio.abi import AbiAction
from ..eosio.asset import Asset, Symbol
from ..smt import BitVec, BitVecVal, Model, Term, to_signed
from .machine import Frame
from .memory import SymbolicMemory

__all__ = ["SeedLayout", "SymbolicParam", "scalar_width"]

# ABI types passed by value in a Local slot, and their Wasm width.
_SCALAR_WIDTHS = {
    "name": 64, "uint64": 64, "int64": 64, "symbol": 64,
    "uint32": 32, "int32": 32, "uint16": 32, "int16": 32,
    "uint8": 32, "int8": 32, "bool": 32,
}
# ABI types left in linear memory behind an i32 pointer (Table 2).
_POINTER_TYPES = ("asset", "string", "bytes")


def scalar_width(abi_type: str) -> int | None:
    """Local-slot width of a by-value ABI type, or None for pointers."""
    return _SCALAR_WIDTHS.get(abi_type)


@dataclass
class SymbolicParam:
    """One action parameter's symbolic variables, keyed by role."""

    index: int
    name: str
    abi_type: str
    vars: dict[str, Term] = field(default_factory=dict)


class SeedLayout:
    """The symbolic layout of one action invocation's input."""

    def __init__(self, action: AbiAction, seed_values: list,
                 tag: str = "rho"):
        self.action = action
        self.seed_values = list(seed_values)
        self.params: list[SymbolicParam] = []
        for i, param in enumerate(action.params):
            sp = SymbolicParam(i, param.name, param.type)
            prefix = f"{tag}{i}"
            width = scalar_width(param.type)
            if width is not None:
                sp.vars["value"] = BitVec(prefix, width)
            elif param.type == "asset":
                sp.vars["amount"] = BitVec(f"{prefix}_amount", 64)
                sp.vars["symbol"] = BitVec(f"{prefix}_symbol", 64)
            elif param.type in ("string", "bytes"):
                content = _content_bytes(seed_values[i])
                for b in range(len(content)):
                    sp.vars[f"byte{b}"] = BitVec(f"{prefix}_byte{b}", 8)
            else:
                raise ValueError(f"unsupported ABI type {param.type!r}")
            self.params.append(sp)

    # -- Table 2: initialise μ_l̂ and μ_m --------------------------------------
    def init_frame(self, func_index: int, concrete_args: list[int],
                   memory: SymbolicMemory) -> Frame:
        """Build the action function's frame.

        ``concrete_args`` are the runtime argument values from the
        dispatcher's indirect call: slot 0 is the receiver/context
        (kept concrete) and slot i+1 carries ρ_i — the deserialised
        value for scalars, the i32 pointer for memory-resident types.
        """
        locals_init: list[Term] = [BitVecVal(concrete_args[0], 64)
                                   if concrete_args else BitVecVal(0, 64)]
        for sp in self.params:
            slot = sp.index + 1
            concrete = concrete_args[slot] if slot < len(concrete_args) else 0
            width = scalar_width(sp.abi_type)
            if width is not None:
                locals_init.append(sp.vars["value"])
                continue
            pointer = int(concrete)
            locals_init.append(BitVecVal(pointer, 32))
            if sp.abi_type == "asset":
                memory.store_symbol(pointer, sp.vars["amount"])
                memory.store_symbol(pointer + 8, sp.vars["symbol"])
            else:  # string / bytes: length byte, then content
                content = _content_bytes(self.seed_values[sp.index])
                memory.store_bytes(pointer, bytes([len(content) & 0xFF]))
                for b in range(len(content)):
                    memory.store_symbol(pointer + 1 + b, sp.vars[f"byte{b}"])
        frame = Frame(func_index, locals_init)
        return frame

    # -- path constraints pinning the current seed ------------------------------
    def binding_constraints(self) -> dict[Term, Term]:
        """Map each input variable to its current concrete value (used
        to concretise all-but-one parameter during mutation)."""
        bindings: dict[Term, Term] = {}
        for sp in self.params:
            value = self.seed_values[sp.index]
            width = scalar_width(sp.abi_type)
            if width is not None:
                bindings[sp.vars["value"]] = BitVecVal(
                    _scalar_to_int(sp.abi_type, value), width)
            elif sp.abi_type == "asset":
                asset = _as_asset(value)
                bindings[sp.vars["amount"]] = BitVecVal(asset.amount, 64)
                bindings[sp.vars["symbol"]] = BitVecVal(asset.symbol.raw, 64)
            else:
                content = _content_bytes(value)
                for b, byte in enumerate(content):
                    bindings[sp.vars[f"byte{b}"]] = BitVecVal(byte, 8)
        return bindings

    def all_vars(self) -> set[Term]:
        out: set[Term] = set()
        for sp in self.params:
            out.update(sp.vars.values())
        return out

    # -- model -> new concrete seed ---------------------------------------------------
    def seed_from_model(self, model: Model) -> list:
        """Apply a solver model on top of the current seed values."""
        new_values = list(self.seed_values)
        for sp in self.params:
            width = scalar_width(sp.abi_type)
            if width is not None:
                var = sp.vars["value"]
                if var in model:
                    new_values[sp.index] = _int_to_scalar(
                        sp.abi_type, model[var], width)
            elif sp.abi_type == "asset":
                base = _as_asset(self.seed_values[sp.index])
                amount = base.amount
                symbol = base.symbol
                if sp.vars["amount"] in model:
                    amount = to_signed(model[sp.vars["amount"]], 64)
                if sp.vars["symbol"] in model:
                    try:
                        symbol = Symbol.from_raw(model[sp.vars["symbol"]])
                    except ValueError:
                        pass  # solver picked a non-decodable symbol; keep
                try:
                    new_values[sp.index] = Asset(amount, symbol)
                except ValueError:
                    pass  # out-of-range amount; keep the base value
            else:
                content = bytearray(_content_bytes(self.seed_values[sp.index]))
                changed = False
                for b in range(len(content)):
                    var = sp.vars[f"byte{b}"]
                    if var in model:
                        content[b] = model[var] & 0xFF
                        changed = True
                if changed:
                    if sp.abi_type == "string":
                        # Keep str only when it round-trips exactly;
                        # otherwise carry raw bytes so the solved
                        # values survive re-serialisation.
                        try:
                            new_values[sp.index] = bytes(content).decode(
                                "utf-8")
                        except UnicodeDecodeError:
                            new_values[sp.index] = bytes(content)
                    else:
                        new_values[sp.index] = bytes(content)
        return new_values


def _content_bytes(value) -> bytes:
    if isinstance(value, bytes):
        return value
    if isinstance(value, str):
        return value.encode("utf-8")
    raise TypeError(f"expected string/bytes seed value, got {type(value)}")


def _as_asset(value) -> Asset:
    if isinstance(value, Asset):
        return value
    return Asset.from_string(str(value))


def _scalar_to_int(abi_type: str, value) -> int:
    from ..eosio.name import Name
    if abi_type == "name":
        return int(Name(value))
    if abi_type == "symbol":
        return value.raw if isinstance(value, Symbol) else int(value)
    if abi_type == "bool":
        return 1 if value else 0
    return int(value)


def _int_to_scalar(abi_type: str, raw: int, width: int):
    from ..eosio.name import Name
    if abi_type == "name":
        return Name(raw)
    if abi_type == "symbol":
        try:
            return Symbol.from_raw(raw)
        except ValueError:
            return raw
    if abi_type == "bool":
        return bool(raw & 1)
    if abi_type.startswith("int"):
        return to_signed(raw, width)
    return raw

"""Constraint flipping and adaptive seed generation (§3.4.4).

For each conditional state whose constraint involves the symbolic
input, the flipper conjoins the path prefix with the flipped branch
constraint and asks the solver for a model; the model becomes an
adaptive seed via :meth:`SeedLayout.seed_from_model`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..smt import And, SAT, Solver, SolverStats, Term, free_variables
from .calling import SeedLayout
from .simulate import BranchRecord, ReplayResult

__all__ = ["FlipQuery", "flip_queries", "solve_flips", "AdaptiveSeed"]


@dataclass
class FlipQuery:
    """One 'reach the unexplored side of this branch' SMT problem."""

    branch: BranchRecord
    constraints: list[Term]

    @property
    def branch_id(self) -> tuple:
        return self.branch.branch_id


@dataclass
class AdaptiveSeed:
    """A solver-produced seed: new parameter values for the action."""

    action_name: str
    values: list
    branch_id: tuple


def flip_queries(result: ReplayResult,
                 explored: set[tuple] | None = None) -> list[FlipQuery]:
    """Build flip problems for the replay's unexplored branch sides.

    ``explored`` filters out branch sides whose flip was already
    attempted (or covered) in earlier fuzzing rounds.
    """
    if result.layout is None:
        return []
    input_vars = result.layout.all_vars()
    explored = explored or set()
    queries: list[FlipQuery] = []
    for branch in result.branches:
        if branch.flipped is None:
            continue
        flipped_id = (branch.site.func_index, branch.site.pc,
                      not bool(branch.taken))
        if flipped_id in explored:
            continue
        # §3.4.4: only flip constraints that contain the symbolic input.
        if not (free_variables(branch.flipped) & input_vars):
            continue
        prefix = result.path[:branch.path_position]
        queries.append(FlipQuery(branch, prefix + [branch.flipped]))
    return queries


def solve_flips(queries: list[FlipQuery], layout: SeedLayout,
                action_name: str, max_conflicts: int = 20_000,
                stats: SolverStats | None = None,
                max_seeds: int | None = None) -> list[AdaptiveSeed]:
    """Solve flip queries and materialise adaptive seeds.

    ``max_conflicts`` is the per-query budget standing in for the
    paper's 3,000 ms SMT cap; queries that exceed it return unknown and
    produce no seed (the FN mechanism §5 describes).
    """
    seeds: list[AdaptiveSeed] = []
    for query in queries:
        if max_seeds is not None and len(seeds) >= max_seeds:
            break
        solver = Solver(max_conflicts=max_conflicts, stats=stats)
        for constraint in query.constraints:
            solver.add(constraint)
        if solver.check() != SAT:
            continue
        values = layout.seed_from_model(solver.model())
        flipped_id = (query.branch.site.func_index, query.branch.site.pc,
                      not bool(query.branch.taken))
        seeds.append(AdaptiveSeed(action_name, values, flipped_id))
    return seeds

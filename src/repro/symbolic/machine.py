"""The machine state μ of the EOSVM simulator (§3.1, §3.4.3).

A machine state holds the stack μ_s (one frame per invoked function,
isolating namespaces as EOSVM's call stack does), the Local sections
μ_l, the Global section μ_g, the linear memory μ_m and the returns
list μ_r.  Values are SMT terms (:mod:`repro.smt`); concrete runtime
values appear as constant terms, so "symbolic or concrete" is uniform.
"""

from __future__ import annotations

from ..smt import BitVecVal, Term
from .memory import SymbolicMemory

__all__ = ["MachineState", "Frame", "as_term", "concrete_value"]


def as_term(value: "Term | int", width: int) -> Term:
    """Promote a concrete runtime value to a constant term."""
    if isinstance(value, Term):
        return value
    return BitVecVal(int(value), width)


def concrete_value(value) -> int | None:
    """The concrete integer behind a machine value, or None.

    Constant terms *are* the simulator's concrete shadow state: the
    SMT layer constant-folds, so any value whose data flow never
    touched a symbolic input stays a constant term.  The divergence
    sentinel uses this to compare the shadow against the recorded
    trace; a None (genuinely symbolic value) means there is nothing
    concrete to cross-check at that checkpoint.
    """
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    if isinstance(value, Term) and not value.is_bool() and value.is_const():
        return value.const_value()
    return None


class Frame:
    """One function's stack frame and Local section (μ_ŝ and μ_l̂)."""

    __slots__ = ("func_index", "stack", "locals")

    def __init__(self, func_index: int, locals_init: list[Term]):
        self.func_index = func_index
        self.stack: list = []
        self.locals: list = list(locals_init)

    def push(self, value) -> None:
        self.stack.append(value)

    def pop(self):
        return self.stack.pop()

    def pop_n(self, count: int) -> list:
        if count == 0:
            return []
        values = self.stack[-count:]
        del self.stack[-count:]
        return values

    def top(self):
        return self.stack[-1]

    def local_get(self, index: int):
        while index >= len(self.locals):
            self.locals.append(BitVecVal(0, 64))
        return self.locals[index]

    def local_set(self, index: int, value) -> None:
        while index >= len(self.locals):
            self.locals.append(BitVecVal(0, 64))
        self.locals[index] = value


class MachineState:
    """μ: the full simulator state."""

    def __init__(self) -> None:
        self.frames: list[Frame] = []     # μ_s / μ_l, one per function
        self.globals: dict[int, Term] = {}   # μ_g
        self.memory = SymbolicMemory()       # μ_m
        self.returns: list[list] = []        # μ_r

    # -- frame management (the ^ namespace of §3.4) -----------------------
    @property
    def frame(self) -> Frame:
        """The executing function's frame (μ_ŝ / μ_l̂)."""
        return self.frames[-1]

    def push_frame(self, func_index: int, locals_init: list) -> Frame:
        frame = Frame(func_index, locals_init)
        self.frames.append(frame)
        return frame

    def pop_frame(self) -> Frame:
        frame = self.frames.pop()
        self.returns.append(list(frame.stack))
        return frame

    def pop_returns(self) -> list:
        return self.returns.pop() if self.returns else []

    @property
    def depth(self) -> int:
        return len(self.frames)

    # -- globals --------------------------------------------------------------
    def global_get(self, index: int) -> Term:
        return self.globals.get(index, BitVecVal(0, 64))

    def global_set(self, index: int, value: Term) -> None:
        self.globals[index] = value

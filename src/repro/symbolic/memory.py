"""The symbolic memory model (challenge C2, §3.4.1).

The paper's key trick: the EOSVM simulator replays *recorded* traces,
so every memory instruction's address is available **concretely** even
when the address expression is symbolic.  Memory is therefore a
byte-addressed mapping from concrete addresses to symbolic byte
expressions — stores split the value into bytes, loads concatenate
them — with no need to merge overlapping symbolic address ranges the
way EOSAFE's mapping structure must.

Bytes that were never stored during the replayed window (the trace is
simplified: it starts at the action function) are materialised as
*symbolic load objects*: fresh variables carrying their ⟨address,
size⟩ pair, which the solver is free to pick values for.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..smt import BitVec, BitVecVal, Concat, Extract, Term

__all__ = ["SymbolicMemory", "SymbolicLoad"]


@dataclass(frozen=True)
class SymbolicLoad:
    """The ⟨a, s⟩ pair of §3.4.1: ``s`` bytes of unknown memory at
    concrete offset ``a``, represented by the fresh variable ``var``."""

    address: int
    size: int
    var: Term


class SymbolicMemory:
    """μ_m: concrete byte addresses -> symbolic byte expressions."""

    def __init__(self) -> None:
        self._bytes: dict[int, Term] = {}
        self.symbolic_loads: list[SymbolicLoad] = []
        self._fresh_counter = 0

    def __len__(self) -> int:
        return len(self._bytes)

    def known(self, address: int) -> bool:
        return address in self._bytes

    # -- the paper's Δ.store ------------------------------------------------
    def store(self, address: int, size: int, value: Term) -> None:
        """Split ``value`` into little-endian bytes at ``address``."""
        if value.width < size * 8:
            raise ValueError(
                f"store of {value.width} bits into {size} bytes")
        for i in range(size):
            self._bytes[address + i] = Extract(8 * i + 7, 8 * i, value)

    def store_bytes(self, address: int, data: bytes) -> None:
        """Store concrete bytes (used to seed known memory regions)."""
        for i, byte in enumerate(data):
            self._bytes[address + i] = BitVecVal(byte, 8)

    def store_symbol(self, address: int, var: Term) -> None:
        """Bind an input variable's bytes at a concrete address (the
        calling-convention initialisation of Table 2)."""
        self.store(address, var.width // 8, var)

    # -- the paper's Δ.load --------------------------------------------------
    def load(self, address: int, size: int) -> Term:
        """Concatenate ``size`` bytes from ``address`` (little-endian).

        Unknown bytes become one symbolic load object covering the
        maximal unknown run, so ``i64.load`` of untouched memory yields
        a single fresh 64-bit variable rather than eight byte vars.
        """
        if all(address + i not in self._bytes for i in range(size)):
            return self._fresh_load(address, size)
        parts: list[Term] = []  # most-significant first for Concat
        for i in reversed(range(size)):
            byte = self._bytes.get(address + i)
            if byte is None:
                byte = self._fresh_load(address + i, 1)
            parts.append(byte)
        return Concat(*parts)

    def _fresh_load(self, address: int, size: int) -> Term:
        self._fresh_counter += 1
        var = BitVec(f"symload_{address}_{self._fresh_counter}", size * 8)
        record = SymbolicLoad(address, size, var)
        self.symbolic_loads.append(record)
        # Remember the bytes so repeated loads see the same object.
        self.store(address, size, var)
        return var

    def dump(self) -> dict[int, Term]:
        """A copy of the byte map (for tests and debugging)."""
        return dict(self._bytes)

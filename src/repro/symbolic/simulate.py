"""Trace replay: lifting runtime traces to symbolic machine states.

Implements §3.4.3 (Table 3 operational semantics) on top of the hook
events produced by the instrumented contract:

* replay starts at the **action function** (the dispatcher prefix is
  skipped, §3.4.2) with the Local section initialised from the
  :class:`~repro.symbolic.calling.SeedLayout`,
* memory instructions use the **concrete addresses** recorded in the
  trace (§3.4.1),
* returns of library APIs are taken from the ``call_post`` hooks, so
  host function bodies are never simulated,
* every conditional state (``br_if``/``if`` and ``eosio_assert``) is
  recorded with its symbolic condition for the constraint flipper.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass, field

from ..instrument.hooks import HookEvent
from ..instrument.instrumenter import Site, SiteTable
from ..resilience import faultinject
from ..resilience.errors import (CampaignError, DivergenceError,
                                 SymbackError)
from ..smt import (BitVec, BitVecVal, Clz, Concat, Ctz, Eq, Extract, Ite, Ne,
                   Not, Popcnt, Rotl, Rotr, SDiv, SGE, SGT, SLE, SLT, SRem,
                   SignExt, Term, UDiv, UGE, UGT, ULE, ULT, URem, ZeroExt,
                   AShr, to_signed)
from ..wasm.module import Module
from ..wasm.opcodes import Instr, is_load, is_store, memory_access_size
from .calling import SeedLayout
from .machine import Frame, MachineState, concrete_value

__all__ = ["BranchRecord", "ReplayResult", "replay_action",
           "locate_action_call", "branch_coverage_ids"]


@dataclass
class BranchRecord:
    """One conditional state (§3.1) observed during replay."""

    site: Site
    kind: str                 # "br_if" | "if" | "br_table" | "assert"
    condition: Term | None    # constraint of the taken direction
    flipped: Term | None      # constraint of the unexplored direction
    taken: int                # concrete outcome (0/1, or br_table index)
    path_position: int        # how many path constraints precede it

    @property
    def branch_id(self) -> tuple:
        return (self.site.func_index, self.site.pc, self.taken != 0)


@dataclass
class ReplayResult:
    """Output of one symbolic replay."""

    branches: list[BranchRecord] = field(default_factory=list)
    path: list[Term] = field(default_factory=list)
    covered: set[tuple] = field(default_factory=set)
    layout: SeedLayout | None = None
    state: MachineState | None = None
    reached_action: bool = False
    error: str | None = None
    checkpoints: int = 0      # sentinel cross-checks that passed


def locate_action_call(events: list[HookEvent], sites: SiteTable,
                       apply_index: int) -> tuple[int, int, list[int]] | None:
    """Find the dispatcher's indirect call into the action function.

    Returns ``(event index of the callee's begin, action function
    index, concrete argument values)`` or None when the trace never
    dispatches (e.g. the guard rejected the action).

    This is the §3.4.2 pattern match: EOSIO SDK dispatchers reach the
    action function through ``call_indirect`` inside ``apply``.
    """
    for i, event in enumerate(events):
        if event.kind != "instr":
            continue
        site = sites[event.site_id]
        if site.func_index != apply_index:
            continue
        if site.instr.op != "call_indirect":
            continue  # §3.4.2: the SDK dispatch is an *indirect* call
        # The next "begin" event (if any) is the callee.
        for j in range(i + 1, len(events)):
            nxt = events[j]
            if nxt.kind == "begin":
                return (j, nxt.func_id, list(event.operands[:-1]))
            if nxt.kind == "instr":
                break  # import call; keep scanning
    return None


def replay_action(module: Module, sites: SiteTable,
                  events: list[HookEvent], layout: SeedLayout,
                  apply_index: int,
                  import_names: dict[int, str] | None = None,
                  divergence_check: bool = True) -> ReplayResult:
    """Symbolically replay the action-function window of a trace.

    A malformed trace window aborts only this replay (recorded in
    ``ReplayResult.error``); an unexpected simulator bug surfaces as a
    typed :class:`~repro.resilience.SymbackError` so the fuzzing loop
    can contain it and degrade to black-box mode.

    With ``divergence_check`` (the default) the divergence sentinel
    cross-checks the machine's concrete shadow state — constant terms,
    which the SMT layer folds eagerly — against the recorded concrete
    operands at branch, memory-op and host-call checkpoints, raising a
    typed :class:`~repro.resilience.DivergenceError` on the first
    mismatch instead of letting the oracles consume an unsound replay.
    """
    faultinject.inject("symback")
    result = ReplayResult(layout=layout)
    if import_names is None:
        import_names = {
            i: imp.name
            for i, imp in enumerate(module.imported_functions())}
    located = locate_action_call(events, sites, apply_index)
    if located is None:
        return result
    begin_index, action_func, concrete_args = located
    result.reached_action = True
    state = MachineState()
    result.state = state
    frame = layout.init_frame(action_func, [int(a) for a in concrete_args],
                              state.memory)
    _extend_declared_locals(module, action_func, frame)
    state.frames.append(frame)
    replayer = _Replayer(module, sites, state, result, import_names,
                         divergence_check=divergence_check)
    for event in events[begin_index + 1:]:
        try:
            done = replayer.step(event)
        except _ReplayAbort as abort:
            result.error = str(abort)
            break
        except CampaignError:
            raise
        except Exception as exc:
            raise SymbackError.wrap(exc)
        if done:
            break
    return result


def branch_coverage_ids(sites: SiteTable,
                        events: list[HookEvent]) -> set[tuple]:
    """Distinct-branch ids of a whole trace (used for RQ1 coverage,
    independent of the symbolic window)."""
    covered: set[tuple] = set()
    for event in events:
        if event.kind != "instr":
            continue
        site = sites[event.site_id]
        op = site.instr.op
        if op in ("br_if", "if"):
            covered.add((site.func_index, site.pc,
                         bool(event.operands[-1])))
        elif op == "br_table":
            covered.add((site.func_index, site.pc,
                         int(event.operands[-1])))
    return covered


class _ReplayAbort(Exception):
    """Internal: the replay cannot continue (malformed trace window)."""


@dataclass
class _PendingCall:
    target: int
    args: list
    is_import: bool
    entered: bool = False


class _Replayer:
    def __init__(self, module: Module, sites: SiteTable,
                 state: MachineState, result: ReplayResult,
                 import_names: dict[int, str],
                 divergence_check: bool = True):
        self.module = module
        self.sites = sites
        self.state = state
        self.result = result
        self.import_names = import_names
        self.import_count = module.num_imported_functions
        self.pending: list[_PendingCall] = []
        self.base_depth = 1  # the action function's frame
        self.divergence_check = divergence_check

    # -- the divergence sentinel ---------------------------------------------
    def _shadow_check(self, site: Site, value, traced, *,
                      as_bool: bool = False, what: str = "value") -> None:
        """Cross-check a concrete shadow value against the trace.

        ``value`` is the symbolic machine's view (a term or int); when
        it is fully concrete it *must* equal the concrete operand the
        interpreter recorded at the same point — anything else means
        the simulation has drifted off the executed path and every
        later oracle verdict would be unsound.
        """
        if not self.divergence_check or not isinstance(traced, int):
            return
        shadow = concrete_value(value)
        if shadow is None:
            return  # genuinely symbolic: nothing concrete to compare
        if as_bool:
            mismatch = bool(shadow) != bool(traced)
        else:
            width = value.width if isinstance(value, Term) else 64
            mask = (1 << width) - 1
            mismatch = (shadow & mask) != (traced & mask)
        if mismatch:
            raise DivergenceError(
                f"concrete shadow {shadow} disagrees with traced "
                f"{traced} for {what}", func_index=site.func_index,
                pc=site.pc, opcode=site.instr.op, shadow=int(shadow),
                traced=int(traced))
        self.result.checkpoints += 1

    # -- event dispatch ------------------------------------------------------
    def step(self, event: HookEvent) -> bool:
        """Process one event; returns True when the action function
        window is complete."""
        if event.kind == "begin":
            self._on_begin(event)
            return False
        if event.kind == "end":
            return self._on_end(event)
        if event.kind == "post":
            self._on_post(event)
            return False
        site = self.sites[event.site_id]
        self._on_instr(site, event.operands)
        return False

    def _on_begin(self, event: HookEvent) -> None:
        if self.pending and not self.pending[-1].entered:
            call = self.pending[-1]
            call.entered = True
            frame = Frame(event.func_id, call.args)
            _extend_declared_locals(self.module, event.func_id, frame)
            self.state.frames.append(frame)
        else:
            # A begin with no pending call (should not happen inside
            # the window); open an empty frame to stay balanced.
            self.state.push_frame(event.func_id, [])

    def _on_end(self, event: HookEvent) -> bool:
        if self.state.depth <= self.base_depth:
            return True  # the action function finished
        frame = self.state.frames.pop()
        arity = len(self.module.function_type(frame.func_index).results)
        returns = frame.stack[-arity:] if arity else []
        self.state.returns.append(returns)
        return False

    def _on_post(self, event: HookEvent) -> None:
        if not self.pending:
            return
        call = self.pending.pop()
        frame = self.state.frame
        if call.is_import or not call.entered:
            # Library API: take the concrete returns from the hook
            # (§3.4.3: no simulation of host bodies).
            results = self.module.function_type(call.target).results
            for valtype, value in zip(results, event.operands):
                frame.push(_concrete(valtype.name, value))
        else:
            for value in self.state.pop_returns():
                frame.push(value)

    # -- instruction semantics (Table 3) ------------------------------------------
    def _on_instr(self, site: Site, operands: tuple) -> None:
        instr = site.instr
        op = instr.op
        frame = self.state.frame
        if op == "call" or op == "call_indirect":
            self._on_call(site, operands)
            return
        handler_name = _HANDLERS.get(op)
        if handler_name is not None:
            getattr(self, handler_name)(site, instr, operands, frame)
            return
        prefix = op.split(".", 1)[0]
        if prefix in ("i32", "i64"):
            self._int_op(site, instr, operands, frame)
        elif prefix in ("f32", "f64"):
            self._float_op(site, instr, operands, frame)
        else:
            raise _ReplayAbort(f"no replay rule for {op}")

    def _on_call(self, site: Site, operands: tuple) -> None:
        instr = site.instr
        frame = self.state.frame
        if instr.op == "call_indirect":
            frame.pop()  # the table slot expression
            # Target resolves at the next begin; record a placeholder.
            params = self.module.types[instr.args[0]].params
            args = frame.pop_n(len(params))
            self.pending.append(_PendingCall(-1, args, False))
            return
        target = instr.args[0]
        func_type = self.module.function_type(target)
        args = frame.pop_n(len(func_type.params))
        if target < self.import_count:
            name = self.import_names.get(target, "?")
            self._on_import_call(site, name, args, operands)
            self.pending.append(_PendingCall(target, args, True))
        else:
            self.pending.append(_PendingCall(target, args, False))

    def _on_import_call(self, site: Site, name: str, args: list,
                        operands: tuple) -> None:
        # Host-call arguments are the densest concrete checkpoints:
        # the interpreter recorded the exact values it passed, so any
        # constant-term argument must match position for position.
        for position, (arg, traced) in enumerate(zip(args, operands)):
            self._shadow_check(site, arg, traced,
                               what=f"{name} argument {position}")
        if name == "eosio_assert":
            condition = _as_bool(args[0])
            passed = bool(operands[0])
            position = len(self.result.path)
            if passed:
                self.result.path.append(condition)
                self.result.branches.append(BranchRecord(
                    site, "assert", condition, None, 1, position))
            else:
                # The paper's flip: require μ_ŝ[0] == 1.
                self.result.branches.append(BranchRecord(
                    site, "assert", Not(condition), condition,
                    0, position))

    # -- structured / variable instructions ------------------------------------------
    def _h_const(self, site, instr, operands, frame):
        op = instr.op
        if op == "i32.const":
            frame.push(BitVecVal(instr.args[0], 32))
        elif op == "i64.const":
            frame.push(BitVecVal(instr.args[0], 64))
        elif op == "f32.const":
            frame.push(BitVecVal(_f32_bits(instr.args[0]), 32))
        else:
            frame.push(BitVecVal(_f64_bits(instr.args[0]), 64))

    def _h_local_get(self, site, instr, operands, frame):
        frame.push(frame.local_get(instr.args[0]))

    def _h_local_set(self, site, instr, operands, frame):
        frame.local_set(instr.args[0], frame.pop())

    def _h_local_tee(self, site, instr, operands, frame):
        frame.local_set(instr.args[0], frame.top())

    def _h_global_get(self, site, instr, operands, frame):
        frame.push(self.state.global_get(instr.args[0]))

    def _h_global_set(self, site, instr, operands, frame):
        self.state.global_set(instr.args[0], frame.pop())

    def _h_drop(self, site, instr, operands, frame):
        frame.pop()

    def _h_select(self, site, instr, operands, frame):
        cond = frame.pop()
        second = frame.pop()
        first = frame.pop()
        first, second = _harmonise(first, second)
        frame.push(Ite(_as_bool(cond), first, second))

    def _h_nop(self, site, instr, operands, frame):
        pass

    def _h_unreachable(self, site, instr, operands, frame):
        pass  # the trace ends right after; nothing to update

    def _h_return(self, site, instr, operands, frame):
        pass  # end_function label follows and unwinds the frame

    def _h_br(self, site, instr, operands, frame):
        pass  # jump destinations are omitted (§3.4.3)

    def _h_br_if(self, site, instr, operands, frame):
        condition = frame.pop()
        self._shadow_check(site, condition, operands[-1], as_bool=True,
                           what="br_if condition")
        self._record_branch(site, "br_if", condition, bool(operands[-1]))

    def _h_if(self, site, instr, operands, frame):
        condition = frame.pop()
        self._shadow_check(site, condition, operands[-1], as_bool=True,
                           what="if condition")
        self._record_branch(site, "if", condition, bool(operands[-1]))

    def _h_br_table(self, site, instr, operands, frame):
        index = frame.pop()
        self._shadow_check(site, index, operands[-1],
                           what="br_table index")
        taken = int(operands[-1])
        position = len(self.result.path)
        constraint = Eq(_fit(index, 32), BitVecVal(taken, 32))
        if constraint.op not in ("true",):
            self.result.path.append(constraint)
        self.result.branches.append(BranchRecord(
            site, "br_table", constraint, None, taken, position))
        self.result.covered.add((site.func_index, site.pc, taken))

    def _record_branch(self, site: Site, kind: str, condition,
                       taken: bool) -> None:
        boolean = _as_bool(condition)
        taken_constraint = boolean if taken else Not(boolean)
        flipped = Not(boolean) if taken else boolean
        position = len(self.result.path)
        self.result.path.append(taken_constraint)
        self.result.branches.append(BranchRecord(
            site, kind, taken_constraint, flipped, int(taken), position))
        self.result.covered.add((site.func_index, site.pc, taken))

    def _h_memory_size(self, site, instr, operands, frame):
        frame.push(BitVecVal(4096, 32))  # the paper's constant (§3.4.3)

    def _h_memory_grow(self, site, instr, operands, frame):
        frame.pop()
        frame.push(BitVecVal(4096, 32))

    # -- memory (Δ.load / Δ.store, §3.4.1) ------------------------------------------------
    def _h_load(self, site, instr, operands, frame):
        address_expr = frame.pop()  # the symbolic address expression
        self._shadow_check(site, address_expr, operands[0],
                           what="load address")
        address = int(operands[0]) + instr.args[1]  # concrete + offset
        size = memory_access_size(instr.op)
        value = self.state.memory.load(address, size)
        frame.push(_extend_loaded(instr.op, value))

    def _h_store(self, site, instr, operands, frame):
        value = frame.pop()
        address_expr = frame.pop()  # address expression
        self._shadow_check(site, address_expr, operands[0],
                           what="store address")
        if instr.op.startswith(("i32", "i64")):
            self._shadow_check(site, value, operands[1],
                               what="store value")
        address = int(operands[0]) + instr.args[1]
        size = memory_access_size(instr.op)
        if isinstance(value, Term):
            narrowed = Extract(size * 8 - 1, 0, _fit(value, max(
                size * 8, value.width)))
        else:
            narrowed = BitVecVal(int(value), size * 8)
        self.state.memory.store(address, size, narrowed)

    # -- integer ALU --------------------------------------------------------------------------
    def _int_op(self, site, instr, operands, frame):
        op = instr.op
        prefix, _, name = op.partition(".")
        width = 32 if prefix == "i32" else 64
        if name == "eqz":
            x = _fit(frame.pop(), width)
            frame.push(_bool_to_i32(Eq(x, BitVecVal(0, width))))
            return
        if name in _RELOPS:
            rhs = _fit(frame.pop(), width)
            lhs = _fit(frame.pop(), width)
            frame.push(_bool_to_i32(_RELOPS[name](lhs, rhs)))
            return
        if name in _BINOPS:
            rhs = _fit(frame.pop(), width)
            lhs = _fit(frame.pop(), width)
            frame.push(_BINOPS[name](lhs, rhs))
            return
        if name in ("clz", "ctz", "popcnt"):
            x = _fit(frame.pop(), width)
            fn = {"clz": Clz, "ctz": Ctz, "popcnt": Popcnt}[name]
            frame.push(fn(x))
            return
        if name == "wrap_i64":
            frame.push(Extract(31, 0, _fit(frame.pop(), 64)))
            return
        if name in ("extend_i32_s", "extend_i32_u"):
            x = _fit(frame.pop(), 32)
            frame.push(SignExt(32, x) if name.endswith("_s")
                       else ZeroExt(32, x))
            return
        if name.startswith("trunc_") or name.startswith("reinterpret_"):
            # Float source: compute concretely from the traced operand.
            frame.pop()
            frame.push(_concrete_convert(op, operands))
            return
        raise _ReplayAbort(f"no integer replay rule for {op}")

    # -- floats: computed concretely from traced operands ----------------------------------------
    def _float_op(self, site, instr, operands, frame):
        op = instr.op
        pops = _FLOAT_POPS.get(op.split(".", 1)[1], 2)
        for _ in range(pops):
            frame.pop()
        frame.push(_concrete_float_result(op, operands))


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

_HANDLERS = {
    "i32.const": "_h_const", "i64.const": "_h_const",
    "f32.const": "_h_const", "f64.const": "_h_const",
    "local.get": "_h_local_get", "local.set": "_h_local_set",
    "local.tee": "_h_local_tee", "global.get": "_h_global_get",
    "global.set": "_h_global_set", "drop": "_h_drop",
    "select": "_h_select", "nop": "_h_nop",
    "unreachable": "_h_unreachable", "return": "_h_return",
    "br": "_h_br", "br_if": "_h_br_if", "if": "_h_if",
    "br_table": "_h_br_table", "memory.size": "_h_memory_size",
    "memory.grow": "_h_memory_grow",
    "block": "_h_nop", "loop": "_h_nop",
}
for _op in ("i32.load", "i64.load", "f32.load", "f64.load",
            "i32.load8_s", "i32.load8_u", "i32.load16_s", "i32.load16_u",
            "i64.load8_s", "i64.load8_u", "i64.load16_s", "i64.load16_u",
            "i64.load32_s", "i64.load32_u"):
    _HANDLERS[_op] = "_h_load"
for _op in ("i32.store", "i64.store", "f32.store", "f64.store",
            "i32.store8", "i32.store16", "i64.store8", "i64.store16",
            "i64.store32"):
    _HANDLERS[_op] = "_h_store"

_BINOPS = {
    "add": lambda a, b: a + b, "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b, "and": lambda a, b: a & b,
    "or": lambda a, b: a | b, "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: a << b, "shr_u": lambda a, b: a >> b,
    "shr_s": AShr, "rotl": Rotl, "rotr": Rotr,
    "div_u": UDiv, "rem_u": URem, "div_s": SDiv, "rem_s": SRem,
}
_RELOPS = {
    "eq": Eq, "ne": Ne, "lt_u": ULT, "gt_u": UGT, "le_u": ULE,
    "ge_u": UGE, "lt_s": SLT, "gt_s": SGT, "le_s": SLE, "ge_s": SGE,
}
_FLOAT_POPS = {
    "abs": 1, "neg": 1, "ceil": 1, "floor": 1, "trunc": 1, "nearest": 1,
    "sqrt": 1, "demote_f64": 1, "promote_f32": 1,
    "convert_i32_s": 1, "convert_i32_u": 1,
    "convert_i64_s": 1, "convert_i64_u": 1,
    "reinterpret_i32": 1, "reinterpret_i64": 1,
}


def _fit(value, width: int) -> Term:
    """Coerce a value to a ``width``-bit term."""
    if not isinstance(value, Term):
        return BitVecVal(int(value), width)
    if value.width == width:
        return value
    if value.width > width:
        return Extract(width - 1, 0, value)
    return ZeroExt(width - value.width, value)


def _harmonise(first, second) -> tuple[Term, Term]:
    first = first if isinstance(first, Term) else BitVecVal(int(first), 64)
    second = second if isinstance(second, Term) else BitVecVal(int(second), 64)
    width = max(first.width, second.width)
    return _fit(first, width), _fit(second, width)


def _bool_to_i32(condition: Term) -> Term:
    return Ite(condition, BitVecVal(1, 32), BitVecVal(0, 32))


def _as_bool(value) -> Term:
    """Recover a boolean from an i32 truth value, simplifying the
    common ``Ite(c, 1, 0)`` shape produced by comparisons."""
    if not isinstance(value, Term):
        from ..smt import BoolVal
        return BoolVal(bool(value))
    if value.is_bool():
        return value
    if (value.op == "ite" and value.args[1].is_const()
            and value.args[2].is_const()):
        then_v = value.args[1].const_value()
        else_v = value.args[2].const_value()
        if then_v == 1 and else_v == 0:
            return value.args[0]
        if then_v == 0 and else_v == 1:
            return Not(value.args[0])
    return Ne(value, BitVecVal(0, value.width))


def _concrete(valtype_name: str, value) -> Term:
    if valtype_name == "i32":
        return BitVecVal(int(value), 32)
    if valtype_name == "i64":
        return BitVecVal(int(value), 64)
    if valtype_name == "f32":
        return BitVecVal(_f32_bits(float(value)), 32)
    return BitVecVal(_f64_bits(float(value)), 64)


def _extend_loaded(op: str, value: Term) -> Term:
    """Apply the load's sign/zero extension to the target width."""
    target = 64 if op.startswith("i64") or op.startswith("f64") else 32
    if value.width == target:
        return value
    extra = target - value.width
    return SignExt(extra, value) if op.endswith("_s") else ZeroExt(extra, value)


def _f32_bits(value: float) -> int:
    return struct.unpack("<I", struct.pack("<f", value))[0]


def _f64_bits(value: float) -> int:
    return struct.unpack("<Q", struct.pack("<d", value))[0]


def _bits_f32(bits: int) -> float:
    return struct.unpack("<f", struct.pack("<I", bits & 0xFFFFFFFF))[0]


def _bits_f64(bits: int) -> float:
    return struct.unpack("<d", struct.pack(
        "<Q", bits & 0xFFFFFFFFFFFFFFFF))[0]


def _float_operand(op_prefix: str, raw) -> float:
    """Interpret a traced float operand (the hooks deliver Python
    floats for f32/f64 operands already)."""
    return float(raw)


def _concrete_float_result(op: str, operands: tuple) -> Term:
    """Compute a float instruction's result from its traced operands.

    WASAI proper carries Z3 FPVal expressions; our SMT layer has no FP
    theory, so float data flow is concretised (documented in
    DESIGN.md).  Conditional flips never involve float inputs in the
    benchmark families.
    """
    prefix, _, name = op.partition(".")
    values = [float(v) for v in operands]
    if name in ("eq", "ne", "lt", "gt", "le", "ge"):
        a, b = values
        result = {"eq": a == b, "ne": a != b, "lt": a < b,
                  "gt": a > b, "le": a <= b, "ge": a >= b}[name]
        return BitVecVal(1 if result else 0, 32)
    if name in ("convert_i32_s", "convert_i64_s"):
        bits = 32 if name.endswith("i32_s") else 64
        values = [to_signed(int(operands[0]), bits)]
    elif name in ("convert_i32_u", "convert_i64_u"):
        values = [int(operands[0])]
    elif name == "reinterpret_i32":
        values = [_bits_f32(int(operands[0]))]
    elif name == "reinterpret_i64":
        values = [_bits_f64(int(operands[0]))]
    result = _FLOAT_EVAL[name](*values)
    if prefix == "f32":
        return BitVecVal(_f32_bits(result), 32)
    return BitVecVal(_f64_bits(result), 64)


_FLOAT_EVAL = {
    "add": lambda a, b: a + b, "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": lambda a, b: a / b if b else math.copysign(math.inf, a or 1.0),
    "min": min, "max": max,
    "copysign": lambda a, b: math.copysign(a, b),
    "abs": abs, "neg": lambda a: -a,
    "ceil": lambda a: float(math.ceil(a)),
    "floor": lambda a: float(math.floor(a)),
    "trunc": lambda a: float(math.trunc(a)),
    "nearest": lambda a: float(round(a)),
    "sqrt": math.sqrt,
    "demote_f64": lambda a: a, "promote_f32": lambda a: a,
    "convert_i32_s": float, "convert_i32_u": float,
    "convert_i64_s": float, "convert_i64_u": float,
    "reinterpret_i32": lambda a: a, "reinterpret_i64": lambda a: a,
}


def _concrete_convert(op: str, operands: tuple) -> Term:
    """i32/i64 results of float-source conversions, concretised."""
    target = 64 if op.startswith("i64") else 32
    name = op.split(".", 1)[1]
    raw = operands[0]
    if name.startswith("reinterpret"):
        bits = _f32_bits(float(raw)) if target == 32 else _f64_bits(float(raw))
        return BitVecVal(bits, target)
    truncated = math.trunc(float(raw))
    return BitVecVal(truncated, target)


def _extend_declared_locals(module: Module, func_index: int,
                            frame: Frame) -> None:
    """Append the function's declared (non-param) locals as zeroes of
    the right width."""
    if module.is_imported_function(func_index):
        return
    func = module.local_function(func_index)
    for valtype in func.locals:
        frame.locals.append(BitVecVal(0, valtype.bits))
    # Harmonise widths of parameter slots with the declared types.
    params = module.types[func.type_index].params
    for i, valtype in enumerate(params):
        if i < len(frame.locals):
            frame.locals[i] = _fit(frame.locals[i], valtype.bits)



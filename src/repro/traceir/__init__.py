"""repro.traceir — the durable, versioned trace IR.

Today's verdict should never be the end of a trace's life: oracles
iterate far faster than fuzzing does, so the executions behind every
verdict are worth keeping in a form scanners can replay.  This package
defines that form:

* :mod:`repro.traceir.codec` — the columnar binary container
  (``WTIR`` magic, explicit ``TRACEIR_VERSION``, per-section CRC32,
  delta+zigzag varint columns, interned strings) with a streaming
  encoder and a paranoid decoder that lifts **every** defect —
  truncation, bit flip, version skew, framing damage — to a typed,
  non-retryable :class:`~repro.resilience.errors.TraceCorruption`;
* :mod:`repro.traceir.pack` — :class:`TracePack`, the self-contained
  replay unit distilled from a finished campaign
  (:func:`build_trace_pack`) and re-scannable with zero re-fuzzing
  (:func:`replay_scan`).
"""

from ..resilience.errors import TraceCorruption
from .codec import (EventStreamEncoder, TRACEIR_MAGIC, TRACEIR_VERSION,
                    decode_events, encode_events, iter_events)
from .pack import (PackObservation, SEC_SEMANTIC, TracePack,
                   build_trace_pack, decode_pack, encode_pack,
                   replay_scan)

__all__ = [
    "TRACEIR_VERSION", "TRACEIR_MAGIC", "TraceCorruption",
    "EventStreamEncoder", "encode_events", "decode_events",
    "iter_events",
    "TracePack", "PackObservation", "SEC_SEMANTIC",
    "build_trace_pack", "encode_pack", "decode_pack", "replay_scan",
]

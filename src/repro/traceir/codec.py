"""The columnar trace IR codec.

A durable trace is a small binary container::

    magic "WTIR" | uvarint version | stream-kind byte | uvarint n
    n x section:  id byte | uvarint length | crc32 (u32 LE) | payload

Event streams use three columnar sections — kind codes, delta+zigzag
encoded site/function ids, and an operand block (per-event counts, a
type-tag column, then the packed values: zigzag varints for integers,
8-byte IEEE doubles for floats).  Scan packs (:mod:`repro.traceir.
pack`) reuse the same container with additional sections and a
distinct stream kind so an event blob can never be misread as a pack.

Decoding is paranoid by construction: every truncation, CRC mismatch,
unknown version/stream/section/tag, duplicate or missing section,
out-of-range id and trailing byte is lifted to a typed, non-retryable
:class:`~repro.resilience.errors.TraceCorruption`.  The decoder never
returns "best effort" events — a blob either round-trips exactly or
it is corrupt.
"""

from __future__ import annotations

import struct
import zlib

from ..instrument.hooks import HookEvent
from ..resilience.errors import TraceCorruption

__all__ = ["TRACEIR_VERSION", "TRACEIR_MAGIC", "STREAM_EVENTS",
           "STREAM_PACK", "EventStreamEncoder", "encode_events",
           "decode_events", "iter_events", "pack_sections",
           "unpack_sections", "write_uvarint", "write_svarint",
           "Reader"]

TRACEIR_MAGIC = b"WTIR"
# v1: events + classic pack sections.  v2 adds the optional semantic
# section (pack section 21) carrying the DB read/write surface the
# semantic oracle families replay over.  Both decode; the version a
# blob was framed with is returned so pack decoding can gate the new
# section on it.
TRACEIR_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)

# Stream kinds: what the container holds.
STREAM_EVENTS = 0        # a bare HookEvent stream
STREAM_PACK = 1          # a self-contained scan replay pack

# Section ids.  1-15 are event-stream columns, 16+ pack-level tables.
SEC_EVENT_KINDS = 1
SEC_EVENT_IDS = 2
SEC_EVENT_OPERANDS = 3

_EVENT_SECTIONS = (SEC_EVENT_KINDS, SEC_EVENT_IDS, SEC_EVENT_OPERANDS)

_KIND_NAMES = ("instr", "post", "begin", "end")
_KIND_CODES = {name: code for code, name in enumerate(_KIND_NAMES)}

# A section count or per-event operand count past this is framing
# damage, not data: reject before allocating anything proportional.
_MAX_SECTIONS = 64

_TAG_INT = 0
_TAG_FLOAT = 1


# -- varint primitives -----------------------------------------------------

def write_uvarint(out: bytearray, value: int) -> None:
    """LEB128-style unsigned varint."""
    if value < 0:
        raise ValueError("uvarint cannot encode a negative value")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _zigzag(value: int) -> int:
    return (value << 1) if value >= 0 else ((-value << 1) - 1)


def _unzigzag(value: int) -> int:
    return (value >> 1) if not (value & 1) else -((value + 1) >> 1)


def write_svarint(out: bytearray, value: int) -> None:
    """Zigzag-mapped signed varint (arbitrary-precision safe)."""
    write_uvarint(out, _zigzag(value))


class Reader:
    """Bounds-checked cursor over one section's payload.

    Every overrun raises :class:`TraceCorruption` with the section
    name and the byte offset of the defect.
    """

    __slots__ = ("data", "pos", "section")

    def __init__(self, data: bytes, section: str):
        self.data = data
        self.pos = 0
        self.section = section

    def fail(self, detail: str) -> None:
        raise TraceCorruption(detail, section=self.section,
                              offset=self.pos)

    def u8(self) -> int:
        if self.pos >= len(self.data):
            self.fail("truncated: expected another byte")
        byte = self.data[self.pos]
        self.pos += 1
        return byte

    def uvarint(self) -> int:
        value = 0
        shift = 0
        while True:
            byte = self.u8()
            value |= (byte & 0x7F) << shift
            if not (byte & 0x80):
                return value
            shift += 7
            if shift > 70:
                self.fail("uvarint runs past 10 bytes")

    def svarint(self) -> int:
        return _unzigzag(self.uvarint())

    def f64(self) -> float:
        if self.pos + 8 > len(self.data):
            self.fail("truncated: expected an 8-byte float")
        (value,) = struct.unpack_from("<d", self.data, self.pos)
        self.pos += 8
        return value

    def raw(self, length: int) -> bytes:
        if length < 0 or self.pos + length > len(self.data):
            self.fail(f"truncated: expected {length} more bytes")
        chunk = self.data[self.pos:self.pos + length]
        self.pos += length
        return chunk

    def done(self) -> None:
        if self.pos != len(self.data):
            self.fail(f"{len(self.data) - self.pos} trailing bytes")


# -- container framing -----------------------------------------------------

def pack_sections(stream_kind: int,
                  sections: list[tuple[int, bytes]]) -> bytes:
    """Frame ``(id, payload)`` sections into a versioned container."""
    out = bytearray()
    out += TRACEIR_MAGIC
    write_uvarint(out, TRACEIR_VERSION)
    out.append(stream_kind)
    write_uvarint(out, len(sections))
    for sec_id, payload in sections:
        out.append(sec_id)
        write_uvarint(out, len(payload))
        out += struct.pack("<I", zlib.crc32(payload) & 0xFFFFFFFF)
        out += payload
    return bytes(out)


def unpack_sections(blob: bytes, stream_kind: int,
                    known_sections: tuple = ()
                    ) -> tuple[int, dict[int, bytes]]:
    """Parse and checksum-verify a container.

    Returns ``(version, sections-by-id)`` — every supported version
    decodes, and the caller gates version-specific sections on the
    returned number.  ``known_sections`` is the closed set of legal
    ids for this stream kind — anything else is corruption, not
    forward compatibility (the version header is what moves the
    format forward).
    """
    blob = bytes(blob)
    reader = Reader(blob, "header")
    if reader.raw(4) != TRACEIR_MAGIC:
        reader.pos = 0
        reader.fail("bad magic: not a trace IR blob")
    version = reader.uvarint()
    if version not in _SUPPORTED_VERSIONS:
        reader.fail(f"unsupported trace IR version {version} "
                    f"(this build speaks up to {TRACEIR_VERSION})")
    kind = reader.u8()
    if kind != stream_kind:
        reader.fail(f"stream kind {kind} where {stream_kind} was "
                    "expected")
    count = reader.uvarint()
    if count > _MAX_SECTIONS:
        reader.fail(f"absurd section count {count}")
    sections: dict[int, bytes] = {}
    for _ in range(count):
        sec_id = reader.u8()
        if known_sections and sec_id not in known_sections:
            reader.fail(f"unknown section id {sec_id}")
        if sec_id in sections:
            reader.fail(f"duplicate section id {sec_id}")
        length = reader.uvarint()
        crc_bytes = reader.raw(4)
        payload = reader.raw(length)
        (crc,) = struct.unpack("<I", crc_bytes)
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            reader.fail(f"section {sec_id} checksum mismatch")
        sections[sec_id] = payload
    reader.done()
    return version, sections


# -- event stream columns --------------------------------------------------

class EventStreamEncoder:
    """Streaming columnar encoder for a :class:`HookEvent` sequence.

    Events are appended one at a time (so a fuzzing loop never holds
    a second full copy of the trace) and the columns are framed once
    on :meth:`finish`.
    """

    def __init__(self) -> None:
        self._count = 0
        self._kinds = bytearray()
        self._ids = bytearray()
        self._prev_id = 0
        self._counts = bytearray()
        self._tags = bytearray()
        self._values = bytearray()

    def add(self, event: HookEvent) -> None:
        code = _KIND_CODES.get(event.kind)
        if code is None:
            raise ValueError(f"unknown event kind {event.kind!r}")
        self._kinds.append(code)
        ident = event.site_id if event.site_id is not None \
            else event.func_id
        if ident is None or ident < 0:
            raise ValueError("event has no usable site/function id")
        write_svarint(self._ids, ident - self._prev_id)
        self._prev_id = ident
        write_uvarint(self._counts, len(event.operands))
        for operand in event.operands:
            if isinstance(operand, float):
                self._tags.append(_TAG_FLOAT)
                self._values += struct.pack("<d", operand)
            elif isinstance(operand, int):
                self._tags.append(_TAG_INT)
                write_svarint(self._values, operand)
            else:
                raise ValueError(
                    f"unencodable operand type {type(operand).__name__}")
        self._count += 1

    def add_raw(self, hook_name: str, args: tuple) -> None:
        self.add(HookEvent.decode(hook_name, tuple(args)))

    def sections(self) -> list[tuple[int, bytes]]:
        kinds = bytearray()
        write_uvarint(kinds, self._count)
        kinds += self._kinds
        operands = bytes(self._counts) + bytes(self._tags) \
            + bytes(self._values)
        return [(SEC_EVENT_KINDS, bytes(kinds)),
                (SEC_EVENT_IDS, bytes(self._ids)),
                (SEC_EVENT_OPERANDS, operands)]

    def finish(self) -> bytes:
        return pack_sections(STREAM_EVENTS, self.sections())


def encode_events(events) -> bytes:
    """One-shot encode of an in-memory event list."""
    encoder = EventStreamEncoder()
    for event in events:
        encoder.add(event)
    return encoder.finish()


def decode_event_sections(sections: dict[int, bytes]) -> list[HookEvent]:
    """Decode the three event columns out of a parsed container."""
    for sec_id in _EVENT_SECTIONS:
        if sec_id not in sections:
            raise TraceCorruption(
                f"missing event section {sec_id}", section="events")
    kinds = Reader(sections[SEC_EVENT_KINDS], "event-kinds")
    count = kinds.uvarint()
    codes = [kinds.u8() for _ in range(count)]
    kinds.done()
    for code in codes:
        if code >= len(_KIND_NAMES):
            raise TraceCorruption(f"unknown event kind code {code}",
                                  section="event-kinds")
    ids_reader = Reader(sections[SEC_EVENT_IDS], "event-ids")
    ids = []
    prev = 0
    for _ in range(count):
        prev += ids_reader.svarint()
        if prev < 0:
            ids_reader.fail("negative site/function id")
        ids.append(prev)
    ids_reader.done()
    ops = Reader(sections[SEC_EVENT_OPERANDS], "event-operands")
    counts = [ops.uvarint() for _ in range(count)]
    total = sum(counts)
    tags = [ops.u8() for _ in range(total)]
    values = []
    for tag in tags:
        if tag == _TAG_INT:
            values.append(ops.svarint())
        elif tag == _TAG_FLOAT:
            values.append(ops.f64())
        else:
            ops.fail(f"unknown operand type tag {tag}")
    ops.done()
    events: list[HookEvent] = []
    cursor = 0
    for index in range(count):
        kind = _KIND_NAMES[codes[index]]
        operands = tuple(values[cursor:cursor + counts[index]])
        cursor += counts[index]
        if kind in ("instr", "post"):
            events.append(HookEvent(kind, ids[index], None, operands))
        else:
            if operands:
                raise TraceCorruption(
                    "operands on a function-label event",
                    section="event-operands")
            events.append(HookEvent(kind, None, ids[index], ()))
    return events


def decode_events(blob: bytes) -> list[HookEvent]:
    """Decode a bare event-stream blob, or raise ``TraceCorruption``."""
    _, sections = unpack_sections(blob, STREAM_EVENTS, _EVENT_SECTIONS)
    return decode_event_sections(sections)


def iter_events(blob: bytes):
    """Generator flavour of :func:`decode_events`.

    Validation is not lazy — the whole blob is checksummed and decoded
    before the first event is yielded, so a consumer can never observe
    a prefix of a corrupt stream.
    """
    yield from decode_events(blob)

"""Scan replay packs: everything the oracles need, nothing else.

A :class:`TracePack` is the durable distillation of one finished
campaign: the resolved target metadata, the site-table columns the
detectors index, and per-observation records (payload kind, action
name, host-call API sequence, the full hook-event stream).  It is
exactly the read surface of :func:`repro.scanner.detectors.
scan_report` — so a stored pack can be re-scanned years later, by a
process that never deployed the module, with **zero** fuzzing,
instrumentation or solving, and the verdict is byte-identical to the
fresh one (``executed_params`` are stored pre-formatted for this
reason: evidence strings interpolate them verbatim).

Encoding rides the :mod:`repro.traceir.codec` container (stream kind
``STREAM_PACK``): interned strings, delta-encoded site columns and one
concatenated event stream split by per-observation counts.  Decoding
inherits the codec's guarantee — any defect is a typed
:class:`TraceCorruption`, never a subtly wrong replay.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from ..resilience.errors import TraceCorruption
from .codec import (Reader, STREAM_PACK, EventStreamEncoder,
                    decode_event_sections, pack_sections,
                    unpack_sections, write_svarint, write_uvarint)

__all__ = ["TracePack", "PackObservation", "build_trace_pack",
           "encode_pack", "decode_pack", "replay_scan"]

# Pack-level section ids (the event columns 1-3 come from the codec).
SEC_META = 16
SEC_STRINGS = 17
SEC_SITES = 18
SEC_OBSERVATIONS = 19
SEC_DIVERGENCES = 20
# v2: the semantic surface (host-call args/results, per-record DB
# writes with row images, end-of-campaign DB state) the semantic
# oracle families replay over.  Optional — a pack without it still
# satisfies the paper's five oracles.
SEC_SEMANTIC = 21

_PACK_SECTIONS_V1 = (1, 2, 3, SEC_META, SEC_STRINGS, SEC_SITES,
                     SEC_OBSERVATIONS, SEC_DIVERGENCES)
_PACK_SECTIONS = _PACK_SECTIONS_V1 + (SEC_SEMANTIC,)

_MAX_STRING_BYTES = 1 << 20


@dataclass
class PackObservation:
    """One observation, reduced to what the detectors read."""

    payload_kind: str
    action_name: str
    executed_params: str        # pre-formatted: str(original list)
    success: bool
    host_apis: tuple
    events: list = field(default_factory=list)


@dataclass
class TracePack:
    """The durable, self-contained input of a replayed scan.

    ``semantic`` (a :class:`~repro.semoracle.surface.SemanticSurface`,
    or None) is the v2 extension: without it the pack satisfies only
    the paper's five oracles; with it the semantic families replay
    too.
    """

    target_account: int
    apply_index: int | None
    eosponser_id: int | None
    sites: list                 # (kind, func_index, pc, op) tuples
    observations: list          # PackObservation
    divergences: list
    semantic: object | None = None

    def surfaces(self) -> frozenset:
        """The capability names this pack can serve to oracle families."""
        from ..semoracle.surface import BASE_SURFACES, SEMANTIC_SURFACES
        if self.semantic is None:
            return BASE_SURFACES
        return BASE_SURFACES | SEMANTIC_SURFACES


def build_trace_pack(report, target, semantic: bool = True) -> TracePack:
    """Distill a finished campaign into its replayable pack.

    ``semantic=True`` (the default) additionally captures the
    semantic surface so stored packs stay re-scannable when new
    oracle families ship.
    """
    sites = [(site.kind, site.func_index, site.pc, site.instr.op)
             for site in (target.site_table[i]
                          for i in range(len(target.site_table)))]
    observations = [
        PackObservation(
            payload_kind=obs.payload_kind,
            action_name=obs.action_name,
            executed_params=str(obs.executed_params),
            success=bool(obs.success),
            host_apis=tuple(call.api for call in obs.record.host_calls),
            events=list(obs.events))
        for obs in report.observations]
    surface = None
    if semantic:
        from ..semoracle.surface import build_semantic_surface
        surface = build_semantic_surface(report)
    return TracePack(
        target_account=int(report.target_account),
        apply_index=getattr(target, "apply_index", None),
        eosponser_id=report.eosponser_id,
        sites=sites,
        observations=observations,
        divergences=list(report.divergences),
        semantic=surface)


# -- encoding --------------------------------------------------------------

class _StringTable:
    def __init__(self) -> None:
        self._ids: dict[str, int] = {}

    def intern(self, text: str) -> int:
        ident = self._ids.get(text)
        if ident is None:
            ident = len(self._ids)
            self._ids[text] = ident
        return ident

    def encode(self) -> bytes:
        out = bytearray()
        write_uvarint(out, len(self._ids))
        for text in self._ids:            # insertion order == id order
            data = text.encode("utf-8")
            write_uvarint(out, len(data))
            out += data
        return bytes(out)


def encode_pack(pack: TracePack) -> bytes:
    """Serialise a pack.  Deterministic: same pack, same bytes."""
    strings = _StringTable()

    meta = bytearray()
    write_svarint(meta, pack.target_account)
    write_uvarint(meta, 0 if pack.apply_index is None
                  else pack.apply_index + 1)
    write_uvarint(meta, 0 if pack.eosponser_id is None
                  else pack.eosponser_id + 1)
    write_uvarint(meta, len(pack.sites))
    write_uvarint(meta, len(pack.observations))

    sites = bytearray()
    prev_func = 0
    prev_pc = 0
    for kind, func_index, pc, op in pack.sites:
        write_uvarint(sites, strings.intern(kind))
        write_svarint(sites, func_index - prev_func)
        write_svarint(sites, pc - prev_pc)
        write_uvarint(sites, strings.intern(op))
        prev_func, prev_pc = func_index, pc

    observations = bytearray()
    events = EventStreamEncoder()
    for obs in pack.observations:
        write_uvarint(observations, strings.intern(obs.payload_kind))
    for obs in pack.observations:
        write_uvarint(observations, strings.intern(obs.action_name))
    for obs in pack.observations:
        write_uvarint(observations,
                      strings.intern(obs.executed_params))
    for obs in pack.observations:
        observations.append(1 if obs.success else 0)
    for obs in pack.observations:
        write_uvarint(observations, len(obs.host_apis))
    for obs in pack.observations:
        for api in obs.host_apis:
            write_uvarint(observations, strings.intern(api))
    for obs in pack.observations:
        write_uvarint(observations, len(obs.events))
        for event in obs.events:
            events.add(event)

    divergences = bytearray()
    write_uvarint(divergences, len(pack.divergences))
    for text in pack.divergences:
        write_uvarint(divergences, strings.intern(str(text)))

    sections = [(SEC_META, bytes(meta)),
                (SEC_SITES, bytes(sites)),
                (SEC_OBSERVATIONS, bytes(observations)),
                (SEC_DIVERGENCES, bytes(divergences))]
    sections.extend(events.sections())
    if pack.semantic is not None:
        from ..semoracle.surface import encode_semantic_section
        sections.append((SEC_SEMANTIC,
                         encode_semantic_section(pack.semantic,
                                                 strings.intern)))
    # The string table is built *while* encoding the other sections,
    # so it is framed last but decoded first.
    sections.insert(0, (SEC_STRINGS, strings.encode()))
    return pack_sections(STREAM_PACK, sections)


# -- decoding --------------------------------------------------------------

def _decode_strings(payload: bytes) -> list[str]:
    reader = Reader(payload, "strings")
    count = reader.uvarint()
    table = []
    for _ in range(count):
        length = reader.uvarint()
        if length > _MAX_STRING_BYTES:
            reader.fail(f"absurd string length {length}")
        data = reader.raw(length)
        try:
            table.append(data.decode("utf-8"))
        except UnicodeDecodeError as exc:
            raise TraceCorruption(f"string table is not UTF-8: {exc}",
                                  section="strings") from exc
    reader.done()
    return table


def _lookup(table: list[str], ident: int, section: str) -> str:
    if ident >= len(table):
        raise TraceCorruption(f"string id {ident} out of range "
                              f"({len(table)} interned)",
                              section=section)
    return table[ident]


def decode_pack(blob: bytes) -> TracePack:
    """Deserialise a pack, or raise :class:`TraceCorruption`."""
    version, sections = unpack_sections(blob, STREAM_PACK,
                                        _PACK_SECTIONS)
    for sec_id in _PACK_SECTIONS_V1:
        if sec_id not in sections:
            raise TraceCorruption(f"missing pack section {sec_id}",
                                  section="pack")
    if version < 2 and SEC_SEMANTIC in sections:
        raise TraceCorruption(
            "semantic section in a pre-semantic (v1) pack",
            section="semantic")
    table = _decode_strings(sections[SEC_STRINGS])

    meta = Reader(sections[SEC_META], "meta")
    target_account = meta.svarint()
    apply_raw = meta.uvarint()
    eosponser_raw = meta.uvarint()
    site_count = meta.uvarint()
    obs_count = meta.uvarint()
    meta.done()

    sites_reader = Reader(sections[SEC_SITES], "sites")
    sites = []
    prev_func = 0
    prev_pc = 0
    for _ in range(site_count):
        kind = _lookup(table, sites_reader.uvarint(), "sites")
        prev_func += sites_reader.svarint()
        prev_pc += sites_reader.svarint()
        op = _lookup(table, sites_reader.uvarint(), "sites")
        sites.append((kind, prev_func, prev_pc, op))
    sites_reader.done()

    obs_reader = Reader(sections[SEC_OBSERVATIONS], "observations")
    payload_kinds = [_lookup(table, obs_reader.uvarint(), "observations")
                     for _ in range(obs_count)]
    action_names = [_lookup(table, obs_reader.uvarint(), "observations")
                    for _ in range(obs_count)]
    params = [_lookup(table, obs_reader.uvarint(), "observations")
              for _ in range(obs_count)]
    successes = [obs_reader.u8() for _ in range(obs_count)]
    for flag in successes:
        if flag > 1:
            raise TraceCorruption(f"success flag {flag} is not boolean",
                                  section="observations")
    call_counts = [obs_reader.uvarint() for _ in range(obs_count)]
    host_apis = [tuple(_lookup(table, obs_reader.uvarint(),
                               "observations")
                       for _ in range(count))
                 for count in call_counts]
    event_counts = [obs_reader.uvarint() for _ in range(obs_count)]
    obs_reader.done()

    div_reader = Reader(sections[SEC_DIVERGENCES], "divergences")
    divergences = [_lookup(table, div_reader.uvarint(), "divergences")
                   for _ in range(div_reader.uvarint())]
    div_reader.done()

    all_events = decode_event_sections(sections)
    if len(all_events) != sum(event_counts):
        raise TraceCorruption(
            f"event stream holds {len(all_events)} events but the "
            f"observations claim {sum(event_counts)}",
            section="observations")
    for event in all_events:
        if event.site_id is not None and event.site_id >= site_count:
            raise TraceCorruption(
                f"event references site {event.site_id} past the "
                f"{site_count}-entry site table", section="events")

    observations = []
    cursor = 0
    for index in range(obs_count):
        count = event_counts[index]
        observations.append(PackObservation(
            payload_kind=payload_kinds[index],
            action_name=action_names[index],
            executed_params=params[index],
            success=bool(successes[index]),
            host_apis=host_apis[index],
            events=all_events[cursor:cursor + count]))
        cursor += count

    semantic = None
    if SEC_SEMANTIC in sections:
        from ..semoracle.surface import decode_semantic_section
        semantic = decode_semantic_section(
            sections[SEC_SEMANTIC],
            lambda ident: _lookup(table, ident, "semantic"),
            obs_count)

    return TracePack(
        target_account=target_account,
        apply_index=None if apply_raw == 0 else apply_raw - 1,
        eosponser_id=None if eosponser_raw == 0 else eosponser_raw - 1,
        sites=sites,
        observations=observations,
        divergences=divergences,
        semantic=semantic)


# -- replay ----------------------------------------------------------------

class _ReplayInstr:
    __slots__ = ("op",)

    def __init__(self, op: str):
        self.op = op


class _ReplaySite:
    __slots__ = ("kind", "func_index", "pc", "instr")

    def __init__(self, kind: str, func_index: int, pc: int, op: str):
        self.kind = kind
        self.func_index = func_index
        self.pc = pc
        self.instr = _ReplayInstr(op)


class _ReplayTarget:
    __slots__ = ("site_table", "apply_index")

    def __init__(self, sites: list, apply_index):
        self.site_table = [_ReplaySite(*site) for site in sites]
        self.apply_index = apply_index


class _ReplayHostCall:
    __slots__ = ("api",)

    def __init__(self, api: str):
        self.api = api


class _ReplayRecord:
    __slots__ = ("host_calls",)

    def __init__(self, apis: tuple):
        self.host_calls = [_ReplayHostCall(api) for api in apis]


class _ReplayObservation:
    __slots__ = ("payload_kind", "action_name", "executed_params",
                 "success", "record", "events")

    def __init__(self, obs: PackObservation):
        self.payload_kind = obs.payload_kind
        self.action_name = obs.action_name
        self.executed_params = obs.executed_params
        self.success = obs.success
        self.record = _ReplayRecord(obs.host_apis)
        self.events = obs.events


class _ReplayReport:
    __slots__ = ("target_account", "eosponser_id", "divergences",
                 "observations", "semantic_surface")

    def __init__(self, pack: TracePack):
        self.target_account = pack.target_account
        self.eosponser_id = pack.eosponser_id
        self.divergences = list(pack.divergences)
        self.observations = [_ReplayObservation(obs)
                             for obs in pack.observations]
        self.semantic_surface = pack.semantic

    def observations_of(self, kind: str):
        return [obs for obs in self.observations
                if obs.payload_kind == kind]


def replay_scan(pack: TracePack, extra_detectors=(), oracles=None):
    """Re-run the scanner oracles over a stored pack.

    Touches no chain, no module bytes, no solver — the pack *is* the
    campaign as far as the oracles are concerned.  Returns the same
    :class:`~repro.scanner.detectors.ScanResult` a fresh campaign
    would have produced.

    ``oracles`` selects the enabled families (see
    :func:`repro.semoracle.resolve_oracles`; None means the paper's
    five).  Before replaying, the enabled families' declared
    ``required_surface`` is checked against what the pack actually
    carries; a pack that cannot satisfy them raises the typed
    :class:`~repro.semoracle.InsufficientSurface` — the pack is
    intact, it just predates the richer capture, and the caller
    should re-queue a fresh scan instead of reporting drift.
    """
    from ..scanner.detectors import scan_report
    if oracles is not None:
        from ..semoracle.registry import (InsufficientSurface,
                                          required_surfaces,
                                          resolve_oracles)
        names = resolve_oracles(oracles)
        missing = required_surfaces(names) - pack.surfaces()
        if missing:
            raise InsufficientSurface(missing)
        oracles = names
    return scan_report(_ReplayReport(pack),
                       _ReplayTarget(pack.sites, pack.apply_index),
                       extra_detectors, oracles=oracles)
